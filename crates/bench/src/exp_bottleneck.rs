//! Experiments E2 (the headline bottleneck comparison) and E8 (message
//! complexity vs bottleneck trade-off).

use distctr_analysis::{fmt_f64, loglog_fit, Histogram, Plot, Scale, Table};
use distctr_core::kmath;
use distctr_sim::DeliveryPolicy;

use crate::algos::{run_canonical, Algo, REPORT_SEED};

/// E2 — bottleneck load vs n for every algorithm, against the theoretical
/// `k` and the continuous `ln n / ln ln n` overlay.
///
/// Expected shape (the paper's headline): centralized and static-tree
/// grow linearly in n; the retirement tree stays at O(k); everything is
/// at least `k`.
#[must_use]
pub fn e2_bottleneck_vs_n(sizes: &[usize]) -> String {
    let mut out = String::new();
    out.push_str("E2. Bottleneck load m_b = max_p m_p over the canonical workload\n");
    out.push_str("    (n sequential incs, one per processor, shuffled order)\n\n");
    let mut table =
        Table::new(vec!["algorithm", "n", "k(n)", "bottleneck", "vs k", "msgs/op", "correct"]);
    // (algo name, (n, bottleneck)) series for the growth-exponent fit.
    let mut series: std::collections::BTreeMap<String, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for &n in sizes {
        let k = kmath::bottleneck_lower_bound(n as u64);
        for algo in Algo::comparison_set(n) {
            match run_canonical(algo, n, DeliveryPolicy::Fifo, REPORT_SEED) {
                Ok(s) => {
                    series
                        .entry(algo_family(&s.algo))
                        .or_default()
                        .push((s.n as f64, s.bottleneck as f64));
                    table.row(vec![
                        s.algo,
                        s.n.to_string(),
                        k.to_string(),
                        s.bottleneck.to_string(),
                        fmt_f64(s.bottleneck as f64 / f64::from(k)),
                        fmt_f64(s.messages_per_op),
                        if s.correct { "yes".into() } else { "NO".into() },
                    ]);
                }
                Err(e) => {
                    table.row(vec![
                        algo.name(),
                        n.to_string(),
                        k.to_string(),
                        format!("error: {e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    out.push_str(&table.render());
    out.push('\n');

    if sizes.len() >= 2 {
        out.push_str("growth exponents (slope of log bottleneck vs log n; 1.0 = linear):\n");
        let mut fit_table = Table::new(vec!["algorithm", "exponent", "r^2"]);
        for (name, points) in &series {
            if let Some(fit) = loglog_fit(points) {
                fit_table.row(vec![name.clone(), fmt_f64(fit.slope), fmt_f64(fit.r_squared)]);
            }
        }
        out.push_str(&fit_table.render());
        out.push('\n');

        // The headline figure: bottleneck vs n, log-log.
        out.push_str("bottleneck vs n (log-log; flat = O(polylog), diagonal = Θ(n)):\n\n");
        let mut plot = Plot::new(48, 14, Scale::Log, Scale::Log);
        for (name, points) in &series {
            let marker = match name.as_str() {
                "central" => 'c',
                "static-tree" => 's',
                "combining-tree" => 'm',
                "counting-net" => 'w',
                "diffracting" => 'd',
                "arrow-token" => 'a',
                "retirement-tree" => 'T',
                _ => '?',
            };
            plot.series(marker, name, points);
        }
        out.push_str(&plot.render());
        out.push('\n');
    }
    out
}

/// Strips size-dependent parameters (`[w=16]`) so series group across n.
fn algo_family(name: &str) -> String {
    name.split('[').next().unwrap_or(name).to_string()
}

/// E2 as machine-readable CSV (one row per algorithm × size).
#[must_use]
pub fn e2_csv(sizes: &[usize]) -> String {
    let mut csv = distctr_analysis::Csv::new(vec![
        "algorithm",
        "n",
        "k",
        "bottleneck",
        "total_messages",
        "messages_per_op",
        "gini",
        "correct",
    ]);
    for &n in sizes {
        let k = kmath::bottleneck_lower_bound(n as u64);
        for algo in Algo::comparison_set(n) {
            if let Ok(s) = run_canonical(algo, n, DeliveryPolicy::Fifo, REPORT_SEED) {
                csv.row(vec![
                    s.algo,
                    s.n.to_string(),
                    k.to_string(),
                    s.bottleneck.to_string(),
                    s.total_messages.to_string(),
                    format!("{:.4}", s.messages_per_op),
                    format!("{:.4}", s.gini),
                    s.correct.to_string(),
                ]);
            }
        }
    }
    csv.render()
}

/// E2 companion: per-processor load distribution of the retirement tree
/// vs the centralized counter, as text histograms — the tail *is* the
/// bottleneck.
#[must_use]
pub fn e2_load_histograms(n: usize) -> String {
    let mut out = String::new();
    for algo in [Algo::Central, Algo::RetirementTree] {
        match run_canonical(algo, n, DeliveryPolicy::Fifo, REPORT_SEED) {
            Ok(s) => {
                let h = Histogram::from_samples(&s.loads, 8);
                out.push_str(&format!(
                    "load distribution, {} (n={}, max={}):\n{}",
                    s.algo,
                    s.n,
                    s.bottleneck,
                    h.render(32)
                ));
            }
            Err(e) => out.push_str(&format!("{}: error: {e}\n", algo.name())),
        }
        out.push('\n');
    }
    out
}

/// E8 — message complexity: the centralized counter is message-optimal
/// (2 per op) yet maximally bottlenecked; the tree pays O(k) messages
/// per op (amortized) to flatten the bottleneck. This is the paper's §1
/// remark made quantitative.
#[must_use]
pub fn e8_message_complexity(n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E8. Message count vs bottleneck trade-off (n = {n}, canonical workload)\n\n"
    ));
    let mut table = Table::new(vec![
        "algorithm",
        "total msgs",
        "msgs/op",
        "bottleneck",
        "bottleneck/n",
        "gini",
    ]);
    for algo in Algo::comparison_set(n) {
        match run_canonical(algo, n, DeliveryPolicy::Fifo, REPORT_SEED) {
            Ok(s) => {
                table.row(vec![
                    s.algo,
                    s.total_messages.to_string(),
                    fmt_f64(s.messages_per_op),
                    s.bottleneck.to_string(),
                    fmt_f64(s.bottleneck as f64 / s.n as f64),
                    fmt_f64(s.gini),
                ]);
            }
            Err(e) => {
                table.row(vec![
                    algo.name(),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    out.push_str(&table.render());
    out.push('\n');

    // Where do the retirement tree's messages go? Break its traffic down
    // by protocol kind.
    let mut tree = distctr_core::TreeCounter::builder(n)
        .expect("builder")
        .trace(distctr_sim::TraceMode::Off)
        .build()
        .expect("tree");
    crate::algos::run_shuffled_dyn(&mut tree, REPORT_SEED).expect("runs");
    let mut kinds: Vec<(&str, u64)> =
        tree.audit().msgs_by_kind().iter().map(|(&k, &v)| (k, v)).collect();
    kinds.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    let mut kind_table = Table::new(vec!["retirement-tree message kind", "count"]);
    for (kind, count) in kinds {
        kind_table.row(vec![kind.to_string(), count.to_string()]);
    }
    kind_table.row(vec!["shim forwards".into(), tree.audit().shim_forwards().to_string()]);
    out.push_str(&kind_table.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_breaks_down_tree_traffic_by_kind() {
        let report = e8_message_complexity(81);
        for kind in ["apply", "reply", "handoff", "new-worker"] {
            assert!(report.contains(kind), "{kind} in breakdown:\n{report}");
        }
    }

    #[test]
    fn e2_report_contains_all_algorithms_and_shapes() {
        let report = e2_bottleneck_vs_n(&[8, 81]);
        for name in ["central", "retirement-tree", "static-tree", "combining-tree"] {
            assert!(report.contains(name), "{name} in report:\n{report}");
        }
        assert!(!report.contains("NO"), "all algorithms count correctly:\n{report}");
        assert!(!report.contains("error"), "no construction errors:\n{report}");
    }

    #[test]
    fn e2_histograms_render() {
        let h = e2_load_histograms(81);
        assert!(h.contains("central"));
        assert!(h.contains("retirement-tree"));
        assert!(h.contains('#'));
    }

    #[test]
    fn e8_central_is_message_optimal() {
        let report = e8_message_complexity(81);
        // Central: exactly 2 msgs/op.
        let central_line = report.lines().find(|l| l.starts_with("central")).expect("central row");
        assert!(central_line.contains("2.00"), "2 msgs/op: {central_line}");
    }
}
