//! Experiment E19 — the service boundary: real TCP clients in front of
//! the retirement tree.
//!
//! The paper's model drives the counter sequentially; the service layer
//! keeps that contract (one mutex around the backend) and lets *load*
//! show up where a deployed counter would feel it: as client-observed
//! queueing latency. A closed-loop run measures the service capacity;
//! open-loop runs below and above that capacity show the two regimes —
//! flat latency while the schedule is sustainable, tail blow-up past
//! saturation.

use distctr_analysis::{fmt_f64, Table};
use distctr_net::ThreadedTreeCounter;
use distctr_server::{run_load, CounterServer, LoadConfig, LoadReport};

/// E19 — serve a threaded tree on loopback, drive it with `conns`
/// concurrent TCP connections (closed loop, then open loop below/above
/// the measured capacity), and report throughput, latency percentiles
/// and the server-side accounting.
///
/// # Panics
///
/// Panics if the server cannot bind loopback, a load run fails, or the
/// values handed out over TCP are not exactly sequential.
#[must_use]
pub fn e19_service_loadgen(n: usize, conns: usize, ops: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E19. Service layer: {conns} TCP connections x {ops} total ops against {n} processors\n\n"
    ));
    let mut server =
        CounterServer::serve(ThreadedTreeCounter::new(n).expect("threaded tree")).expect("serve");
    let addr = server.local_addr();

    // Closed loop first: the measured service capacity.
    let closed = run_load(addr, &LoadConfig::closed(conns, ops)).expect("closed-loop run");
    assert!(closed.values_are_sequential_from(0), "sequential values over TCP");
    let capacity = closed.throughput().max(500.0);

    // Open loop below and above that capacity, on the same live server
    // (so the value sequence keeps going — and must stay exact).
    let lo = capacity * 0.5;
    let hi = capacity * 2.0;
    let open_lo = run_load(addr, &LoadConfig::open(conns, ops, lo)).expect("open-loop run (lo)");
    assert!(open_lo.values_are_sequential_from(ops as u64), "sequential values, open loop");
    let open_hi = run_load(addr, &LoadConfig::open(conns, ops, hi)).expect("open-loop run (hi)");
    assert!(open_hi.values_are_sequential_from(2 * ops as u64), "sequential values, saturated");

    let mut table = Table::new(vec![
        "mode",
        "target rate (ops/s)",
        "throughput (ops/s)",
        "p50 (us)",
        "p99 (us)",
        "max (us)",
    ]);
    let row = |t: &mut Table, mode: &str, rate: String, r: &LoadReport| {
        t.row(vec![
            mode.into(),
            rate,
            fmt_f64(r.throughput()),
            r.latency_percentile_us(50.0).to_string(),
            r.latency_percentile_us(99.0).to_string(),
            r.max_latency_us().to_string(),
        ]);
    };
    row(&mut table, "closed loop", "-".into(), &closed);
    row(&mut table, "open, 0.5x capacity", fmt_f64(lo), &open_lo);
    row(&mut table, "open, 2x capacity", fmt_f64(hi), &open_hi);
    out.push_str(&table.render());

    let stats = server.stats();
    out.push_str(&format!(
        "\nserver: {} sessions over {} connections, {} ops served, {} deduped, \
         {} wire errors, bottleneck {}, retirements {}\n",
        stats.sessions,
        stats.connections,
        stats.ops,
        stats.deduped,
        stats.wire_errors,
        stats.bottleneck,
        stats.retirements,
    ));
    out.push_str(
        "\nAll values exactly sequential across every connection and mode; the\n\
         inherent bottleneck surfaces as queueing latency once the open-loop\n\
         schedule outruns the serialized tree.\n",
    );
    server.shutdown().expect("shutdown");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_serves_real_sockets() {
        let report = e19_service_loadgen(8, 4, 200);
        assert!(report.contains("closed loop"), "{report}");
        assert!(report.contains("2x capacity"), "{report}");
        assert!(report.contains("0 wire errors"), "{report}");
    }
}
