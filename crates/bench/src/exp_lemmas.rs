//! Experiments E3-E5: the upper-bound lemmas measured on real runs.

use distctr_analysis::Table;
use distctr_core::{kmath, TreeCounter};
use distctr_sim::{Counter, DeliveryPolicy, ProcessorId, SequentialDriver, TraceMode};

use crate::algos::REPORT_SEED;

fn canonical_tree(k: u32, policy: DeliveryPolicy) -> TreeCounter {
    let n = kmath::leaves_of_order(k) as usize;
    let mut c = TreeCounter::builder(n)
        .expect("tree order within bounds")
        .trace(TraceMode::Off)
        .delivery(policy)
        .build()
        .expect("tree builds");
    let out = SequentialDriver::run_shuffled(&mut c, REPORT_SEED).expect("sequence runs");
    assert!(out.values_are_sequential(), "tree must count correctly");
    c
}

/// E3 — Number of Retirements Lemma: per-level retirement maxima vs the
/// pool bound `k^(k-i) - 1` (root: `k^k - 1`).
#[must_use]
pub fn e3_retirements_per_level(orders: &[u32]) -> String {
    let mut out = String::new();
    out.push_str("E3. Retirements per level vs the lemma bound pool(i) - 1\n\n");
    let mut table =
        Table::new(vec!["k", "level", "nodes", "max retirements", "lemma bound", "total on level"]);
    for &k in orders {
        let c = canonical_tree(k, DeliveryPolicy::Fifo);
        let topo = c.topology();
        let audit = c.audit();
        for level in 0..=k {
            table.row(vec![
                k.to_string(),
                level.to_string(),
                topo.nodes_on_level(level).to_string(),
                audit.max_retirements_on_level(topo, level).to_string(),
                (topo.pool_size(level) - 1).to_string(),
                audit.retirements_by_level()[level as usize].to_string(),
            ]);
        }
        assert!(
            audit.retirement_counts_within_pools(topo),
            "Number of Retirements Lemma must hold (k={k})"
        );
    }
    out.push_str(&table.render());
    out.push('\n');
    out
}

/// E4 — Grow Old Lemma and Retirement Lemma maxima, across delivery
/// policies (the lemmas are delay-independent).
#[must_use]
pub fn e4_per_op_lemmas(orders: &[u32]) -> String {
    let mut out = String::new();
    out.push_str("E4. Per-operation lemmas (Grow Old <= 4; Retirement <= 1), all policies\n\n");
    let mut table = Table::new(vec![
        "k",
        "policy",
        "max msgs (non-retiring node/op)",
        "max retirements (node/op)",
        "shim forwards",
    ]);
    for &k in orders {
        for policy in DeliveryPolicy::test_suite() {
            let name = policy.name();
            let c = canonical_tree(k, policy);
            let audit = c.audit();
            table.row(vec![
                k.to_string(),
                name.to_string(),
                audit.max_nonretiring_msgs_per_op().to_string(),
                audit.max_retirements_per_node_per_op().to_string(),
                audit.shim_forwards().to_string(),
            ]);
            assert!(audit.grow_old_lemma_holds(), "Grow Old Lemma (k={k}, {name})");
            assert!(audit.retirement_lemma_holds(), "Retirement Lemma (k={k}, {name})");
        }
    }
    out.push_str(&table.render());
    out.push('\n');
    out
}

/// E5 — Leaf Node Work and Inner Node Work Lemmas: leaf load component
/// and per-stint maxima vs the `O(k)` bound.
#[must_use]
pub fn e5_work_lemmas(orders: &[u32]) -> String {
    let mut out = String::new();
    out.push_str("E5. Work lemmas: leaf load and per-stint inner-node work\n\n");
    let mut table = Table::new(vec![
        "k",
        "stints",
        "max stint msgs",
        "8k+8 bound",
        "pure leaves",
        "leaf load",
        "bottleneck",
        "20k bound",
    ]);
    for &k in orders {
        let c = canonical_tree(k, DeliveryPolicy::Fifo);
        let topo = c.topology();
        let audit = c.audit();
        // Processors that never served an inner node carry pure leaf
        // load: exactly their inc request and the value reply. The ids a
        // node actually used are the pool prefix up to its retirement
        // count.
        let mut served = vec![false; c.processors()];
        for node in topo.nodes() {
            let pool = topo.pool(node);
            let used = audit.retirements_of(topo.flat_index(node)) + 1;
            for id in pool.clone().take(used as usize) {
                served[id as usize] = true;
            }
        }
        let pure_leaf_loads: Vec<u64> = (0..c.processors())
            .filter(|&p| !served[p])
            .map(|p| c.loads().load_of(ProcessorId::new(p)))
            .collect();
        for (i, &load) in pure_leaf_loads.iter().enumerate() {
            assert_eq!(load, 2, "pure leaf #{i} load is exactly 2 messages (k={k})");
        }
        let leaf_load_display = if pure_leaf_loads.is_empty() {
            "n/a (all drafted)".to_string()
        } else {
            "2".to_string()
        };
        table.row(vec![
            k.to_string(),
            audit.stints_completed().to_string(),
            audit.max_stint_msgs().to_string(),
            (8 * u64::from(k) + 8).to_string(),
            pure_leaf_loads.len().to_string(),
            leaf_load_display,
            c.loads().max_load().to_string(),
            (20 * u64::from(k)).to_string(),
        ]);
        assert!(
            audit.stint_work_within(8 * u64::from(k) + 8),
            "Inner Node Work Lemma (k={k}): {}",
            audit.max_stint_msgs()
        );
        assert!(
            c.loads().max_load() <= 20 * u64::from(k),
            "Bottleneck Theorem with constant 20 (k={k})"
        );
    }
    out.push_str(&table.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_bounds_hold_and_render() {
        let report = e3_retirements_per_level(&[2, 3]);
        assert!(report.contains("lemma bound"));
        // Level-k rows show 0 retirements (singleton pools).
        assert!(report.lines().count() > 6);
    }

    #[test]
    fn e4_all_policies_within_bounds() {
        let report = e4_per_op_lemmas(&[2, 3]);
        for p in ["fifo", "random", "lifo"] {
            assert!(report.contains(p), "{p} in report");
        }
    }

    #[test]
    fn e5_leaf_and_stint_bounds() {
        let report = e5_work_lemmas(&[2, 3]);
        assert!(report.contains("max stint msgs"));
    }
}
