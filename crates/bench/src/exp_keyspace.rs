//! Experiment E24 — adaptive per-key backend promotion under a
//! Zipf-skewed multi-counter workload.
//!
//! The paper's trade-off, per key: a centralized counter answers one
//! operation for one message, the retirement tree answers a *combined
//! batch* for `k+1` messages. A hot key amortizes the traversal and
//! wants the tree; a cold key cannot and wants the center. E24 puts a
//! keyspace of many counters behind the combining server, prices every
//! message at a fixed `μ` (busy-spun inside the backend, so the wire
//! and the scheduler cannot blur the model), and drives a Zipf-skewed
//! keyed load against three placement policies:
//!
//! * **all-central** — every key pinned to the centralized backend
//!   (`count × μ` per batch: the center cannot amortize);
//! * **all-tree** — every key pinned to the retirement tree
//!   (`(k+1) × μ` per traversal: cold keys overpay);
//! * **adaptive** — every key born central, the contention monitor
//!   promoting hot keys live (and demoting on cooldown).
//!
//! The claim under test: adaptive placement beats *both* static
//! extremes on goodput, because the skew gives it hot keys to promote
//! and cold keys to leave alone — while every key's acked values stay
//! exactly `0..ops_k` across the live migrations.

use std::time::Duration;

use distctr_analysis::{fmt_f64, Table};
use distctr_keyspace::{Keyspace, KeyspaceConfig, PromotionPolicy};
use distctr_server::{run_load, CounterServer, LoadConfig};

/// One placement policy's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyspaceRow {
    /// Policy label.
    pub policy: String,
    /// Operations attempted.
    pub ops: usize,
    /// Operations that exhausted their retry budget.
    pub failed: usize,
    /// Acked operations per second across all keys.
    pub goodput: f64,
    /// Median client-observed latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile client-observed latency, microseconds.
    pub p99_us: u64,
    /// Whether every key's acked values were exactly `0..ops_k`.
    pub exact: bool,
    /// Keys the backend ended up hosting.
    pub keys_hosted: u64,
    /// Promotions (central → tree) the run performed.
    pub promotions: u64,
    /// Demotions (tree → central) the run performed.
    pub demotions: u64,
}

/// The policy grid: both static extremes plus the adaptive default.
#[must_use]
pub fn e24_scenarios() -> Vec<(String, PromotionPolicy)> {
    vec![
        ("all-central".into(), PromotionPolicy::pinned_central()),
        ("all-tree".into(), PromotionPolicy::pinned_tree()),
        ("adaptive".into(), PromotionPolicy::default()),
    ]
}

/// The per-message price the cost model charges inside the backend.
#[must_use]
pub fn e24_per_message() -> Duration {
    Duration::from_micros(150)
}

/// Runs the Zipf-keyed closed-loop workload against a fresh keyspace
/// per policy and measures goodput, tails and placement churn.
///
/// # Panics
///
/// Panics if a server cannot bind loopback or a load run fails outright.
#[must_use]
pub fn e24_measure(
    n: usize,
    keys: usize,
    s: f64,
    conns: usize,
    ops_per_conn: usize,
    per_message: Duration,
    scenarios: &[(String, PromotionPolicy)],
) -> Vec<KeyspaceRow> {
    let ops = conns * ops_per_conn;
    scenarios
        .iter()
        .map(|(name, policy)| {
            let backend = Keyspace::sim(KeyspaceConfig {
                policy: policy.clone(),
                per_message,
                ..KeyspaceConfig::new(n)
            });
            let mut server = CounterServer::serve_combining(backend).expect("serve");
            let config = LoadConfig::closed(conns, ops).with_keys(keys, s, 0xE24);
            let report = run_load(server.local_addr(), &config).expect("load run");
            let stats = server.stats();
            server.shutdown().expect("shutdown");
            KeyspaceRow {
                policy: name.clone(),
                ops,
                failed: report.failed,
                goodput: report.throughput(),
                p50_us: report.latency_percentile_us(50.0),
                p99_us: report.latency_percentile_us(99.0),
                exact: report.failed == 0
                    && report.ops == ops
                    && report.values_are_sequential_per_key(),
                keys_hosted: stats.keys_hosted,
                promotions: stats.promotions,
                demotions: stats.demotions,
            }
        })
        .collect()
}

/// Renders the E24 table.
#[must_use]
pub fn e24_render(
    n: usize,
    keys: usize,
    s: f64,
    per_message: Duration,
    rows: &[KeyspaceRow],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E24. Keyspace placement: closed-loop keyed TCP incs over {keys} counters\n\
         (zipf s = {s}), hosted on {n}-processor backends, every message priced at\n\
         {} us inside the backend\n\n",
        per_message.as_micros()
    ));
    let mut table = Table::new(vec![
        "policy",
        "ops",
        "goodput (incs/s)",
        "p50 (us)",
        "p99 (us)",
        "exact",
        "keys",
        "promotions",
        "demotions",
    ]);
    for r in rows {
        table.row(vec![
            r.policy.clone(),
            r.ops.to_string(),
            fmt_f64(r.goodput),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            if r.exact { "yes".into() } else { "NO".into() },
            r.keys_hosted.to_string(),
            r.promotions.to_string(),
            r.demotions.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nreading: the center cannot amortize (count x u per batch), the tree overpays\n\
         on cold keys ((k+1) x u per traversal of a singleton batch). Adaptive placement\n\
         promotes the Zipf head to the tree and leaves the tail centralized, beating both\n\
         static extremes on goodput — with every key's values exactly 0..ops_k across\n\
         the live migrations.\n",
    );
    out
}

/// Serializes the measurement as the checked-in `BENCH_keyspace.json`
/// artifact (hand-rolled JSON; the harness has no serde dependency).
#[must_use]
pub fn e24_json(
    n: usize,
    keys: usize,
    s: f64,
    conns: usize,
    ops_per_conn: usize,
    per_message: Duration,
    rows: &[KeyspaceRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"keyspace\",\n");
    out.push_str("  \"backend\": \"keyspace over sim trees\",\n");
    out.push_str("  \"mode\": \"closed-loop keyed TCP, combining server\",\n");
    out.push_str(&format!("  \"processors\": {n},\n"));
    out.push_str(&format!("  \"keys\": {keys},\n"));
    out.push_str(&format!("  \"zipf_s\": {s},\n"));
    out.push_str(&format!("  \"conns\": {conns},\n"));
    out.push_str(&format!("  \"ops_per_conn\": {ops_per_conn},\n"));
    out.push_str(&format!("  \"per_message_us\": {},\n", per_message.as_micros()));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"policy\": \"{}\", \"ops\": {}, \"failed\": {}, \
             \"goodput_incs_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"exact\": {}, \"keys_hosted\": {}, \"promotions\": {}, \"demotions\": {} }}{}\n",
            r.policy,
            r.ops,
            r.failed,
            r.goodput,
            r.p50_us,
            r.p99_us,
            r.exact,
            r.keys_hosted,
            r.promotions,
            r.demotions,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e24_measures_renders_and_serializes() {
        // Tiny sizes and a free cost model: this test pins the harness
        // shape (exactness, stats plumbing, rendering), not the
        // performance ordering — the report gate checks that at real
        // sizes.
        let rows = e24_measure(8, 3, 1.2, 2, 20, Duration::ZERO, &e24_scenarios());
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.exact), "a policy lost exactness: {rows:?}");
        assert!(rows.iter().all(|r| r.goodput > 0.0));
        assert!(rows.iter().all(|r| r.keys_hosted >= 1 && r.keys_hosted <= 3));
        let central = &rows[0];
        let tree = &rows[1];
        assert_eq!(central.promotions, 0, "pinned central never promotes");
        assert_eq!(tree.promotions, 0, "pinned tree is born on the tree, no migration");
        assert_eq!(tree.demotions, 0);
        let report = e24_render(8, 3, 1.2, Duration::ZERO, &rows);
        assert!(report.contains("goodput"), "{report}");
        assert!(report.contains("adaptive"), "{report}");
        let json = e24_json(8, 3, 1.2, 2, 20, Duration::ZERO, &rows);
        assert!(json.contains("\"experiment\": \"keyspace\""), "{json}");
        assert!(json.contains("\"policy\": \"adaptive\""), "{json}");
    }

    #[test]
    fn the_policy_grid_covers_both_extremes_and_the_adaptive_default() {
        let scenarios = e24_scenarios();
        assert_eq!(scenarios.len(), 3);
        assert_eq!(scenarios[0].0, "all-central");
        assert_eq!(scenarios[1].0, "all-tree");
        assert_eq!(scenarios[2].0, "adaptive");
    }
}
