//! Experiment E14 — linearizability under overlapping operations.
//!
//! The paper's model serializes operations; its related work cites
//! Herlihy-Shavit-Waarts, *Linearizable Counting Networks*, which shows
//! plain counting networks are **not** linearizable once operations
//! overlap. This experiment reproduces the classic stalled-token
//! execution with targeted (scripted) message delays and checks every
//! implementation's history with the counter-specialized Wing-Gong test.

use distctr_analysis::Table;
use distctr_baselines::{CentralCounter, CountingNetworkCounter};
use distctr_sim::{
    counter_history_linearizable, DeliveryPolicy, LinearizabilityVerdict, OpRecord,
    OverlappedCounter, ProcessorId, SimTime, TraceMode,
};

fn stalled_schedule<C: OverlappedCounter>(counter: &mut C) -> Vec<OpRecord> {
    let t = SimTime::from_ticks;
    counter.start_inc(ProcessorId::new(0)).expect("T1");
    counter.advance_until(t(50)).expect("advance");
    counter.start_inc(ProcessorId::new(1)).expect("T2");
    counter.advance_until(t(70)).expect("advance");
    counter.start_inc(ProcessorId::new(2)).expect("T3");
    counter.finish_all().expect("drain").into_iter().map(|c| c.to_record()).collect()
}

/// E14 — the stalled-token schedule against the overlappable counters.
#[must_use]
pub fn e14_linearizability() -> String {
    let mut out = String::new();
    out.push_str(
        "E14. Linearizability under overlapping ops (stalled-token schedule,\n     scripted delays: T1's second hop takes 100 ticks)\n\n",
    );
    let mut table = Table::new(vec![
        "implementation",
        "history (start..end = value)",
        "gap-free",
        "linearizable",
    ]);

    let mut render = |name: &str, records: Vec<OpRecord>| {
        let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
        values.sort_unstable();
        let gap_free = values.iter().enumerate().all(|(i, &v)| v == i as u64);
        let history = records
            .iter()
            .map(|r| format!("{}..{}={}", r.started_at.ticks(), r.completed_at.ticks(), r.value))
            .collect::<Vec<_>>()
            .join("  ");
        let verdict = match counter_history_linearizable(&records) {
            LinearizabilityVerdict::Linearizable => "yes".to_string(),
            LinearizabilityVerdict::Violation { earlier, later } => {
                format!("NO ({} before {} yet larger value)", earlier.op, later.op)
            }
        };
        table.row(vec![
            name.to_string(),
            history,
            if gap_free { "yes".into() } else { "NO".to_string() },
            verdict,
        ]);
    };

    {
        let mut c = CountingNetworkCounter::with_policy(
            4,
            2,
            TraceMode::Contacts,
            DeliveryPolicy::scripted([1, 100]),
        )
        .expect("counting network");
        render("counting-net[w=2]", stalled_schedule(&mut c));
    }
    {
        let mut c =
            CentralCounter::with_policy(4, TraceMode::Contacts, DeliveryPolicy::scripted([1, 100]))
                .expect("central");
        render("central", stalled_schedule(&mut c));
    }
    out.push_str(&table.render());
    out.push_str(
        "\n(counting networks are quiescently consistent but not linearizable —\n the distinction Herlihy-Shavit-Waarts formalize; the paper's sequential\n model sidesteps it by never overlapping operations)\n\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_shows_the_separation() {
        let report = e14_linearizability();
        // The counting network row must show the violation; central must
        // not; both stay gap-free.
        let net_line = report.lines().find(|l| l.starts_with("counting-net")).expect("row");
        assert!(net_line.contains("NO ("), "violation reported: {net_line}");
        let central_line = report.lines().find(|l| l.starts_with("central")).expect("row");
        assert!(central_line.trim_end().ends_with("yes"), "central linearizable: {central_line}");
        assert!(!report.contains("gap-free  NO"));
    }
}
