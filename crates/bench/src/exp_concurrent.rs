//! Experiment E9 — the concurrency extension: combining trees,
//! counting networks and diffracting trees only pay off when operations
//! overlap, which is exactly the regime the paper's sequential model
//! excludes. This experiment shows both regimes side by side.

use distctr_analysis::{fmt_f64, Table};
use distctr_sim::{ConcurrentDriver, DeliveryPolicy, TraceMode};

use crate::algos::Algo;

/// E9 — contention under batched concurrency: for each batch size, run a
/// full permutation in batches and report the bottleneck and the
/// coordination-structure effectiveness (combining/diffraction rates are
/// reported by the implementations' own counters where applicable).
#[must_use]
pub fn e9_concurrency(n: usize, batches: &[usize]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E9. Concurrency extension (n = {n}; one op per processor, injected in batches)\n\n"
    ));
    let mut table = Table::new(vec!["algorithm", "batch", "bottleneck", "total msgs", "gap-free"]);
    let width = ((n as f64).sqrt() as usize).next_power_of_two().clamp(2, 64);
    let algos = [
        Algo::Central,
        Algo::Combining,
        Algo::CountingNetwork { width },
        Algo::Diffracting { depth: width.trailing_zeros() },
    ];
    for algo in algos {
        for &batch in batches {
            let row = (|| -> Result<(u64, u64, bool), String> {
                let mut counter = algo.build_concurrent(n, TraceMode::Off, DeliveryPolicy::Fifo)?;
                let values = ConcurrentDriver::run_batches(counter.as_mut(), batch, 77)
                    .map_err(|e| e.to_string())?;
                Ok((
                    counter.loads().max_load(),
                    counter.loads().total_messages(),
                    ConcurrentDriver::values_are_gap_free(&values),
                ))
            })();
            match row {
                Ok((bottleneck, total, gap_free)) => {
                    table.row(vec![
                        algo.name(),
                        batch.to_string(),
                        bottleneck.to_string(),
                        total.to_string(),
                        if gap_free { "yes".into() } else { "NO".to_string() },
                    ]);
                }
                Err(e) => {
                    table.row(vec![
                        algo.name(),
                        batch.to_string(),
                        format!("error: {e}"),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    out.push_str(&table.render());
    out.push('\n');

    // Effectiveness detail for the two structures with internal rates.
    let mut detail = Table::new(vec!["structure", "batch", "rate"]);
    for &batch in batches {
        let mut comb = distctr_baselines::CombiningTreeCounter::new(n).expect("combining");
        ConcurrentDriver::run_batches(&mut comb, batch, 77).expect("runs");
        detail.row(vec![
            "combining rate".into(),
            batch.to_string(),
            fmt_f64(comb.combining_rate()),
        ]);
        let mut diff = distctr_baselines::DiffractingTreeCounter::new(n, width.trailing_zeros())
            .expect("diffracting");
        ConcurrentDriver::run_batches(&mut diff, batch, 77).expect("runs");
        detail.row(vec![
            "diffraction rate".into(),
            batch.to_string(),
            fmt_f64(diff.diffraction_rate()),
        ]);
    }
    out.push_str(&detail.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_all_gap_free_and_rates_grow_with_batch() {
        let report = e9_concurrency(32, &[1, 32]);
        assert!(!report.contains("NO"), "{report}");
        assert!(!report.contains("error"), "{report}");
        assert!(report.contains("combining rate"));
        assert!(report.contains("diffraction rate"));
    }
}
