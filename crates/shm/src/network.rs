//! The bitonic counting network on real atomics.
//!
//! `distctr-baselines` builds the Aspnes–Herlihy–Shavit bitonic network
//! and *simulates* it under the paper's message model; this module runs
//! the **same compiled wiring** with hardware atomics. A balancer is one
//! `fetch_xor(1)` on its toggle word (previous value even → token leaves
//! on the top wire, odd → bottom), an exit counter is one `fetch_add`,
//! and the token's value is `rank + width * local` — the counter at exit
//! rank `r` hands out `r, r + w, r + 2w, …`. Every operation is a fixed
//! sequence of `O(log² w)` uncontended-on-average RMWs with no locks and
//! no retry loops, so the structure is lock-free (in fact wait-free:
//! each token takes exactly `depth + 1` RMWs).
//!
//! Counting networks are **quiescently consistent, not linearizable**:
//! with concurrent tokens, a token that started later can overtake and
//! return a smaller value. The E26 gate therefore holds this backend to
//! the gap-free `0..ops` multiset check and *reports* — rather than
//! rejects — real-time reorderings; the tree and central backends are
//! held to full linearizability.

use distctr_baselines::bitonic::BitonicNetwork;

use crate::pad::CachePadded;
use crate::sync::{AtomicU64, Ordering};

/// A width-`w` bitonic counting network over atomics.
#[derive(Debug)]
pub struct AtomicBitonicCounter {
    net: BitonicNetwork,
    /// One toggle word per balancer: bit 0 is the wire selector.
    toggles: Vec<CachePadded<AtomicU64>>,
    /// One counter per exit rank.
    exits: Vec<CachePadded<AtomicU64>>,
    /// Tokens admitted per entry wire (load accounting only; updated by
    /// the wire's own callers, so typically uncontended).
    entries: Vec<CachePadded<AtomicU64>>,
}

impl AtomicBitonicCounter {
    /// Builds the network. `width` must be a power of two (panics
    /// otherwise, like the baseline constructor).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or not a power of two.
    #[must_use]
    pub fn new(width: usize) -> Self {
        let net = BitonicNetwork::new(width);
        AtomicBitonicCounter {
            toggles: (0..net.balancer_count())
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            exits: (0..width).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            entries: (0..width).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            net,
        }
    }

    /// Network width (= entry wires = exit counters).
    #[must_use]
    pub fn width(&self) -> usize {
        self.net.width()
    }

    /// Sends one token in on `entry_wire` (taken mod width) and returns
    /// the value its exit counter hands out. Callers should spread
    /// statically over entry wires (thread id mod width) — a shared
    /// dispatch counter would reintroduce the central hot spot the
    /// network exists to avoid.
    pub fn inc_on(&self, entry_wire: usize) -> u64 {
        let w = self.net.width();
        let mut wire = entry_wire % w;
        self.entries[wire].fetch_add(1, Ordering::Relaxed);
        let mut next = self.net.entry(wire);
        while let Some(b) = next {
            let bal = self.net.balancer(b);
            let prev = self.toggles[b as usize].fetch_xor(1, Ordering::SeqCst);
            wire = if prev & 1 == 0 { bal.top } else { bal.bottom };
            next = self.net.next_on_wire(wire, b);
        }
        let rank = self.net.exit_rank(wire);
        let local = self.exits[rank].fetch_add(1, Ordering::SeqCst);
        rank as u64 + w as u64 * local
    }

    /// Tokens that have fully traversed, per exit rank — the quiescent
    /// state the step property is stated over.
    #[must_use]
    pub fn exit_counts(&self) -> Vec<u64> {
        self.exits.iter().map(|c| c.load(Ordering::SeqCst)).collect()
    }

    /// Values handed out so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.exit_counts().iter().sum()
    }

    /// The hottest single location's traffic: each first-column balancer
    /// absorbs every token entering on its two wires, and with static
    /// thread→wire assignment that is the worst contention point of the
    /// whole traversal (deeper columns only ever see a subset split
    /// evenly). Computed from the per-wire entry counts.
    #[must_use]
    pub fn bottleneck(&self) -> u64 {
        let w = self.net.width();
        if w == 1 {
            return self.issued();
        }
        let mut per_balancer = vec![0u64; self.net.balancer_count()];
        for wire in 0..w {
            if let Some(b) = self.net.entry(wire) {
                per_balancer[b as usize] += self.entries[wire].load(Ordering::Relaxed);
            }
        }
        per_balancer.into_iter().max().unwrap_or(0)
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::sync::{thread, Arc};
    use distctr_baselines::bitonic::has_step_property;

    #[test]
    fn sequential_tokens_count_zero_upward_on_any_entry_pattern() {
        for w in [2usize, 4, 8] {
            let c = AtomicBitonicCounter::new(w);
            assert_eq!(c.width(), w);
            for i in 0..3 * w as u64 {
                assert_eq!(c.inc_on(i as usize), i, "width {w}: i-th sequential token");
            }
            assert!(has_step_property(&c.exit_counts()), "{:?}", c.exit_counts());
        }
    }

    #[test]
    fn concurrent_tokens_partition_the_range_and_leave_the_step_property() {
        let w = 8;
        let c = Arc::new(AtomicBitonicCounter::new(w));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                thread::spawn(move || (0..200).map(|_| c.inc_on(t)).collect::<Vec<u64>>())
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().expect("inc")).collect();
        all.sort_unstable();
        assert_eq!(all, (0..800).collect::<Vec<_>>(), "gap-free despite concurrency");
        let counts = c.exit_counts();
        assert!(has_step_property(&counts), "quiescent step property: {counts:?}");
        assert_eq!(c.issued(), 800);
        assert!(c.bottleneck() >= 800 / (w as u64 / 2), "some first balancer took its share");
    }
}
