//! Synchronization primitives, cfg-switched between `std` and `loom`.
//!
//! Everything in this crate that synchronizes between threads imports
//! from here, never from `std::sync` directly. A normal build re-exports
//! `std`; `--features loom` swaps in the model checker's instrumented
//! versions so the `tests/loom.rs` suite can enumerate interleavings of
//! the exact code that ships. The two surfaces are API-compatible, so no
//! other file in the crate mentions the feature.

#[cfg(feature = "loom")]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
#[cfg(feature = "loom")]
pub(crate) use loom::sync::{Arc, Mutex};
#[cfg(feature = "loom")]
pub(crate) use loom::{hint, thread};

#[cfg(not(feature = "loom"))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
#[cfg(not(feature = "loom"))]
pub(crate) use std::sync::{Arc, Mutex};
#[cfg(not(feature = "loom"))]
pub(crate) use std::{hint, thread};
