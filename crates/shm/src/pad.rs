//! Cache-line padding for contended atomics.

use std::ops::Deref;

/// Aligns (and thereby pads) a value to 128 bytes — two 64-byte lines,
/// covering the adjacent-line prefetcher on x86 and the 128-byte lines
/// on some arm64 parts. Without it, the per-exit counters of the
/// counting network (or the per-thread combining slots) share lines and
/// the "lock-free" structure serializes on cache-coherence traffic
/// anyway — false sharing is the classic way a counting-network port
/// quietly loses its scalability.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own pair of cache lines.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_separates_neighbours_by_at_least_128_bytes() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(std::mem::size_of::<[CachePadded<u64>; 2]>() >= 256);
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
    }
}
