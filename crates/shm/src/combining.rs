//! Flat combining: publish your request, and whoever holds the
//! combiner lock executes everyone's.
//!
//! The middle contender of the E26 bake-off, between the central cell
//! (all threads collide on one line) and the counting network (no
//! combining at all). Each thread owns a padded *publication slot*; to
//! increment it marks the slot `PENDING` and then either (a) acquires
//! the combiner lock with a single CAS, scans every slot, satisfies all
//! pending requests with **one** `fetch_add` of the batch size, and
//! distributes the range — or (b) spins locally on its own slot until a
//! combiner hands it a value. Under contention the shared cell is
//! touched once per *batch* instead of once per operation, which is the
//! entire trick; the cost is the combiner's O(threads) scan.
//!
//! Values within one combined batch are assigned in slot order, which
//! nests inside the batch's single atomic grab — the object is
//! linearizable (each op linearizes at its batch's `fetch_add`), and
//! the E26 gate holds it to that.

use crate::pad::CachePadded;
use crate::sync::{hint, AtomicU64, Ordering};

const IDLE: u64 = 0;
const PENDING: u64 = 1;
const DONE: u64 = 2;

#[derive(Debug, Default)]
struct Slot {
    /// IDLE → PENDING (owner) → DONE (combiner) → IDLE (owner).
    state: AtomicU64,
    /// The granted value; meaningful only in state DONE.
    result: AtomicU64,
}

/// A flat-combining fetch&increment counter for up to a fixed number of
/// threads.
#[derive(Debug)]
pub struct FlatCombiningCounter {
    value: CachePadded<AtomicU64>,
    /// The combiner lock: 0 free, 1 held. A plain CAS lock — *not* a
    /// queue lock — because a loser does not wait for it; it waits for
    /// its slot.
    combiner: CachePadded<AtomicU64>,
    slots: Vec<CachePadded<Slot>>,
    /// Batches executed (each cost one `fetch_add` on `value`).
    batches: CachePadded<AtomicU64>,
}

impl FlatCombiningCounter {
    /// A counter with one publication slot per thread; `threads` is the
    /// maximum caller index, not a spawn count.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        FlatCombiningCounter {
            value: CachePadded::new(AtomicU64::new(0)),
            combiner: CachePadded::new(AtomicU64::new(0)),
            slots: (0..threads.max(1)).map(|_| CachePadded::new(Slot::default())).collect(),
            batches: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Slots available (= maximum concurrent callers).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.slots.len()
    }

    /// Takes the next value on behalf of caller `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is outside the slot range — two concurrent
    /// callers must never share a slot.
    pub fn inc_shared(&self, thread: usize) -> u64 {
        let slot = &self.slots[thread];
        slot.state.store(PENDING, Ordering::SeqCst);
        let mut spins = 0u32;
        loop {
            if slot.state.load(Ordering::SeqCst) == DONE {
                let v = slot.result.load(Ordering::SeqCst);
                slot.state.store(IDLE, Ordering::SeqCst);
                return v;
            }
            if self.combiner.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
                self.combine();
                self.combiner.store(0, Ordering::SeqCst);
                // Own request was pending during our own scan, so it is
                // DONE now; the next loop iteration collects it.
                continue;
            }
            spins += 1;
            if spins.is_multiple_of(32) {
                crate::sync::thread::yield_now();
            } else {
                hint::spin_loop();
            }
        }
    }

    /// One combining pass: satisfy every slot currently PENDING with a
    /// single grab of the shared cell.
    fn combine(&self) {
        let pending: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state.load(Ordering::SeqCst) == PENDING)
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            return;
        }
        let base = self.value.fetch_add(pending.len() as u64, Ordering::SeqCst);
        self.batches.fetch_add(1, Ordering::SeqCst);
        for (offset, i) in pending.into_iter().enumerate() {
            let slot = &self.slots[i];
            slot.result.store(base + offset as u64, Ordering::SeqCst);
            slot.state.store(DONE, Ordering::SeqCst);
        }
    }

    /// Values handed out so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }

    /// Combining passes executed; `issued / batches` is the achieved
    /// combining factor.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::SeqCst)
    }

    /// Hottest-location traffic: the shared cell is touched once per
    /// batch, the whole point of combining.
    #[must_use]
    pub fn bottleneck(&self) -> u64 {
        self.batches()
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::sync::{thread, Arc};

    #[test]
    fn sequential_calls_degenerate_to_batches_of_one() {
        let c = FlatCombiningCounter::new(4);
        assert_eq!(c.threads(), 4);
        for i in 0..10 {
            assert_eq!(c.inc_shared(i as usize % 4), i);
        }
        assert_eq!(c.issued(), 10);
        assert_eq!(c.batches(), 10, "no concurrency, no combining");
    }

    #[test]
    fn concurrent_callers_combine_and_partition_the_range() {
        const THREADS: usize = 4;
        const PER: u64 = 500;
        let c = Arc::new(FlatCombiningCounter::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let c = Arc::clone(&c);
                thread::spawn(move || (0..PER).map(|_| c.inc_shared(t)).collect::<Vec<u64>>())
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().expect("inc")).collect();
        all.sort_unstable();
        let n = THREADS as u64 * PER;
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "every value exactly once");
        assert_eq!(c.issued(), n);
        assert!(c.batches() <= n, "combining can only reduce shared-cell traffic");
    }
}
