//! A multi-producer mailbox with single-drainer handoff.
//!
//! The shared-memory tree driver replaces the channel mesh of
//! `distctr-net` with one mailbox per processor slot; any thread may
//! push, and whichever thread notices work claims the **drain right**
//! with a CAS on the `busy` flag so at most one thread feeds a slot's
//! engine at a time (the engine lock would serialize them anyway — the
//! flag keeps losers productive elsewhere instead of queueing).
//!
//! The delicate part is the handoff when the drainer leaves: a producer
//! that pushed while `busy` was held relies on the drainer to process
//! the item, while the drainer only processes what it saw before its
//! last empty check. The classic lost-wakeup window — push lands after
//! the drainer's empty check but before it clears `busy`, so the
//! producer saw `busy == true` and walked away — is closed by
//! re-checking the queue *after* clearing `busy` and re-claiming if
//! anything slipped in. `tests/loom.rs` model-checks exactly this
//! protocol (and demonstrates the harness catches the naive variant
//! without the re-check).

use std::collections::VecDeque;
use std::sync::PoisonError;

use crate::sync::{AtomicBool, Mutex, Ordering};

/// A queue of `T` that any thread can push to, drained by one thread at
/// a time.
#[derive(Debug)]
pub struct Mailbox<T> {
    queue: Mutex<VecDeque<T>>,
    busy: AtomicBool,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    /// An empty mailbox.
    #[must_use]
    pub fn new() -> Self {
        Mailbox { queue: Mutex::new(VecDeque::new()), busy: AtomicBool::new(false) }
    }

    /// Enqueues one item. Never blocks beyond the internal queue lock.
    pub fn push(&self, item: T) {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).push_back(item);
    }

    /// Pops one item without claiming the drain right. Only sound when
    /// the caller otherwise guarantees a single consumer (the
    /// deterministic sequential pump, which runs under `&mut` on the
    /// whole arena).
    pub(crate) fn pop(&self) -> Option<T> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
    }

    /// Whether the queue is currently empty (racy by nature; used as a
    /// work hint by the pump, never for correctness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).is_empty()
    }

    /// Claims the drain right and feeds every queued item to `handle`
    /// until the mailbox is observed empty; returns the number
    /// processed. If another thread holds the drain right, returns 0
    /// immediately — that thread is responsible for everything currently
    /// queued, including items pushed while it drains (guaranteed by its
    /// exit re-check below).
    pub fn drain(&self, mut handle: impl FnMut(T)) -> usize {
        let mut processed = 0;
        loop {
            if self.busy.compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst).is_err()
            {
                return processed;
            }
            while let Some(item) = self.pop() {
                handle(item);
                processed += 1;
            }
            self.busy.store(false, Ordering::SeqCst);
            // The lost-wakeup close: a push that landed after our last
            // pop saw `busy == true` and walked away, counting on us.
            // Now that `busy` is clear, either we re-claim and process
            // it, or whoever beat us to the CAS does.
            if self.is_empty() {
                return processed;
            }
        }
    }

    /// The naive drain **without** the exit re-check: claim, drain, drop
    /// the flag, leave. Kept (loom builds only) as the negative control
    /// for the model-test suite, which proves the harness detects the
    /// stranded-item interleaving this version permits.
    #[cfg(feature = "loom")]
    pub fn drain_naive(&self, mut handle: impl FnMut(T)) -> usize {
        let mut processed = 0;
        if self.busy.compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst).is_err() {
            return processed;
        }
        while let Some(item) = self.pop() {
            handle(item);
            processed += 1;
        }
        self.busy.store(false, Ordering::SeqCst);
        processed
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::sync::{thread, Arc};
    use std::sync::atomic::{AtomicU64, AtomicUsize};

    #[test]
    fn fifo_within_a_single_producer() {
        let mb = Mailbox::new();
        for i in 0..5 {
            mb.push(i);
        }
        let mut seen = Vec::new();
        assert_eq!(mb.drain(|i| seen.push(i)), 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert!(mb.is_empty());
    }

    #[test]
    fn every_pushed_item_is_drained_exactly_once_under_contention() {
        const PRODUCERS: usize = 4;
        const PER: u64 = 500;
        let mb = Arc::new(Mailbox::new());
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let mb = Arc::clone(&mb);
                let sum = Arc::clone(&sum);
                let count = Arc::clone(&count);
                thread::spawn(move || {
                    for i in 0..PER {
                        mb.push(p as u64 * PER + i);
                        mb.drain(|v| {
                            sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                            count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer");
        }
        // Whatever drains last leaves nothing behind.
        mb.drain(|v| {
            sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
            count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        let n = PRODUCERS as u64 * PER;
        assert_eq!(count.load(std::sync::atomic::Ordering::Relaxed), n as usize);
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), n * (n - 1) / 2);
    }
}
