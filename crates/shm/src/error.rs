//! Error type of the shared-memory backends.

use std::error::Error;
use std::fmt;

/// Errors from the shared-memory counters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShmError {
    /// Invalid network size / tree order.
    Order(String),
    /// Out-of-range initiator.
    UnknownProcessor {
        /// The offending index.
        index: usize,
        /// The arena size.
        processors: usize,
    },
    /// An operation's reply never materialized — only possible if a
    /// protocol message was dropped inside the arena, which the
    /// fault-free shared-memory driver never does; surfaced instead of
    /// spinning forever.
    Stalled {
        /// The operation's sequence number.
        op_seq: u64,
    },
}

impl fmt::Display for ShmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmError::Order(msg) => write!(f, "invalid tree order: {msg}"),
            ShmError::UnknownProcessor { index, processors } => write!(
                f,
                "processor index {index} out of range for an arena of {processors} processors"
            ),
            ShmError::Stalled { op_seq } => {
                write!(f, "operation {op_seq} stalled: its reply never arrived")
            }
        }
    }
}

impl Error for ShmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ShmError::Order("bad".into()).to_string().contains("bad"));
        assert!(ShmError::UnknownProcessor { index: 9, processors: 2 }.to_string().contains('9'));
        assert!(ShmError::Stalled { op_seq: 41 }.to_string().contains("41"));
    }
}
