//! The E26 bake-off harness: one backend, `t` free-running threads,
//! full telemetry.
//!
//! Each measured cell spawns `threads` OS threads against a fresh
//! backend instance. Every thread records its own latency
//! [`Histogram`] (identical layout, merged afterwards — no shared
//! recorder on the hot path) and its own [`ThreadHistory`] event log;
//! after the join the merged history is fed to the fetch&increment
//! checker, so every published throughput number carries its own
//! correctness verdict: gap-free `0..ops` for every backend,
//! linearizable for the backends that promise it (the counting network
//! is quiescently consistent by design, so its real-time violations are
//! *reported*, not gated).
//!
//! This module drives real `std` threads and wall clocks, so it is
//! compiled out under the loom model (`--features loom`); the loom
//! suite exercises the same structures through its own tiny models.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use distctr_analysis::Histogram;
use distctr_check::{HistoryRecorder, ThreadHistory};
use distctr_sim::ProcessorId;

use crate::central::CentralCounter;
use crate::combining::FlatCombiningCounter;
use crate::network::AtomicBitonicCounter;
use crate::tree::ShmTreeCounter;

/// Latency histogram layout shared by every thread: 256 ns bins from 0
/// to ~16.8 ms (the tail clamps into the last bin).
const LAT_LO_NS: u64 = 0;
const LAT_HI_NS: u64 = (1 << 24) - 1;
const LAT_BINS: usize = 1 << 16;

/// The contenders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The retirement tree on the shared-memory arena ([`ShmTreeCounter`]).
    Tree,
    /// Flat combining over one shared cell ([`FlatCombiningCounter`]).
    Combining,
    /// The bitonic counting network on atomics ([`AtomicBitonicCounter`]).
    Network,
    /// One padded `fetch_add` cell ([`CentralCounter`]) — the reference.
    Central,
}

impl BackendKind {
    /// Every contender, in report order.
    pub const ALL: [BackendKind; 4] =
        [BackendKind::Tree, BackendKind::Combining, BackendKind::Network, BackendKind::Central];

    /// Stable name used in reports, JSON, and the loadgen CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Tree => "shm-tree",
            BackendKind::Combining => "shm-combining",
            BackendKind::Network => "shm-network",
            BackendKind::Central => "shm-central",
        }
    }

    /// Whether the backend promises linearizability (the counting
    /// network only promises quiescent consistency).
    #[must_use]
    pub fn promises_linearizability(self) -> bool {
        !matches!(self, BackendKind::Network)
    }
}

/// One measured cell of the bake-off grid.
#[derive(Debug, Clone)]
pub struct BakeoffRow {
    /// Backend name (see [`BackendKind::name`]).
    pub backend: &'static str,
    /// Concurrent caller threads.
    pub threads: usize,
    /// Operations issued by each thread.
    pub ops_per_thread: u64,
    /// Total operations completed (`threads * ops_per_thread`).
    pub ops: u64,
    /// Wall-clock for the whole run (barrier release to last return).
    pub elapsed_ns: u64,
    /// Aggregate throughput.
    pub incs_per_sec: f64,
    /// 99th-percentile per-operation latency, microseconds
    /// (conservative: upper edge of the p99 histogram bin).
    pub p99_us: f64,
    /// Per-thread fairness: slowest thread's throughput over the
    /// fastest's, in `(0, 1]`; 1.0 means perfectly even progress.
    pub fairness: f64,
    /// Every value in `0..ops` returned exactly once.
    pub gap_free: bool,
    /// Gap-free and no real-time reordering observed.
    pub linearizable: bool,
    /// Count of real-time order violations observed (informative for
    /// the counting network; must be 0 for the others).
    pub lin_violations: usize,
    /// The backend's hottest-location traffic after the run (each
    /// backend's own definition; see the module docs of each).
    pub bottleneck: u64,
}

/// One increment charged to the calling thread, shared across workers.
type SharedOp = Arc<dyn Fn(usize) -> u64 + Send + Sync>;
/// Reads the backend's hottest-location traffic after the run.
type BottleneckFn = Box<dyn Fn() -> u64>;

/// What each worker thread brings home.
struct ThreadReport {
    history: ThreadHistory,
    latencies: Histogram,
    elapsed_ns: u64,
}

/// Runs one cell: `threads` threads, each performing `ops_per_thread`
/// increments against a fresh `kind` backend.
///
/// # Panics
///
/// Panics if a worker thread dies or (tree backend) an operation
/// stalls — both indicate a bug in the structure under test, and the
/// bake-off's job is to surface it loudly.
#[must_use]
pub fn run_cell(kind: BackendKind, threads: usize, ops_per_thread: u64) -> BakeoffRow {
    let threads = threads.max(1);
    let ops_per_thread = ops_per_thread.max(1);

    // Build the backend and wrap its call surface; `op(thread)` is one
    // increment charged to that caller.
    let (op, bottleneck): (SharedOp, BottleneckFn) = match kind {
        BackendKind::Tree => {
            let c = Arc::new(ShmTreeCounter::new(threads.max(2)).expect("arena"));
            let procs = c.processors();
            let run = Arc::clone(&c);
            (
                Arc::new(move |t| run.inc_shared(ProcessorId::new(t % procs)).expect("tree inc")),
                Box::new(move || {
                    c.quiesce();
                    c.bottleneck()
                }),
            )
        }
        BackendKind::Combining => {
            let c = Arc::new(FlatCombiningCounter::new(threads));
            let run = Arc::clone(&c);
            (Arc::new(move |t| run.inc_shared(t)), Box::new(move || c.bottleneck()))
        }
        BackendKind::Network => {
            let width = threads.next_power_of_two().max(2);
            let c = Arc::new(AtomicBitonicCounter::new(width));
            let run = Arc::clone(&c);
            (Arc::new(move |t| run.inc_on(t)), Box::new(move || c.bottleneck()))
        }
        BackendKind::Central => {
            let c = Arc::new(CentralCounter::new(threads));
            let run = Arc::clone(&c);
            (Arc::new(move |_| run.inc_shared()), Box::new(move || c.bottleneck()))
        }
    };

    let recorder = HistoryRecorder::new();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<thread::JoinHandle<ThreadReport>> = (0..threads)
        .map(|t| {
            let op = Arc::clone(&op);
            let barrier = Arc::clone(&barrier);
            let mut history = recorder.thread(t);
            thread::spawn(move || {
                let mut latencies = Histogram::with_layout(LAT_LO_NS, LAT_HI_NS, LAT_BINS);
                barrier.wait();
                let start = Instant::now();
                for _ in 0..ops_per_thread {
                    let invoked = history.invoke();
                    let value = op(t);
                    history.ret(invoked, value);
                    latencies.record(invoked.elapsed().as_nanos() as u64);
                }
                ThreadReport { history, latencies, elapsed_ns: start.elapsed().as_nanos() as u64 }
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    let reports: Vec<ThreadReport> =
        handles.into_iter().map(|h| h.join().expect("bake-off thread")).collect();
    let elapsed_ns = (start.elapsed().as_nanos() as u64).max(1);

    let mut latencies = Histogram::with_layout(LAT_LO_NS, LAT_HI_NS, LAT_BINS);
    let mut histories: Vec<ThreadHistory> = Vec::with_capacity(reports.len());
    let mut slowest = 1u64;
    let mut fastest = u64::MAX;
    for r in reports {
        latencies.merge(&r.latencies);
        slowest = slowest.max(r.elapsed_ns.max(1));
        fastest = fastest.min(r.elapsed_ns.max(1));
        histories.push(r.history);
    }
    let verdict = recorder.check(&histories);
    let ops = threads as u64 * ops_per_thread;
    BakeoffRow {
        backend: kind.name(),
        threads,
        ops_per_thread,
        ops,
        elapsed_ns,
        incs_per_sec: ops as f64 / (elapsed_ns as f64 / 1e9),
        p99_us: latencies.quantile(0.99).unwrap_or(0) as f64 / 1000.0,
        fairness: fastest as f64 / slowest as f64,
        gap_free: verdict.gap_free(),
        linearizable: verdict.linearizable(),
        lin_violations: verdict.lin_violations.len(),
        bottleneck: bottleneck(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_cli_tokens() {
        let names: Vec<&str> = BackendKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["shm-tree", "shm-combining", "shm-network", "shm-central"]);
        assert!(!BackendKind::Network.promises_linearizability());
        assert!(BackendKind::Tree.promises_linearizability());
    }

    #[test]
    fn every_backend_survives_a_small_cell() {
        for kind in BackendKind::ALL {
            let row = run_cell(kind, 2, 50);
            assert_eq!(row.ops, 100, "{}", row.backend);
            assert!(row.gap_free, "{} must be gap-free", row.backend);
            if kind.promises_linearizability() {
                assert!(
                    row.linearizable,
                    "{} promised linearizability: {} violations",
                    row.backend, row.lin_violations
                );
            }
            assert!(row.incs_per_sec > 0.0);
            assert!(row.fairness > 0.0 && row.fairness <= 1.0);
            assert!(row.bottleneck > 0, "{} bottleneck accounting", row.backend);
        }
    }

    #[test]
    fn single_thread_is_the_degenerate_cell() {
        let row = run_cell(BackendKind::Central, 1, 100);
        assert_eq!(row.threads, 1);
        assert!(row.linearizable);
        assert!((row.fairness - 1.0).abs() < f64::EPSILON, "one thread is trivially fair");
    }
}
