//! The retirement tree as a shared-memory arena: the third
//! `NodeEngine` driver.
//!
//! The sim (`distctr-core`) drives engines through a virtual-time event
//! queue; `distctr-net` gives every processor an OS thread and a
//! channel. This driver keeps the sans-io protocol byte-for-byte — the
//! same [`NodeEngine`], the same [`Msg`] enum, the same effects — but
//! realizes delivery as **mailbox pushes on a shared arena**: every
//! processor slot is an engine behind a mutex plus a [`Mailbox`] of
//! envelopes, and whichever caller thread notices queued work CAS-claims
//! the mailbox and feeds the engine. There are no dedicated worker
//! threads at all; the calling threads *are* the processors, which is
//! the shared-memory reading of the paper's model (a processor computes
//! only when it has something to compute).
//!
//! Two drive modes share one delivery path:
//!
//! * **Sequential** (`&mut self`, the [`CounterBackend`] surface): one
//!   global FIFO work-list drains the cascade to quiescence after every
//!   operation — the same "enough time elapses between increments"
//!   regime as the sim, and deterministic, which is what lets the
//!   conformance suite pin this driver's final engine fingerprints to
//!   the sim's golden values.
//! * **Concurrent** ([`ShmTreeCounter::inc_shared`], the E26 bake-off
//!   surface): free-running threads push invokes and cooperatively pump
//!   every mailbox until their own reply lands. Exactness under this
//!   regime is exactly what the history checker asserts.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::PoisonError;
use std::time::{Duration, Instant};

use distctr_core::engine::{
    seed_initial_hosting, AuditEvent, Effect, EngineConfig, Event, NodeEngine, PoolPolicy,
    VirtualTime,
};
use distctr_core::{kmath, CounterBackend, CounterObject, Msg, Topology};
use distctr_sim::ProcessorId;

use crate::error::ShmError;
use crate::mailbox::Mailbox;
use crate::pad::CachePadded;
use crate::sync::{hint, Arc, AtomicBool, AtomicI64, AtomicU64, Mutex, Ordering};

/// How long a concurrent operation may go without observing any arena
/// progress before it reports [`ShmError::Stalled`] instead of spinning
/// forever (a fault-free arena never stalls; this bounds CI damage if a
/// protocol bug ever black-holes a reply).
const STALL_AFTER: Duration = Duration::from_secs(30);

/// A message to a processor slot: one shared-protocol message, or a
/// driver-level invoke. Mirrors `distctr-net`'s `NetMsg`, minus the
/// transport control that has no meaning without per-processor threads.
#[derive(Debug, Clone)]
enum Envelope {
    /// A protocol message (counts toward the paper's per-processor
    /// message load).
    Protocol(Msg<CounterObject>),
    /// The slot's processor initiates one operation (not load).
    Invoke { op_seq: u64 },
    /// The slot's processor initiates a batch sharing one traversal.
    InvokeBatch { op_seq: u64, count: u64 },
}

impl Envelope {
    fn counts_as_load(&self) -> bool {
        matches!(self, Envelope::Protocol(_))
    }
}

/// Where a caller waits for its reply: written once by whichever thread
/// drains the replying engine, read by the operation's initiator.
#[derive(Debug)]
struct OpCell {
    done: AtomicBool,
    value: AtomicU64,
}

impl OpCell {
    fn new() -> Self {
        OpCell { done: AtomicBool::new(false), value: AtomicU64::new(0) }
    }
}

/// One processor slot: the protocol brain and its inbox.
#[derive(Debug)]
struct Slot {
    engine: Mutex<NodeEngine<CounterObject>>,
    mailbox: Mailbox<Envelope>,
    /// Protocol messages sent / received by this slot, padded so the
    /// bake-off's load accounting does not itself create false sharing.
    sent: CachePadded<AtomicU64>,
    received: CachePadded<AtomicU64>,
}

#[derive(Debug)]
struct Arena {
    topo: Arc<Topology>,
    slots: Vec<Slot>,
    /// Messages pushed but not yet fully handled (handler side effects
    /// included): zero exactly at quiescence, as in `distctr-net`.
    in_flight: AtomicI64,
    next_op: AtomicU64,
    pending: Mutex<HashMap<u64, Arc<OpCell>>>,
    retirements: AtomicU64,
    shim_forwards: AtomicU64,
    dead_letters: AtomicU64,
}

/// The retirement-tree counter on a shared-memory arena.
///
/// # Examples
///
/// ```
/// use distctr_shm::ShmTreeCounter;
/// use distctr_sim::ProcessorId;
///
/// # fn main() -> Result<(), distctr_shm::ShmError> {
/// let mut c = ShmTreeCounter::new(8)?;
/// assert_eq!(c.inc(ProcessorId::new(3))?, 0);
/// assert_eq!(c.inc(ProcessorId::new(5))?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShmTreeCounter {
    arena: Arc<Arena>,
}

impl ShmTreeCounter {
    /// Builds the arena for a tree of at least `n` processors (rounded
    /// up to `k^(k+1)` exactly like the other two drivers).
    ///
    /// # Errors
    ///
    /// [`ShmError::Order`] for invalid sizes.
    pub fn new(n: usize) -> Result<Self, ShmError> {
        if n == 0 {
            return Err(ShmError::Order("n must be at least 1".into()));
        }
        let k = kmath::order_for(n as u64);
        let topo = Arc::new(Topology::new(k).map_err(ShmError::Order)?);
        let processors = usize::try_from(topo.processors())
            .map_err(|_| ShmError::Order("n does not fit usize".into()))?;
        // The sim driver's regime: no retries are ever issued (sequential
        // mode waits, concurrent mode never resends), so deduplication
        // stays off and the reply cache is unbounded — the exact
        // configuration whose final state the conformance goldens pin.
        let config = EngineConfig {
            threshold: Some(kmath::retirement_threshold(k)),
            pool_policy: PoolPolicy::OneShot,
            reply_cache_cap: usize::MAX,
            dedupe: false,
            persist: false,
        };
        let mut engines: Vec<NodeEngine<CounterObject>> = (0..processors)
            .map(|i| NodeEngine::new(ProcessorId::new(i), Arc::clone(&topo), config))
            .collect();
        seed_initial_hosting(&topo, &mut engines, &CounterObject::new());
        let slots = engines
            .into_iter()
            .map(|engine| Slot {
                engine: Mutex::new(engine),
                mailbox: Mailbox::new(),
                sent: CachePadded::new(AtomicU64::new(0)),
                received: CachePadded::new(AtomicU64::new(0)),
            })
            .collect();
        Ok(ShmTreeCounter {
            arena: Arc::new(Arena {
                topo,
                slots,
                in_flight: AtomicI64::new(0),
                next_op: AtomicU64::new(0),
                pending: Mutex::new(HashMap::new()),
                retirements: AtomicU64::new(0),
                shim_forwards: AtomicU64::new(0),
                dead_letters: AtomicU64::new(0),
            }),
        })
    }

    /// Number of processor slots.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.arena.slots.len()
    }

    /// The tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.arena.topo.order()
    }

    /// A second handle to the same arena, for concurrent callers of
    /// [`ShmTreeCounter::inc_shared`]. Sequential (`&mut`) operations
    /// must not run while clones are actively driving.
    #[must_use]
    pub fn share(&self) -> ShmTreeCounter {
        ShmTreeCounter { arena: Arc::clone(&self.arena) }
    }

    fn check_initiator(&self, p: ProcessorId) -> Result<(), ShmError> {
        if p.index() >= self.processors() {
            return Err(ShmError::UnknownProcessor {
                index: p.index(),
                processors: self.processors(),
            });
        }
        Ok(())
    }

    /// Registers an op cell, posts the envelope, and returns the cell.
    fn post(arena: &Arena, dest: usize, env: Envelope, op_seq: u64) -> Arc<OpCell> {
        let cell = Arc::new(OpCell::new());
        arena
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(op_seq, Arc::clone(&cell));
        arena.in_flight.fetch_add(1, Ordering::SeqCst);
        arena.slots[dest].mailbox.push(env);
        cell
    }

    /// Delivers one envelope to slot `dest`: feed the engine, realize
    /// the effects. `on_send` observes every destination pushed to, so
    /// the sequential pump can keep its FIFO work-list exact; the
    /// concurrent pump passes a no-op and discovers work by scanning.
    fn deliver(arena: &Arena, dest: usize, env: Envelope, on_send: &mut dyn FnMut(usize)) {
        if env.counts_as_load() {
            arena.slots[dest].received.fetch_add(1, Ordering::Relaxed);
        }
        let event = match env {
            Envelope::Protocol(msg) => Event::Deliver { msg },
            Envelope::Invoke { op_seq } => Event::Invoke { op_seq, req: () },
            Envelope::InvokeBatch { op_seq, count } => {
                Event::InvokeBatch { op_seq, count, req: () }
            }
        };
        let fx = {
            let mut engine =
                arena.slots[dest].engine.lock().unwrap_or_else(PoisonError::into_inner);
            engine.on_event(event, VirtualTime::ZERO)
        };
        for effect in fx {
            match effect {
                Effect::Send { to, msg } => {
                    arena.slots[dest].sent.fetch_add(1, Ordering::Relaxed);
                    arena.in_flight.fetch_add(1, Ordering::SeqCst);
                    arena.slots[to.index()].mailbox.push(Envelope::Protocol(msg));
                    on_send(to.index());
                }
                Effect::Reply { op_seq, resp } => {
                    let cell = arena
                        .pending
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .remove(&op_seq);
                    match cell {
                        Some(cell) => {
                            cell.value.store(resp, Ordering::SeqCst);
                            cell.done.store(true, Ordering::SeqCst);
                        }
                        // A reply nobody is waiting for (an abandoned
                        // stalled op): account it rather than lose it
                        // silently.
                        None => {
                            arena.dead_letters.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Effect::Audit(AuditEvent::ShimForward) => {
                    arena.shim_forwards.fetch_add(1, Ordering::Relaxed);
                }
                Effect::Audit(AuditEvent::Retirement { .. }) => {
                    arena.retirements.fetch_add(1, Ordering::Relaxed);
                }
                Effect::Audit(AuditEvent::Lost) => {
                    arena.dead_letters.fetch_add(1, Ordering::Relaxed);
                }
                // Timers are the watchdog's tool; without fault
                // injection nothing ever fires them. Registry and
                // persistence effects have no shared-memory observer.
                Effect::SetTimer { .. }
                | Effect::CancelTimer { .. }
                | Effect::Retired { .. }
                | Effect::Installed { .. }
                | Effect::RecoveryStarted { .. }
                | Effect::Recovered { .. }
                | Effect::Persist { .. }
                | Effect::Audit(_) => {}
            }
        }
        arena.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// The deterministic drive: post the envelope, then pump a global
    /// FIFO of (slot, envelope) work until the whole cascade has
    /// quiesced. FIFO order over a unit-delay mesh is exactly the sim's
    /// delivery order, which is what makes the final engine states —
    /// and hence the conformance fingerprints — line up.
    fn drive_sequential(
        &mut self,
        dest: usize,
        env: Envelope,
        op_seq: u64,
    ) -> Result<u64, ShmError> {
        let arena = &self.arena;
        let cell = Self::post(arena, dest, env, op_seq);
        let mut fifo = VecDeque::from([dest]);
        while let Some(d) = fifo.pop_front() {
            let Some(item) = arena.slots[d].mailbox.pop() else { continue };
            Self::deliver(arena, d, item, &mut |to| fifo.push_back(to));
        }
        if cell.done.load(Ordering::SeqCst) {
            Ok(cell.value.load(Ordering::SeqCst))
        } else {
            arena.pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&op_seq);
            Err(ShmError::Stalled { op_seq })
        }
    }

    /// Executes one `inc` charged to `initiator`, deterministically,
    /// with full quiescence before returning (the paper's sequential
    /// regime).
    ///
    /// # Errors
    ///
    /// [`ShmError::UnknownProcessor`] for an out-of-range initiator;
    /// [`ShmError::Stalled`] if the reply never materializes (a
    /// protocol bug, never the fault-free path).
    pub fn inc(&mut self, initiator: ProcessorId) -> Result<u64, ShmError> {
        self.check_initiator(initiator)?;
        let op_seq = self.arena.next_op.fetch_add(1, Ordering::SeqCst);
        self.drive_sequential(initiator.index(), Envelope::Invoke { op_seq }, op_seq)
    }

    /// Executes a batch of `count` incs as one traversal, returning the
    /// start of the contiguous range `[first, first + count)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShmTreeCounter::inc`].
    pub fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, ShmError> {
        self.check_initiator(initiator)?;
        let count = count.max(1);
        let op_seq = self.arena.next_op.fetch_add(1, Ordering::SeqCst);
        self.drive_sequential(initiator.index(), Envelope::InvokeBatch { op_seq, count }, op_seq)
    }

    /// Drains whatever work slot `i` has queued; returns envelopes
    /// processed (0 if another thread holds the slot's drain right).
    fn drain_slot(arena: &Arena, i: usize) -> usize {
        arena.slots[i].mailbox.drain(|env| Self::deliver(arena, i, env, &mut |_| {}))
    }

    /// One cooperative pump pass over every slot; returns envelopes
    /// processed.
    fn pump(arena: &Arena) -> usize {
        let mut processed = 0;
        for i in 0..arena.slots.len() {
            if !arena.slots[i].mailbox.is_empty() {
                processed += Self::drain_slot(arena, i);
            }
        }
        processed
    }

    /// Executes one `inc` concurrently: posts the invoke and pumps the
    /// arena until this operation's reply lands, while any number of
    /// other threads do the same through [`ShmTreeCounter::share`]
    /// handles. No quiescence wait — cascades overlap freely, and the
    /// history checker owns the exactness argument.
    ///
    /// # Errors
    ///
    /// [`ShmError::UnknownProcessor`] for an out-of-range initiator;
    /// [`ShmError::Stalled`] after [`STALL_AFTER`] without progress.
    pub fn inc_shared(&self, initiator: ProcessorId) -> Result<u64, ShmError> {
        self.check_initiator(initiator)?;
        let arena = &self.arena;
        let op_seq = arena.next_op.fetch_add(1, Ordering::SeqCst);
        let cell = Self::post(arena, initiator.index(), Envelope::Invoke { op_seq }, op_seq);
        let mut idle_spins = 0u32;
        let mut idle_since: Option<Instant> = None;
        while !cell.done.load(Ordering::SeqCst) {
            if Self::pump(arena) > 0 {
                idle_spins = 0;
                idle_since = None;
                continue;
            }
            idle_spins += 1;
            if idle_spins.is_multiple_of(64) {
                crate::sync::thread::yield_now();
                let since = *idle_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= STALL_AFTER {
                    arena.pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&op_seq);
                    return Err(ShmError::Stalled { op_seq });
                }
            } else {
                hint::spin_loop();
            }
        }
        Ok(cell.value.load(Ordering::SeqCst))
    }

    /// Pumps until the arena is quiescent: no queued envelopes and no
    /// in-flight accounting. Call after concurrent driving ends (all
    /// `inc_shared` callers returned) before reading fingerprints.
    pub fn quiesce(&self) {
        let arena = &self.arena;
        loop {
            let processed = Self::pump(arena);
            let busy = arena.in_flight.load(Ordering::SeqCst) != 0
                || arena.slots.iter().any(|s| !s.mailbox.is_empty());
            if processed == 0 && !busy {
                return;
            }
            if processed == 0 {
                crate::sync::thread::yield_now();
            }
        }
    }

    /// Per-processor message loads (sent + received), snapshot.
    #[must_use]
    pub fn loads(&self) -> Vec<u64> {
        self.arena
            .slots
            .iter()
            .map(|s| s.sent.load(Ordering::Relaxed) + s.received.load(Ordering::Relaxed))
            .collect()
    }

    /// The bottleneck load `m_b = max_p m_p` so far.
    #[must_use]
    pub fn bottleneck(&self) -> u64 {
        self.loads().into_iter().max().unwrap_or(0)
    }

    /// Total worker retirements so far.
    #[must_use]
    pub fn retirements(&self) -> u64 {
        self.arena.retirements.load(Ordering::Relaxed)
    }

    /// Messages forwarded by a retired worker's shim.
    #[must_use]
    pub fn shim_forwards(&self) -> u64 {
        self.arena.shim_forwards.load(Ordering::Relaxed)
    }

    /// Replies nobody was waiting for plus engine-reported losses.
    #[must_use]
    pub fn dead_letters(&self) -> u64 {
        self.arena.dead_letters.load(Ordering::Relaxed)
    }

    /// Snapshots every slot's engine fingerprint, in processor order.
    /// Meaningful at quiescence only (after sequential operations, or
    /// after [`ShmTreeCounter::quiesce`]) — this driver can lock the
    /// engines directly instead of round-tripping fingerprint messages.
    #[must_use]
    pub fn engine_fingerprints(&self) -> Vec<u64> {
        self.arena
            .slots
            .iter()
            .map(|s| s.engine.lock().unwrap_or_else(PoisonError::into_inner).fingerprint())
            .collect()
    }
}

impl CounterBackend for ShmTreeCounter {
    type Error = ShmError;

    fn processors(&self) -> usize {
        ShmTreeCounter::processors(self)
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error> {
        ShmTreeCounter::inc(self, initiator)
    }

    fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, Self::Error> {
        ShmTreeCounter::inc_batch(self, initiator, count)
    }

    fn bottleneck(&self) -> u64 {
        ShmTreeCounter::bottleneck(self)
    }

    fn retirements(&self) -> u64 {
        ShmTreeCounter::retirements(self)
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::sync::thread;

    #[test]
    fn counts_sequentially_like_the_other_drivers() {
        let mut c = ShmTreeCounter::new(8).expect("arena");
        assert_eq!(c.processors(), 8);
        assert_eq!(c.order(), 2);
        for i in 0..8 {
            assert_eq!(c.inc(ProcessorId::new(i)).expect("inc"), i as u64);
        }
        assert!(c.retirements() > 0, "retirement really happened on the arena");
        assert!(c.bottleneck() >= 2);
        assert_eq!(c.dead_letters(), 0);
    }

    #[test]
    fn rounds_up_like_the_simulator() {
        let c = ShmTreeCounter::new(50).expect("arena");
        assert_eq!(c.processors(), 81);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(ShmTreeCounter::new(0), Err(ShmError::Order(_))));
        let mut c = ShmTreeCounter::new(8).expect("arena");
        assert!(matches!(
            c.inc(ProcessorId::new(99)),
            Err(ShmError::UnknownProcessor { index: 99, .. })
        ));
    }

    #[test]
    fn batches_share_one_traversal_and_partition_the_range() {
        let mut c = ShmTreeCounter::new(8).expect("arena");
        assert_eq!(c.inc(ProcessorId::new(0)).expect("inc"), 0);
        let before: u64 = c.loads().iter().sum();
        assert_eq!(c.inc_batch(ProcessorId::new(1), 10).expect("batch"), 1, "owns [1, 11)");
        let cost: u64 = c.loads().iter().sum::<u64>() - before;
        assert!(cost < 20, "a batch of 10 moved {cost} messages, not ~10 traversals");
        assert_eq!(c.inc(ProcessorId::new(2)).expect("inc"), 11, "range fully consumed");
    }

    #[test]
    fn bottleneck_is_big_o_of_k() {
        let mut c = ShmTreeCounter::new(81).expect("arena");
        for i in 0..81 {
            c.inc(ProcessorId::new(i)).expect("inc");
        }
        let b = c.bottleneck();
        assert!(b >= 3, "lower bound k = 3: {b}");
        assert!(b <= 20 * 3, "O(k) bound: {b}");
    }

    #[test]
    fn concurrent_callers_partition_the_range_exactly() {
        const THREADS: usize = 4;
        const PER: u64 = 25;
        let root = ShmTreeCounter::new(8).expect("arena");
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let c = root.share();
                thread::spawn(move || {
                    (0..PER)
                        .map(|_| c.inc_shared(ProcessorId::new(t * 2)).expect("inc"))
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all: Vec<u64> =
            handles.into_iter().flat_map(|h| h.join().expect("caller")).collect();
        all.sort_unstable();
        let n = THREADS as u64 * PER;
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "gap-free under free-running threads");
        root.quiesce();
        assert_eq!(root.dead_letters(), 0);
    }

    #[test]
    fn sequential_and_shared_modes_interleave_cleanly() {
        let mut c = ShmTreeCounter::new(8).expect("arena");
        assert_eq!(c.inc(ProcessorId::new(0)).expect("inc"), 0);
        assert_eq!(c.inc_shared(ProcessorId::new(1)).expect("shared inc"), 1);
        c.quiesce();
        assert_eq!(c.inc(ProcessorId::new(2)).expect("inc"), 2);
    }
}
