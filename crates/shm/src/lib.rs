//! Shared-memory counter backends: the third `NodeEngine` driver plus
//! the classical lock-free contenders, under one bake-off.
//!
//! The paper's bound is stated in the message-passing model: any
//! counting scheme has a processor that handles `Ω(n/k · log n / log
//! log n)`-ish traffic. In shared memory the analogue of "messages at a
//! processor" is "RMW traffic at a cache line", and this crate makes
//! the comparison concrete by putting four structures behind one
//! surface:
//!
//! * [`ShmTreeCounter`] — the paper's retirement tree, *unchanged
//!   protocol*, realized on a shared arena of engine slots + mailboxes
//!   instead of channels (see [`tree`]);
//! * [`FlatCombiningCounter`] — one cell, touched once per combined
//!   batch ([`combining`]);
//! * [`AtomicBitonicCounter`] — the bitonic counting network compiled
//!   by `distctr-baselines`, run on real atomics ([`network`]);
//! * [`CentralCounter`] — the single padded `fetch_add` cell everything
//!   is judged against ([`central`]).
//!
//! Experiment E26 (`distctr-bench`) sweeps thread counts over all four
//! and publishes throughput, p99 latency, fairness, and — through
//! `distctr-check`'s history checker — a per-cell correctness verdict.
//!
//! # Loom
//!
//! Built with `--features loom`, every atomic, mutex, and thread in
//! this crate resolves to the `loom` model shim instead of `std`
//! (see [`mod@sync`]), and the `tests/loom.rs` suite exhaustively
//! explores interleavings of the small cores: balancer traversal,
//! mailbox handoff, combiner handoff. Normal builds pay nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sync;

#[cfg(not(feature = "loom"))]
pub mod bakeoff;
pub mod central;
pub mod combining;
mod error;
pub mod mailbox;
pub mod network;
pub mod pad;
pub mod tree;

#[cfg(not(feature = "loom"))]
pub use bakeoff::{run_cell, BackendKind, BakeoffRow};
pub use central::CentralCounter;
pub use combining::FlatCombiningCounter;
pub use error::ShmError;
pub use mailbox::Mailbox;
pub use network::AtomicBitonicCounter;
pub use pad::CachePadded;
pub use tree::ShmTreeCounter;

#[cfg(not(feature = "loom"))]
mod backend_impls {
    //! [`CounterBackend`] adapters for the flat structures, so loadgen
    //! and the conformance harness can host any shared-memory backend
    //! behind the same trait as the sim and net drivers. (The tree
    //! implements the trait directly in [`crate::tree`].)

    use distctr_core::CounterBackend;
    use distctr_sim::ProcessorId;

    use crate::{AtomicBitonicCounter, CentralCounter, ShmError};

    impl CounterBackend for CentralCounter {
        type Error = ShmError;

        fn processors(&self) -> usize {
            CentralCounter::processors(self)
        }

        fn inc(&mut self, _initiator: ProcessorId) -> Result<u64, Self::Error> {
            Ok(self.inc_shared())
        }

        fn bottleneck(&self) -> u64 {
            CentralCounter::bottleneck(self)
        }

        fn retirements(&self) -> u64 {
            0
        }
    }

    impl CounterBackend for AtomicBitonicCounter {
        type Error = ShmError;

        fn processors(&self) -> usize {
            self.width()
        }

        fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error> {
            Ok(self.inc_on(initiator.index()))
        }

        fn bottleneck(&self) -> u64 {
            AtomicBitonicCounter::bottleneck(self)
        }

        fn retirements(&self) -> u64 {
            0
        }
    }
}
