//! The baseline every shared-memory structure is judged against: one
//! `fetch_add` on one cache line.
//!
//! In the paper's message model a central counter is the worst possible
//! design — its bottleneck is `2n` messages at one processor. In shared
//! memory the same design is a single `lock xadd`, and on small core
//! counts it is *very* hard to beat: the E26 bake-off exists to measure
//! where (thread count, contention) the crossover to distributed
//! structures actually happens on the machine at hand, rather than
//! assuming the asymptotics.

use crate::pad::CachePadded;
use crate::sync::{AtomicU64, Ordering};

/// A fetch&increment counter: one padded atomic cell.
#[derive(Debug)]
pub struct CentralCounter {
    value: CachePadded<AtomicU64>,
    processors: usize,
}

impl CentralCounter {
    /// A zeroed counter nominally serving `processors` callers (the
    /// count only feeds load accounting; any number of threads may
    /// call).
    #[must_use]
    pub fn new(processors: usize) -> Self {
        CentralCounter { value: CachePadded::new(AtomicU64::new(0)), processors: processors.max(1) }
    }

    /// Takes the next value. Lock-free (wait-free, even): one
    /// `fetch_add`.
    pub fn inc_shared(&self) -> u64 {
        self.value.fetch_add(1, Ordering::SeqCst)
    }

    /// Values handed out so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }

    /// Nominal processor count (for backend reporting).
    #[must_use]
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The shared-memory analogue of the paper's bottleneck: every
    /// operation hits the same cell, so the hottest location has
    /// absorbed every increment.
    #[must_use]
    pub fn bottleneck(&self) -> u64 {
        self.issued()
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::sync::{thread, Arc};

    #[test]
    fn sequential_values_are_zero_upward() {
        let c = CentralCounter::new(4);
        assert_eq!(c.processors(), 4);
        for i in 0..10 {
            assert_eq!(c.inc_shared(), i);
        }
        assert_eq!(c.issued(), 10);
        assert_eq!(c.bottleneck(), 10, "one location took all the traffic");
    }

    #[test]
    fn concurrent_values_partition_the_range() {
        let c = Arc::new(CentralCounter::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || (0..100).map(|_| c.inc_shared()).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().expect("inc")).collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>(), "every value exactly once");
    }
}
