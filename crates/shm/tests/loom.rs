//! Exhaustive small-model interleaving checks, run under the loom shim
//! (`cargo test -p distctr-shm --features loom`).
//!
//! Each model body is executed once per distinct bounded interleaving
//! (every atomic access and lock acquisition is a scheduling point).
//! The shim's default is *unbounded* preemptions — full exponential
//! exploration — so every test here pins the CHESS-style voluntary
//! preemption budget to 2 (override with `LOOM_MAX_PREEMPTIONS`), which
//! is exhaustive for every two-ordering bug a pair of threads can
//! exhibit while keeping the search polynomial. The suite covers the
//! two interleaving-sensitive cores the arena and the bake-off
//! structures stand on:
//!
//! * **balancer traversal** — concurrent tokens through a real-atomics
//!   bitonic network must still partition `0..ops` and leave the step
//!   property;
//! * **CAS handoff** — the mailbox's busy-flag drain (the arena's
//!   delivery path) and the flat combiner's lock handoff must never
//!   strand an item or a waiter.
//!
//! One test is a *negative control*: the deliberately broken
//! `drain_naive` (no emptiness re-check after releasing the busy flag)
//! must be caught by the model — proving the harness actually explores
//! the lost-wakeup interleaving rather than vacuously passing.
//!
//! Model shape note: every model is **two** managed threads — the model
//! body plays one caller and spawns exactly one peer. With two threads,
//! the shim's forced switches (join waits, spins) have a single
//! successor and never branch, so the search space is polynomial in the
//! preemption bound; a third thread would make every join-wait
//! iteration a free fork and blow the execution budget.

#![cfg(feature = "loom")]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

use distctr_baselines::bitonic::has_step_property;
use distctr_shm::{AtomicBitonicCounter, FlatCombiningCounter, Mailbox};

/// A model runner with the preemption budget pinned to 2 (unless the
/// environment overrides it): bounded, exhaustive-within-bound, fast.
fn bounded_model<F: Fn() + Send + Sync + 'static>(f: F) {
    let mut b = loom::model::Builder::new();
    if b.preemption_bound.is_none() {
        b.preemption_bound = Some(2);
    }
    b.check(f);
}

#[test]
fn balancer_traversal_partitions_the_range_in_every_interleaving() {
    bounded_model(|| {
        let c = Arc::new(AtomicBitonicCounter::new(2));
        let peer = {
            let c = Arc::clone(&c);
            thread::spawn(move || [c.inc_on(1), c.inc_on(1)])
        };
        let mine = [c.inc_on(0), c.inc_on(0)];
        let theirs = peer.join().expect("token thread");
        let mut values: Vec<u64> = mine.into_iter().chain(theirs).collect();
        values.sort_unstable();
        assert_eq!(values, [0, 1, 2, 3], "tokens must partition 0..4");
        let counts = c.exit_counts();
        assert!(has_step_property(&counts), "quiescent step property: {counts:?}");
    });
}

#[test]
fn mailbox_drain_handoff_never_strands_an_item() {
    bounded_model(|| {
        let mb = Arc::new(Mailbox::new());
        let sum = Arc::new(AtomicU64::new(0));
        let peer = {
            let mb = Arc::clone(&mb);
            let sum = Arc::clone(&sum);
            thread::spawn(move || {
                mb.push(2u64);
                mb.drain(|v: u64| {
                    sum.fetch_add(v, Ordering::SeqCst);
                });
            })
        };
        mb.push(1u64);
        // Either this thread drains its own push, or the concurrent
        // holder of the busy flag is obligated to pick it up before
        // quitting.
        mb.drain(|v: u64| {
            sum.fetch_add(v, Ordering::SeqCst);
        });
        peer.join().expect("producer");
        assert!(mb.is_empty(), "an item was stranded in the mailbox");
        assert_eq!(sum.load(Ordering::SeqCst), 3, "both items handled exactly once");
    });
}

#[test]
fn the_naive_drain_is_caught_stranding_an_item() {
    // Negative control: without the emptiness re-check after releasing
    // the busy flag, there is an interleaving where a producer's push
    // lands while the drainer is between "queue looked empty" and
    // "busy := false", and nobody ever processes it. The model must
    // find it — otherwise the positive test above proves nothing.
    let caught = std::panic::catch_unwind(|| {
        bounded_model(|| {
            let mb = Arc::new(Mailbox::new());
            let peer = {
                let mb = Arc::clone(&mb);
                thread::spawn(move || {
                    mb.push(2u64);
                    mb.drain_naive(|_v: u64| {});
                })
            };
            mb.push(1u64);
            mb.drain_naive(|_v: u64| {});
            peer.join().expect("producer");
            assert!(mb.is_empty(), "an item was stranded in the mailbox");
        });
    });
    assert!(caught.is_err(), "the lost-wakeup interleaving of drain_naive was not found");
}

#[test]
fn combiner_handoff_never_strands_a_waiter() {
    bounded_model(|| {
        let c = Arc::new(FlatCombiningCounter::new(2));
        let peer = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.inc_shared(1))
        };
        let mine = c.inc_shared(0);
        let theirs = peer.join().expect("waiter");
        let mut values = [mine, theirs];
        values.sort_unstable();
        assert_eq!(values, [0, 1], "each caller got a distinct value and none hung");
        assert_eq!(c.issued(), 2);
    });
}
