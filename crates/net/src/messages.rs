//! Wire messages of the threaded backend.
//!
//! The protocol itself speaks the shared [`distctr_core::Msg`] enum — the
//! same messages the simulator delivers — so the two backends cannot
//! drift apart. [`NetMsg`] merely wraps it with the transport-level
//! control traffic a real thread pool needs (start an operation, crash a
//! worker, shut a thread down), none of which counts toward the paper's
//! per-processor message load.

use crossbeam_channel::Sender;
use distctr_core::RootObject;

pub use distctr_core::{Msg, NodeTransfer};

/// A message between worker threads: one shared-protocol message, or a
/// driver control signal.
#[derive(Debug, Clone)]
pub enum NetMsg<O: RootObject> {
    /// A protocol message of the shared engine (an `Apply` hop, a reply,
    /// handoff traffic, a worker-change notification, recovery traffic).
    Protocol(Msg<O>),
    /// Driver control: the receiving processor initiates one operation.
    /// Not counted as network load (it models the local request).
    StartOp {
        /// Driver-assigned operation sequence number.
        op_seq: u64,
        /// The operation payload.
        req: O::Request,
    },
    /// Driver control: the receiving processor initiates a *batch* of
    /// `count` identical operations sharing one tree traversal
    /// ([`Msg::BatchApply`]). Not counted as load (it models the local
    /// request); the traversal it triggers is one protocol message.
    StartBatch {
        /// Driver-assigned sequence number for the whole batch.
        op_seq: u64,
        /// Number of operations combined (≥ 1).
        count: u64,
        /// The operation payload, shared by the whole batch.
        req: O::Request,
    },
    /// Fault injection: the receiving processor crashes. It loses every
    /// hosted node, its forwarding table, and its pending buffers, and
    /// from then on silently discards all traffic (a fail-silent model).
    /// Not counted as load.
    Crash,
    /// Driver control: report the worker's engine fingerprint (its
    /// processor index and [`NodeEngine::fingerprint`]) on `reply`.
    /// Answered even by crashed workers — their reset engine *is* their
    /// observable state — so conformance suites can compare a whole
    /// fleet against the model checker's quiescent set. Not counted as
    /// load.
    ///
    /// [`NodeEngine::fingerprint`]: distctr_core::engine::NodeEngine::fingerprint
    Fingerprint {
        /// Where to send `(processor_index, fingerprint)`.
        reply: Sender<(usize, u64)>,
    },
    /// Driver control: exit the thread loop. Not counted as load.
    Shutdown,
}

impl<O: RootObject> NetMsg<O> {
    /// Whether this message counts toward the paper's per-processor
    /// message load: protocol traffic does, driver control does not.
    #[must_use]
    pub fn counts_as_load(&self) -> bool {
        matches!(self, NetMsg::Protocol(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_core::{CounterObject, NodeRef};
    use distctr_sim::ProcessorId;

    type Wire = NetMsg<CounterObject>;

    #[test]
    fn control_messages_are_not_load() {
        assert!(!Wire::StartOp { op_seq: 0, req: () }.counts_as_load());
        assert!(!Wire::StartBatch { op_seq: 0, count: 8, req: () }.counts_as_load());
        assert!(!Wire::Shutdown.counts_as_load());
        assert!(!Wire::Crash.counts_as_load());
        assert!(Wire::Protocol(Msg::Reply { resp: 0, op_seq: 0 }).counts_as_load());
        assert!(Wire::Protocol(Msg::Apply {
            node: NodeRef::ROOT,
            origin: ProcessorId::new(0),
            op_seq: 0,
            req: ()
        })
        .counts_as_load());
        assert!(Wire::Protocol(Msg::HandoffPart { node: NodeRef::ROOT, part: 0, total: 4 })
            .counts_as_load());
    }

    #[test]
    fn transfer_round_trips_through_clone() {
        let t: NodeTransfer<CounterObject> = NodeTransfer {
            node: NodeRef { level: 1, index: 2 },
            pool_cursor: 3,
            parent_worker: Some(ProcessorId::new(0)),
            child_workers: vec![ProcessorId::new(4), ProcessorId::new(5)],
            object: None,
            reply_cache: Vec::new(),
        };
        let c = t.clone();
        assert_eq!(c.pool_cursor, 3);
        assert_eq!(c.node, t.node);
    }
}
