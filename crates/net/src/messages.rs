//! Wire messages of the threaded backend.
//!
//! Mirrors the simulator protocol's message economy: an `inc` climbs the
//! tree as `Apply` hops, the root replies straight to the initiator, and
//! a retirement sends k+1 handoff messages (k unit parts plus one
//! carrying the node's transferable state) and one `NewWorker`
//! notification per neighbour.

use distctr_core::{NodeRef, RootObject};
use distctr_sim::ProcessorId;

/// The state that migrates with a retiring node's job.
#[derive(Debug, Clone)]
pub struct NodeTransfer<O: RootObject> {
    /// The node changing hands.
    pub node: NodeRef,
    /// Retirements so far (the pool cursor).
    pub pool_cursor: u64,
    /// Current worker of the parent node (None at the root).
    pub parent_worker: Option<ProcessorId>,
    /// Current workers of the inner-node children (empty on level k).
    pub child_workers: Vec<ProcessorId>,
    /// The hosted object state (Some at the root only).
    pub object: Option<O>,
    /// Recent `(op_seq, response)` pairs already answered by the root,
    /// migrating with the object so driver retries stay exactly-once
    /// across retirements (root only; empty elsewhere).
    pub reply_cache: Vec<(u64, O::Response)>,
}

/// A message between worker threads, generic over the hosted
/// [`RootObject`].
#[derive(Debug, Clone)]
pub enum NetMsg<O: RootObject> {
    /// Driver control: the receiving processor initiates one operation.
    /// Not counted as network load (it models the local request).
    StartOp {
        /// Driver-assigned operation sequence number.
        op_seq: u64,
        /// The operation payload.
        req: O::Request,
    },
    /// An operation request climbing the tree.
    Apply {
        /// The tree node this hop targets.
        node: NodeRef,
        /// The initiating processor (reply address).
        origin: ProcessorId,
        /// Operation sequence number.
        op_seq: u64,
        /// The operation payload.
        req: O::Request,
    },
    /// The operation's response, root worker → initiator.
    Reply {
        /// The response.
        resp: O::Response,
        /// Operation sequence number.
        op_seq: u64,
    },
    /// One unit of a retirement handoff (parts `0..total-1`).
    HandoffPart {
        /// The node changing hands.
        node: NodeRef,
        /// Part number.
        part: u32,
        /// Total parts including the final state-bearing one.
        total: u32,
    },
    /// The final handoff message, carrying the migrating state.
    HandoffFinal {
        /// The transferred node state.
        transfer: Box<NodeTransfer<O>>,
    },
    /// Notification that `retired`'s worker changed; addressed to the
    /// worker of the adjacent node `node`.
    NewWorker {
        /// The neighbour being informed.
        node: NodeRef,
        /// The node whose worker changed.
        retired: NodeRef,
        /// The new worker.
        new_worker: ProcessorId,
    },
    /// Fault injection: the receiving processor crashes. It loses every
    /// hosted node, its forwarding table, and its pending buffers, and
    /// from then on silently discards all traffic (a fail-silent model).
    /// Not counted as load.
    Crash,
    /// Driver control: exit the thread loop. Not counted as load.
    Shutdown,
}

impl<O: RootObject> NetMsg<O> {
    /// Whether this message counts toward the paper's per-processor
    /// message load (driver control traffic does not).
    #[must_use]
    pub fn counts_as_load(&self) -> bool {
        !matches!(self, NetMsg::StartOp { .. } | NetMsg::Shutdown | NetMsg::Crash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_core::CounterObject;

    type Msg = NetMsg<CounterObject>;

    #[test]
    fn control_messages_are_not_load() {
        assert!(!Msg::StartOp { op_seq: 0, req: () }.counts_as_load());
        assert!(!Msg::Shutdown.counts_as_load());
        assert!(!Msg::Crash.counts_as_load());
        assert!(Msg::Reply { resp: 0, op_seq: 0 }.counts_as_load());
        assert!(Msg::Apply {
            node: NodeRef::ROOT,
            origin: ProcessorId::new(0),
            op_seq: 0,
            req: ()
        }
        .counts_as_load());
        assert!(Msg::HandoffPart { node: NodeRef::ROOT, part: 0, total: 4 }.counts_as_load());
    }

    #[test]
    fn transfer_round_trips_through_clone() {
        let t: NodeTransfer<CounterObject> = NodeTransfer {
            node: NodeRef { level: 1, index: 2 },
            pool_cursor: 3,
            parent_worker: Some(ProcessorId::new(0)),
            child_workers: vec![ProcessorId::new(4), ProcessorId::new(5)],
            object: None,
            reply_cache: Vec::new(),
        };
        let c = t.clone();
        assert_eq!(c.pool_cursor, 3);
        assert_eq!(c.node, t.node);
    }
}
