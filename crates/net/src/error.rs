//! Error type of the threaded backend.

use std::error::Error;
use std::fmt;

/// Errors from the threaded counter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// Invalid network size / tree order.
    Order(String),
    /// More threads requested than the backend allows.
    TooManyThreads {
        /// The requested processor (thread) count.
        requested: usize,
    },
    /// A worker thread could not be spawned or panicked.
    Spawn(String),
    /// Out-of-range initiator.
    UnknownProcessor {
        /// The offending index.
        index: usize,
        /// The network size.
        processors: usize,
    },
    /// The counter was already shut down.
    ShutDown,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Order(msg) => write!(f, "invalid tree order: {msg}"),
            NetError::TooManyThreads { requested } => write!(
                f,
                "{requested} processors exceed the threaded backend's limit of {}",
                crate::MAX_THREADED_PROCESSORS
            ),
            NetError::Spawn(msg) => write!(f, "worker thread failure: {msg}"),
            NetError::UnknownProcessor { index, processors } => write!(
                f,
                "processor index {index} out of range for a network of {processors} processors"
            ),
            NetError::ShutDown => write!(f, "counter has been shut down"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(NetError::Order("bad".into()).to_string().contains("bad"));
        assert!(NetError::TooManyThreads { requested: 9999 }.to_string().contains("9999"));
        assert!(NetError::UnknownProcessor { index: 5, processors: 2 }
            .to_string()
            .contains('5'));
        assert!(NetError::ShutDown.to_string().contains("shut down"));
    }
}
