//! Error type of the threaded backend.

use std::error::Error;
use std::fmt;

/// Errors from the threaded counter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// Invalid network size / tree order.
    Order(String),
    /// More threads requested than the backend allows.
    TooManyThreads {
        /// The requested processor (thread) count.
        requested: usize,
    },
    /// A worker thread could not be spawned or panicked.
    Spawn(String),
    /// Out-of-range initiator.
    UnknownProcessor {
        /// The offending index.
        index: usize,
        /// The network size.
        processors: usize,
    },
    /// The counter was already shut down.
    ShutDown,
    /// A peer processor is unreachable: it was crashed by fault
    /// injection (see `ThreadedTreeClient::crash_worker`) or its thread
    /// is gone. Replaces the old hard abort when a channel closed.
    PeerLost {
        /// The unreachable processor's index.
        peer: usize,
    },
    /// No response arrived within the bounded retry/backoff window —
    /// typically a crashed worker sits on the operation's path up the
    /// tree and black-holes the `Apply` chain.
    Timeout {
        /// Total time waited across all retry attempts, in milliseconds.
        waited_ms: u64,
        /// Send attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Order(msg) => write!(f, "invalid tree order: {msg}"),
            NetError::TooManyThreads { requested } => write!(
                f,
                "{requested} processors exceed the threaded backend's limit of {}",
                crate::MAX_THREADED_PROCESSORS
            ),
            NetError::Spawn(msg) => write!(f, "worker thread failure: {msg}"),
            NetError::UnknownProcessor { index, processors } => write!(
                f,
                "processor index {index} out of range for a network of {processors} processors"
            ),
            NetError::ShutDown => write!(f, "counter has been shut down"),
            NetError::PeerLost { peer } => {
                write!(f, "peer processor P{peer} is unreachable (crashed or gone)")
            }
            NetError::Timeout { waited_ms, attempts } => write!(
                f,
                "no response after {attempts} attempts over {waited_ms} ms \
                 (a crashed worker on the operation's path?)"
            ),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(NetError::Order("bad".into()).to_string().contains("bad"));
        assert!(NetError::TooManyThreads { requested: 9999 }.to_string().contains("9999"));
        assert!(NetError::UnknownProcessor { index: 5, processors: 2 }.to_string().contains('5'));
        assert!(NetError::ShutDown.to_string().contains("shut down"));
        assert!(NetError::PeerLost { peer: 3 }.to_string().contains("P3"));
        let t = NetError::Timeout { waited_ms: 700, attempts: 3 };
        assert!(t.to_string().contains("700"));
        assert!(t.to_string().contains('3'));
    }
}
