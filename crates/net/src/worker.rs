//! The worker-thread event loop.
//!
//! Each OS thread *is* one processor: it owns the state of every tree
//! node it currently works for, a routing view of its neighbours'
//! workers, and forwarding addresses for nodes it has retired from. All
//! knowledge is local; node state genuinely migrates between threads
//! inside handoff messages — there is no shared map of "who serves what"
//! anywhere.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_channel::{Receiver, Sender};
use distctr_core::{NodeRef, RootObject, Topology};
use distctr_sim::ProcessorId;

use crate::messages::{NetMsg, NodeTransfer};

/// Default number of recent root replies kept for driver-retry
/// deduplication. Sequential driving means only the newest entries can
/// ever be retried, so a small window suffices; a service boundary
/// multiplexing many client sessions raises it via
/// `ThreadedTreeClient::with_reply_cache`.
pub const DEFAULT_REPLY_CACHE: usize = 8;

/// State of one tree node, owned by the thread currently working for it.
#[derive(Debug, Clone)]
pub(crate) struct Hosted<O: RootObject> {
    pub(crate) age: u64,
    pub(crate) pool_cursor: u64,
    pub(crate) parent_worker: Option<ProcessorId>,
    /// Inner-node children's workers (empty on level k).
    pub(crate) child_workers: Vec<ProcessorId>,
    /// Hosted object (root only).
    pub(crate) object: Option<O>,
    /// Replies already sent, keyed by op sequence (root only). A driver
    /// retry whose original `Apply` did land is answered from here, so
    /// retries stay exactly-once; migrates with the object on handoff.
    pub(crate) reply_cache: Vec<(u64, O::Response)>,
}

/// Shared accounting: per-processor sent/received counters and the
/// global in-flight message count used for quiescence detection.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) sent: Vec<AtomicU64>,
    pub(crate) received: Vec<AtomicU64>,
    pub(crate) in_flight: AtomicI64,
    pub(crate) retirements: AtomicU64,
    /// Messages that arrived at a retired worker and were forwarded to
    /// the pool successor by the retirement shim.
    pub(crate) shim_forwards: AtomicU64,
    /// Messages abandoned because the destination thread was gone
    /// (crashed or already shut down) — the graceful replacement for
    /// the old `expect()` abort on a closed channel.
    pub(crate) dead_letters: AtomicU64,
}

impl Shared {
    pub(crate) fn new(n: usize) -> Self {
        Shared {
            sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            received: (0..n).map(|_| AtomicU64::new(0)).collect(),
            in_flight: AtomicI64::new(0),
            retirements: AtomicU64::new(0),
            shim_forwards: AtomicU64::new(0),
            dead_letters: AtomicU64::new(0),
        }
    }
}

pub(crate) struct Worker<O: RootObject> {
    pub(crate) me: ProcessorId,
    pub(crate) topo: Arc<Topology>,
    pub(crate) threshold: u64,
    pub(crate) rx: Receiver<NetMsg<O>>,
    pub(crate) peers: Arc<Vec<Sender<NetMsg<O>>>>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) results: Sender<(u64, O::Response)>,
    pub(crate) nodes: HashMap<NodeRef, Hosted<O>>,
    /// Nodes this thread retired from, with the successor to forward to.
    pub(crate) forwarding: HashMap<NodeRef, ProcessorId>,
    /// Messages for nodes whose handoff has not arrived yet.
    pub(crate) pending: HashMap<NodeRef, Vec<NetMsg<O>>>,
    /// The (static) worker of this leaf's parent node: level-k nodes have
    /// singleton pools and never retire, so this never changes.
    pub(crate) leaf_parent_worker: ProcessorId,
    /// Root reply-cache capacity (see [`DEFAULT_REPLY_CACHE`]).
    pub(crate) reply_cache_cap: usize,
    /// Set by [`NetMsg::Crash`]: a crashed processor has lost all hosted
    /// state and silently discards every message (fail-silent model). It
    /// keeps draining its channel so in-flight accounting — and hence
    /// quiescence detection — stays exact.
    pub(crate) crashed: bool,
}

impl<O: RootObject> Worker<O> {
    /// Sends `msg` to `to`, charging this processor's sent counter and
    /// the in-flight gauge (increment happens strictly before the send so
    /// quiescence can never be observed spuriously).
    ///
    /// A closed peer channel is *not* fatal: the message becomes a dead
    /// letter, the in-flight charge is rolled back (nothing will ever
    /// drain it), and this thread keeps running — a killed worker
    /// degrades the network, it no longer aborts it.
    fn send(&self, to: ProcessorId, msg: NetMsg<O>) {
        let load = msg.counts_as_load();
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.peers[to.index()].send(msg).is_err() {
            self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.shared.dead_letters.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if load {
            self.shared.sent[self.me.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The thread main loop: handle messages until `Shutdown`.
    pub(crate) fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            let shutdown = matches!(msg, NetMsg::Shutdown);
            // A crashed processor does no work, so nothing it drains
            // counts toward the paper's per-processor load.
            if !self.crashed && msg.counts_as_load() {
                self.shared.received[self.me.index()].fetch_add(1, Ordering::Relaxed);
            }
            self.handle(msg);
            // The decrement strictly follows any sends made by the
            // handler, so in_flight only reaches 0 at true quiescence.
            self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            if shutdown {
                break;
            }
        }
    }

    fn handle(&mut self, msg: NetMsg<O>) {
        if self.crashed {
            // Fail-silent: drain and discard everything except the
            // driver's shutdown (handled by `run`'s break).
            if matches!(msg, NetMsg::Apply { .. } | NetMsg::Reply { .. }) {
                self.shared.dead_letters.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        match msg {
            NetMsg::StartOp { op_seq, req } => {
                let leaf_parent = self.topo.leaf_parent(self.me.index() as u64);
                self.send(
                    self.leaf_parent_worker,
                    NetMsg::Apply { node: leaf_parent, origin: self.me, op_seq, req },
                );
            }
            NetMsg::Apply { node, origin, op_seq, req } => {
                self.on_apply(node, origin, op_seq, req);
            }
            NetMsg::Reply { resp, op_seq } => {
                // The driver hung up (shutdown race): drop, don't abort.
                let _ = self.results.send((op_seq, resp));
            }
            NetMsg::HandoffPart { .. } => {
                // Unit parts only carry load; the final part installs.
            }
            NetMsg::HandoffFinal { transfer } => self.on_handoff(*transfer),
            NetMsg::NewWorker { node, retired, new_worker } => {
                self.on_new_worker(node, retired, new_worker);
            }
            NetMsg::Crash => {
                self.crashed = true;
                self.nodes.clear();
                self.forwarding.clear();
                self.pending.clear();
            }
            NetMsg::Shutdown => {}
        }
    }

    fn on_apply(&mut self, node: NodeRef, origin: ProcessorId, op_seq: u64, req: O::Request) {
        if !self.nodes.contains_key(&node) {
            // Shim: forward to the successor if we retired from this
            // node; buffer if its handoff has not reached us yet.
            if let Some(&successor) = self.forwarding.get(&node) {
                self.shared.shim_forwards.fetch_add(1, Ordering::Relaxed);
                self.send(successor, NetMsg::Apply { node, origin, op_seq, req });
            } else {
                self.pending.entry(node).or_default().push(NetMsg::Apply {
                    node,
                    origin,
                    op_seq,
                    req,
                });
            }
            return;
        }
        if node == NodeRef::ROOT {
            let Some(hosted) = self.nodes.get_mut(&node) else { return };
            hosted.age += 2;
            // Answer a driver retry from the reply cache so the object
            // observes each operation exactly once.
            let resp = match hosted.reply_cache.iter().find(|(seq, _)| *seq == op_seq) {
                Some((_, cached)) => cached.clone(),
                None => {
                    let Some(object) = hosted.object.as_mut() else {
                        // State was lost (crash without recovery): the
                        // operation dies here instead of aborting the run.
                        self.shared.dead_letters.fetch_add(1, Ordering::Relaxed);
                        return;
                    };
                    let resp = object.apply(req);
                    hosted.reply_cache.push((op_seq, resp.clone()));
                    if hosted.reply_cache.len() > self.reply_cache_cap {
                        hosted.reply_cache.remove(0);
                    }
                    resp
                }
            };
            self.send(origin, NetMsg::Reply { resp, op_seq });
        } else {
            let parent = self.topo.parent(node);
            let (parent, parent_worker) = {
                let Some(hosted) = self.nodes.get_mut(&node) else { return };
                hosted.age += 2;
                match (parent, hosted.parent_worker) {
                    (Some(p), Some(w)) => (p, w),
                    // An inner node that has lost its routing view drops
                    // the request rather than aborting the thread.
                    _ => {
                        self.shared.dead_letters.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            };
            self.send(parent_worker, NetMsg::Apply { node: parent, origin, op_seq, req });
        }
        self.maybe_retire(node);
    }

    fn on_handoff(&mut self, transfer: NodeTransfer<O>) {
        let node = transfer.node;
        let hosted = Hosted {
            age: 0,
            pool_cursor: transfer.pool_cursor,
            parent_worker: transfer.parent_worker,
            child_workers: transfer.child_workers,
            object: transfer.object,
            reply_cache: transfer.reply_cache,
        };
        self.nodes.insert(node, hosted);
        // We are the current worker now; drop any stale forwarding entry
        // (possible if this processor served the node in a previous
        // recycling epoch — not reachable with one-shot pools).
        self.forwarding.remove(&node);
        // Deliver everything that arrived before the handoff.
        if let Some(buffered) = self.pending.remove(&node) {
            for msg in buffered {
                self.handle(msg);
            }
        }
    }

    fn on_new_worker(&mut self, node: NodeRef, retired: NodeRef, new_worker: ProcessorId) {
        if !self.nodes.contains_key(&node) {
            if let Some(&successor) = self.forwarding.get(&node) {
                self.shared.shim_forwards.fetch_add(1, Ordering::Relaxed);
                self.send(successor, NetMsg::NewWorker { node, retired, new_worker });
            } else {
                self.pending.entry(node).or_default().push(NetMsg::NewWorker {
                    node,
                    retired,
                    new_worker,
                });
            }
            return;
        }
        let Some(hosted) = self.nodes.get_mut(&node) else { return };
        hosted.age += 1;
        if self.topo.parent(node) == Some(retired) {
            hosted.parent_worker = Some(new_worker);
        } else if let Some(children) = self.topo.inner_children(node) {
            if let Some(idx) = children.iter().position(|&c| c == retired) {
                hosted.child_workers[idx] = new_worker;
            }
        }
        self.maybe_retire(node);
    }

    fn maybe_retire(&mut self, node: NodeRef) {
        let (age, pool_cursor) = {
            let Some(hosted) = self.nodes.get(&node) else { return };
            (hosted.age, hosted.pool_cursor)
        };
        if age < self.threshold {
            return;
        }
        let pool = self.topo.pool(node);
        let size = pool.end - pool.start;
        if pool_cursor + 1 >= size {
            // Pool drained (unreachable on the canonical workload).
            if let Some(hosted) = self.nodes.get_mut(&node) {
                hosted.age = 0;
            }
            return;
        }
        let successor = ProcessorId::new((pool.start + pool_cursor + 1) as usize);
        let Some(hosted) = self.nodes.remove(&node) else { return };
        self.shared.retirements.fetch_add(1, Ordering::Relaxed);
        self.forwarding.insert(node, successor);

        // k+1 handoff messages: k unit parts + the state-bearing final.
        let total = self.topo.order() + 1;
        for part in 0..total - 1 {
            self.send(successor, NetMsg::HandoffPart { node, part, total });
        }
        self.send(
            successor,
            NetMsg::HandoffFinal {
                transfer: Box::new(NodeTransfer {
                    node,
                    pool_cursor: pool_cursor + 1,
                    parent_worker: hosted.parent_worker,
                    child_workers: hosted.child_workers.clone(),
                    object: hosted.object,
                    reply_cache: hosted.reply_cache,
                }),
            },
        );
        // Notify the parent and every child of the new worker.
        if let (Some(parent), Some(parent_worker)) = (self.topo.parent(node), hosted.parent_worker)
        {
            self.send(
                parent_worker,
                NetMsg::NewWorker { node: parent, retired: node, new_worker: successor },
            );
        }
        if let Some(children) = self.topo.inner_children(node) {
            for (idx, child) in children.into_iter().enumerate() {
                let w = hosted.child_workers[idx];
                self.send(
                    w,
                    NetMsg::NewWorker { node: child, retired: node, new_worker: successor },
                );
            }
        }
        // Level-k nodes never retire (singleton pools), so leaves need no
        // notification channel here.
    }
}
