//! The worker-thread event loop.
//!
//! Each OS thread *is* one processor: it owns the state of every tree
//! node it currently works for, a routing view of its neighbours'
//! workers, and forwarding addresses for nodes it has retired from. All
//! knowledge is local; node state genuinely migrates between threads
//! inside handoff messages — there is no shared map of "who serves what"
//! anywhere.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_channel::{Receiver, Sender};
use distctr_core::{NodeRef, RootObject, Topology};
use distctr_sim::ProcessorId;

use crate::messages::{NetMsg, NodeTransfer};

/// State of one tree node, owned by the thread currently working for it.
#[derive(Debug, Clone)]
pub(crate) struct Hosted<O> {
    pub(crate) age: u64,
    pub(crate) pool_cursor: u64,
    pub(crate) parent_worker: Option<ProcessorId>,
    /// Inner-node children's workers (empty on level k).
    pub(crate) child_workers: Vec<ProcessorId>,
    /// Hosted object (root only).
    pub(crate) object: Option<O>,
}

/// Shared accounting: per-processor sent/received counters and the
/// global in-flight message count used for quiescence detection.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) sent: Vec<AtomicU64>,
    pub(crate) received: Vec<AtomicU64>,
    pub(crate) in_flight: AtomicI64,
    pub(crate) retirements: AtomicU64,
}

impl Shared {
    pub(crate) fn new(n: usize) -> Self {
        Shared {
            sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            received: (0..n).map(|_| AtomicU64::new(0)).collect(),
            in_flight: AtomicI64::new(0),
            retirements: AtomicU64::new(0),
        }
    }
}

pub(crate) struct Worker<O: RootObject> {
    pub(crate) me: ProcessorId,
    pub(crate) topo: Arc<Topology>,
    pub(crate) threshold: u64,
    pub(crate) rx: Receiver<NetMsg<O>>,
    pub(crate) peers: Arc<Vec<Sender<NetMsg<O>>>>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) results: Sender<(u64, O::Response)>,
    pub(crate) nodes: HashMap<NodeRef, Hosted<O>>,
    /// Nodes this thread retired from, with the successor to forward to.
    pub(crate) forwarding: HashMap<NodeRef, ProcessorId>,
    /// Messages for nodes whose handoff has not arrived yet.
    pub(crate) pending: HashMap<NodeRef, Vec<NetMsg<O>>>,
    /// The (static) worker of this leaf's parent node: level-k nodes have
    /// singleton pools and never retire, so this never changes.
    pub(crate) leaf_parent_worker: ProcessorId,
}

impl<O: RootObject> Worker<O> {
    /// Sends `msg` to `to`, charging this processor's sent counter and
    /// the in-flight gauge (increment happens strictly before the send so
    /// quiescence can never be observed spuriously).
    fn send(&self, to: ProcessorId, msg: NetMsg<O>) {
        if msg.counts_as_load() {
            self.shared.sent[self.me.index()].fetch_add(1, Ordering::Relaxed);
        }
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        self.peers[to.index()]
            .send(msg)
            .expect("peer channel closed while the network is running");
    }

    /// The thread main loop: handle messages until `Shutdown`.
    pub(crate) fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            let shutdown = matches!(msg, NetMsg::Shutdown);
            if msg.counts_as_load() {
                self.shared.received[self.me.index()].fetch_add(1, Ordering::Relaxed);
            }
            self.handle(msg);
            // The decrement strictly follows any sends made by the
            // handler, so in_flight only reaches 0 at true quiescence.
            self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            if shutdown {
                break;
            }
        }
    }

    fn handle(&mut self, msg: NetMsg<O>) {
        match msg {
            NetMsg::StartOp { op_seq, req } => {
                let leaf_parent = self.topo.leaf_parent(self.me.index() as u64);
                self.send(
                    self.leaf_parent_worker,
                    NetMsg::Apply { node: leaf_parent, origin: self.me, op_seq, req },
                );
            }
            NetMsg::Apply { node, origin, op_seq, req } => {
                self.on_apply(node, origin, op_seq, req);
            }
            NetMsg::Reply { resp, op_seq } => {
                self.results.send((op_seq, resp)).expect("driver result channel open");
            }
            NetMsg::HandoffPart { .. } => {
                // Unit parts only carry load; the final part installs.
            }
            NetMsg::HandoffFinal { transfer } => self.on_handoff(*transfer),
            NetMsg::NewWorker { node, retired, new_worker } => {
                self.on_new_worker(node, retired, new_worker);
            }
            NetMsg::Shutdown => {}
        }
    }

    fn on_apply(&mut self, node: NodeRef, origin: ProcessorId, op_seq: u64, req: O::Request) {
        if !self.nodes.contains_key(&node) {
            // Shim: forward to the successor if we retired from this
            // node; buffer if its handoff has not reached us yet.
            if let Some(&successor) = self.forwarding.get(&node) {
                self.send(successor, NetMsg::Apply { node, origin, op_seq, req });
            } else {
                self.pending
                    .entry(node)
                    .or_default()
                    .push(NetMsg::Apply { node, origin, op_seq, req });
            }
            return;
        }
        {
            let hosted = self.nodes.get_mut(&node).expect("checked present");
            hosted.age += 2;
        }
        if node == NodeRef::ROOT {
            let hosted = self.nodes.get_mut(&node).expect("root hosted");
            let object = hosted.object.as_mut().expect("root carries the object");
            let resp = object.apply(req);
            self.send(origin, NetMsg::Reply { resp, op_seq });
        } else {
            let parent = self.topo.parent(node).expect("non-root has a parent");
            let parent_worker = self
                .nodes
                .get(&node)
                .expect("checked present")
                .parent_worker
                .expect("non-root knows its parent's worker");
            self.send(parent_worker, NetMsg::Apply { node: parent, origin, op_seq, req });
        }
        self.maybe_retire(node);
    }

    fn on_handoff(&mut self, transfer: NodeTransfer<O>) {
        let node = transfer.node;
        let hosted = Hosted {
            age: 0,
            pool_cursor: transfer.pool_cursor,
            parent_worker: transfer.parent_worker,
            child_workers: transfer.child_workers,
            object: transfer.object,
        };
        self.nodes.insert(node, hosted);
        // We are the current worker now; drop any stale forwarding entry
        // (possible if this processor served the node in a previous
        // recycling epoch — not reachable with one-shot pools).
        self.forwarding.remove(&node);
        // Deliver everything that arrived before the handoff.
        if let Some(buffered) = self.pending.remove(&node) {
            for msg in buffered {
                self.handle(msg);
            }
        }
    }

    fn on_new_worker(&mut self, node: NodeRef, retired: NodeRef, new_worker: ProcessorId) {
        if !self.nodes.contains_key(&node) {
            if let Some(&successor) = self.forwarding.get(&node) {
                self.send(successor, NetMsg::NewWorker { node, retired, new_worker });
            } else {
                self.pending
                    .entry(node)
                    .or_default()
                    .push(NetMsg::NewWorker { node, retired, new_worker });
            }
            return;
        }
        let hosted = self.nodes.get_mut(&node).expect("checked present");
        hosted.age += 1;
        if self.topo.parent(node) == Some(retired) {
            hosted.parent_worker = Some(new_worker);
        } else if let Some(children) = self.topo.inner_children(node) {
            if let Some(idx) = children.iter().position(|&c| c == retired) {
                hosted.child_workers[idx] = new_worker;
            }
        }
        self.maybe_retire(node);
    }

    fn maybe_retire(&mut self, node: NodeRef) {
        let (age, pool_cursor) = {
            let hosted = self.nodes.get(&node).expect("hosted");
            (hosted.age, hosted.pool_cursor)
        };
        if age < self.threshold {
            return;
        }
        let pool = self.topo.pool(node);
        let size = pool.end - pool.start;
        if pool_cursor + 1 >= size {
            // Pool drained (unreachable on the canonical workload).
            self.nodes.get_mut(&node).expect("hosted").age = 0;
            return;
        }
        let successor = ProcessorId::new((pool.start + pool_cursor + 1) as usize);
        let hosted = self.nodes.remove(&node).expect("hosted");
        self.shared.retirements.fetch_add(1, Ordering::Relaxed);
        self.forwarding.insert(node, successor);

        // k+1 handoff messages: k unit parts + the state-bearing final.
        let total = self.topo.order() + 1;
        for part in 0..total - 1 {
            self.send(successor, NetMsg::HandoffPart { node, part, total });
        }
        self.send(
            successor,
            NetMsg::HandoffFinal {
                transfer: Box::new(NodeTransfer {
                    node,
                    pool_cursor: pool_cursor + 1,
                    parent_worker: hosted.parent_worker,
                    child_workers: hosted.child_workers.clone(),
                    object: hosted.object,
                }),
            },
        );
        // Notify the parent and every child of the new worker.
        if let Some(parent) = self.topo.parent(node) {
            let parent_worker = hosted.parent_worker.expect("non-root parent worker");
            self.send(
                parent_worker,
                NetMsg::NewWorker { node: parent, retired: node, new_worker: successor },
            );
        }
        if let Some(children) = self.topo.inner_children(node) {
            for (idx, child) in children.into_iter().enumerate() {
                let w = hosted.child_workers[idx];
                self.send(w, NetMsg::NewWorker { node: child, retired: node, new_worker: successor });
            }
        }
        // Level-k nodes never retire (singleton pools), so leaves need no
        // notification channel here.
    }
}
