//! The worker-thread event loop.
//!
//! Each OS thread *is* one processor, but the thread itself decides
//! nothing about the protocol: it owns a [`NodeEngine`] — the same
//! sans-io state machine the simulator drives — and merely shuttles
//! events in and effects out. Receive a message, feed it to the engine,
//! realize the returned effects on the channel mesh (sends, driver
//! replies, audit counters). All protocol knowledge is local to the
//! engine; node state genuinely migrates between threads inside handoff
//! messages — there is no shared map of "who serves what" anywhere.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_channel::{Receiver, Sender};
use distctr_core::engine::{AuditEvent, Effect, Event, NodeEngine, VirtualTime};
use distctr_core::{Msg, RootObject, Topology};
use distctr_sim::ProcessorId;

use crate::messages::NetMsg;

/// Default number of recent root replies kept for driver-retry
/// deduplication. Sequential driving means only the newest entries can
/// ever be retried, so a small window suffices; a service boundary
/// multiplexing many client sessions raises it via
/// `ThreadedTreeClient::with_reply_cache`.
pub const DEFAULT_REPLY_CACHE: usize = 8;

/// Shared accounting: per-processor sent/received counters and the
/// global in-flight message count used for quiescence detection.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) sent: Vec<AtomicU64>,
    pub(crate) received: Vec<AtomicU64>,
    pub(crate) in_flight: AtomicI64,
    pub(crate) retirements: AtomicU64,
    /// Messages that arrived at a retired worker and were forwarded to
    /// the pool successor by the retirement shim.
    pub(crate) shim_forwards: AtomicU64,
    /// Messages abandoned because the destination thread was gone
    /// (crashed or already shut down) or their state was lost — the
    /// graceful replacement for the old `expect()` abort on a closed
    /// channel.
    pub(crate) dead_letters: AtomicU64,
}

impl Shared {
    pub(crate) fn new(n: usize) -> Self {
        Shared {
            sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            received: (0..n).map(|_| AtomicU64::new(0)).collect(),
            in_flight: AtomicI64::new(0),
            retirements: AtomicU64::new(0),
            shim_forwards: AtomicU64::new(0),
            dead_letters: AtomicU64::new(0),
        }
    }
}

pub(crate) struct Worker<O: RootObject> {
    pub(crate) me: ProcessorId,
    pub(crate) topo: Arc<Topology>,
    pub(crate) rx: Receiver<NetMsg<O>>,
    pub(crate) peers: Arc<Vec<Sender<NetMsg<O>>>>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) results: Sender<(u64, O::Response)>,
    /// The protocol brain: every routing, aging, retirement and recovery
    /// decision happens inside, never in this thread loop.
    pub(crate) engine: NodeEngine<O>,
    /// Set by [`NetMsg::Crash`]: a crashed processor has lost all hosted
    /// state and silently discards every message (fail-silent model). It
    /// keeps draining its channel so in-flight accounting — and hence
    /// quiescence detection — stays exact.
    pub(crate) crashed: bool,
}

impl<O: RootObject> Worker<O> {
    /// Sends `msg` to `to`, charging this processor's sent counter and
    /// the in-flight gauge (increment happens strictly before the send so
    /// quiescence can never be observed spuriously).
    ///
    /// A closed peer channel is *not* fatal: the message becomes a dead
    /// letter, the in-flight charge is rolled back (nothing will ever
    /// drain it), and this thread keeps running — a killed worker
    /// degrades the network, it no longer aborts it.
    fn send(&self, to: ProcessorId, msg: NetMsg<O>) {
        let load = msg.counts_as_load();
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.peers[to.index()].send(msg).is_err() {
            self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.shared.dead_letters.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if load {
            self.shared.sent[self.me.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The thread main loop: handle messages until `Shutdown`.
    pub(crate) fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            let shutdown = matches!(msg, NetMsg::Shutdown);
            // A crashed processor does no work, so nothing it drains
            // counts toward the paper's per-processor load.
            if !self.crashed && msg.counts_as_load() {
                self.shared.received[self.me.index()].fetch_add(1, Ordering::Relaxed);
            }
            self.handle(msg);
            // The decrement strictly follows any sends made by the
            // handler, so in_flight only reaches 0 at true quiescence.
            self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            if shutdown {
                break;
            }
        }
    }

    fn handle(&mut self, msg: NetMsg<O>) {
        if let NetMsg::Fingerprint { reply } = msg {
            // Answered even when crashed: the reset engine plus the
            // crash flag the driver tracks *is* the processor's
            // observable protocol state.
            let _ = reply.send((self.me.index(), self.engine.fingerprint()));
            return;
        }
        if self.crashed {
            // Fail-silent: drain and discard everything except the
            // driver's shutdown (handled by `run`'s break).
            if matches!(
                msg,
                NetMsg::Protocol(Msg::Apply { .. } | Msg::BatchApply { .. } | Msg::Reply { .. })
            ) {
                self.shared.dead_letters.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        match msg {
            NetMsg::Protocol(m) => {
                let fx = self.engine.on_event(Event::Deliver { msg: m }, VirtualTime::ZERO);
                self.apply(fx);
            }
            NetMsg::StartOp { op_seq, req } => {
                let fx = self.engine.on_event(Event::Invoke { op_seq, req }, VirtualTime::ZERO);
                self.apply(fx);
            }
            NetMsg::StartBatch { op_seq, count, req } => {
                let fx = self
                    .engine
                    .on_event(Event::InvokeBatch { op_seq, count, req }, VirtualTime::ZERO);
                self.apply(fx);
            }
            NetMsg::Crash => {
                self.crashed = true;
                // All hosted node state dies with the processor: a fresh
                // engine has no hosting, forwarding, or pending buffers.
                self.engine =
                    NodeEngine::new(self.me, Arc::clone(&self.topo), self.engine.config());
            }
            // Handled before the crashed guard above.
            NetMsg::Fingerprint { .. } => unreachable!("fingerprints answered eagerly"),
            NetMsg::Shutdown => {}
        }
    }

    /// Realizes the engine's effects on this transport: sends go out on
    /// the channel mesh, replies to the driver's result channel, and the
    /// audit events that have a threaded-side counter are tallied. Timer
    /// effects are advisory here — the driver's bounded retry loop plays
    /// the watchdog role — and registry/persistence effects have no
    /// threaded observer, so both are dropped deliberately.
    fn apply(&mut self, fx: Vec<Effect<O>>) {
        for effect in fx {
            match effect {
                Effect::Send { to, msg } => self.send(to, NetMsg::Protocol(msg)),
                Effect::Reply { op_seq, resp } => {
                    // The driver hung up (shutdown race): drop, don't
                    // abort.
                    let _ = self.results.send((op_seq, resp));
                }
                Effect::Audit(AuditEvent::ShimForward) => {
                    self.shared.shim_forwards.fetch_add(1, Ordering::Relaxed);
                }
                Effect::Audit(AuditEvent::Retirement { .. }) => {
                    self.shared.retirements.fetch_add(1, Ordering::Relaxed);
                }
                Effect::Audit(AuditEvent::Lost) => {
                    // State was lost (crash without recovery): the
                    // operation dies here instead of aborting the run.
                    self.shared.dead_letters.fetch_add(1, Ordering::Relaxed);
                }
                Effect::SetTimer { .. }
                | Effect::CancelTimer { .. }
                | Effect::Retired { .. }
                | Effect::Installed { .. }
                | Effect::RecoveryStarted { .. }
                | Effect::Recovered { .. }
                | Effect::Persist { .. }
                | Effect::Audit(_) => {}
            }
        }
    }
}
