//! # distctr-net
//!
//! A **real-threads** execution backend for the paper's retirement-tree
//! counter: one OS thread per processor, crossbeam channels as the
//! network, and node state that genuinely **migrates between threads**
//! inside handoff messages. No thread ever reads another's state; the
//! routing view (who works for my parent/children) is local knowledge
//! kept current by `NewWorker` notifications — exactly the paper's
//! information model.
//!
//! The discrete-event simulator (`distctr-sim`) remains the measurement
//! instrument (deterministic, exact counts, adversarial schedules); this
//! crate demonstrates the protocol survives genuine asynchrony — OS
//! scheduling, channel buffering, racy arrival orders — and the
//! cross-backend tests assert it produces the same observable behaviour.
//! Like the simulator, the backend is generic over the hosted
//! [`distctr_core::RootObject`]: [`ThreadedTreeClient`] serves any
//! sequentially-dependent object, [`ThreadedTreeCounter`] is its counter
//! instance.
//!
//! ```
//! use distctr_net::ThreadedTreeCounter;
//! use distctr_sim::ProcessorId;
//!
//! # fn main() -> Result<(), distctr_net::NetError> {
//! let mut counter = ThreadedTreeCounter::new(81)?; // 81 real threads
//! for i in 0..81 {
//!     assert_eq!(counter.inc(ProcessorId::new(i))?, i as u64);
//! }
//! assert!(counter.bottleneck() <= 20 * 3, "O(k) on real threads too");
//! counter.shutdown()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod error;
pub mod messages;
pub(crate) mod worker;

pub use counter::{ThreadedTreeClient, ThreadedTreeCounter, MAX_THREADED_PROCESSORS};
pub use error::NetError;
pub use messages::{NetMsg, NodeTransfer};
pub use worker::DEFAULT_REPLY_CACHE;
