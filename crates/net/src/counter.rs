//! The public threaded client and counter.
//!
//! One OS thread per processor, crossbeam channels as the network,
//! sequential driving per the paper's model: each operation waits for its
//! response *and* for full quiescence of the retirement cascade ("enough
//! time elapses between any two inc requests").

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{unbounded, Receiver, Sender};
use distctr_core::{kmath, CounterObject, NodeRef, RootObject, Topology};
use distctr_sim::ProcessorId;

use crate::error::NetError;
use crate::messages::NetMsg;
use crate::worker::{Hosted, Shared, Worker};

/// Hard cap on spawned threads: one per processor.
pub const MAX_THREADED_PROCESSORS: usize = 4096;

/// Any [`RootObject`] served by the retirement tree on real OS threads.
///
/// # Examples
///
/// ```
/// use distctr_core::FlipBitObject;
/// use distctr_net::ThreadedTreeClient;
/// use distctr_sim::ProcessorId;
///
/// # fn main() -> Result<(), distctr_net::NetError> {
/// let mut bit = ThreadedTreeClient::new(8, FlipBitObject::new())?;
/// assert!(!bit.invoke(ProcessorId::new(3), ())?);
/// assert!(bit.invoke(ProcessorId::new(5), ())?);
/// bit.shutdown()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ThreadedTreeClient<O: RootObject> {
    topo: Arc<Topology>,
    peers: Arc<Vec<Sender<NetMsg<O>>>>,
    results: Receiver<(u64, O::Response)>,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next_op: u64,
    shut_down: bool,
}

impl<O> ThreadedTreeClient<O>
where
    O: RootObject + Send + 'static,
    O::Request: Send + 'static,
    O::Response: Send + 'static,
{
    /// Spawns one thread per processor for a tree of at least `n`
    /// processors (rounded up to `k^(k+1)`), hosting `object` at the
    /// root.
    ///
    /// # Errors
    ///
    /// [`NetError::Order`] for invalid sizes; [`NetError::TooManyThreads`]
    /// beyond [`MAX_THREADED_PROCESSORS`]; [`NetError::Spawn`] if thread
    /// creation fails.
    pub fn new(n: usize, object: O) -> Result<Self, NetError> {
        if n == 0 {
            return Err(NetError::Order("n must be at least 1".into()));
        }
        let k = kmath::order_for(n as u64);
        let topo = Arc::new(Topology::new(k).map_err(NetError::Order)?);
        let processors = usize::try_from(topo.processors())
            .map_err(|_| NetError::Order("n does not fit usize".into()))?;
        if processors > MAX_THREADED_PROCESSORS {
            return Err(NetError::TooManyThreads { requested: processors });
        }

        let mut senders = Vec::with_capacity(processors);
        let mut receivers = Vec::with_capacity(processors);
        for _ in 0..processors {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let peers = Arc::new(senders);
        let shared = Arc::new(Shared::new(processors));
        let (result_tx, results) = unbounded();
        let threshold = 4 * u64::from(k);

        // Initial hosting: each thread owns the nodes whose initial
        // worker it is, with neighbour routing seeded from the topology.
        let mut initial: Vec<HashMap<NodeRef, Hosted<O>>> =
            (0..processors).map(|_| HashMap::new()).collect();
        for node in topo.nodes() {
            let worker = topo.initial_worker(node);
            let parent_worker = topo.parent(node).map(|p| topo.initial_worker(p));
            let child_workers = topo
                .inner_children(node)
                .map(|children| children.iter().map(|&c| topo.initial_worker(c)).collect())
                .unwrap_or_default();
            initial[worker.index()].insert(
                node,
                Hosted {
                    age: 0,
                    pool_cursor: 0,
                    parent_worker,
                    child_workers,
                    object: (node == NodeRef::ROOT).then(|| object.clone()),
                },
            );
        }

        let mut handles = Vec::with_capacity(processors);
        for (index, rx) in receivers.into_iter().enumerate() {
            let me = ProcessorId::new(index);
            let leaf_parent = topo.leaf_parent(index as u64);
            let worker = Worker {
                me,
                topo: Arc::clone(&topo),
                threshold,
                rx,
                peers: Arc::clone(&peers),
                shared: Arc::clone(&shared),
                results: result_tx.clone(),
                nodes: std::mem::take(&mut initial[index]),
                forwarding: HashMap::new(),
                pending: HashMap::new(),
                leaf_parent_worker: topo.initial_worker(leaf_parent),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("distctr-p{index}"))
                    .spawn(move || worker.run())
                    .map_err(|e| NetError::Spawn(e.to_string()))?,
            );
        }
        Ok(ThreadedTreeClient {
            topo,
            peers,
            results,
            shared,
            handles,
            next_op: 0,
            shut_down: false,
        })
    }

    /// Number of processors (= threads).
    #[must_use]
    pub fn processors(&self) -> usize {
        self.peers.len()
    }

    /// The tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.topo.order()
    }

    /// Executes one operation initiated by `initiator`, waiting for the
    /// response and for the retirement cascade to quiesce.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownProcessor`] for an out-of-range initiator;
    /// [`NetError::ShutDown`] after [`ThreadedTreeClient::shutdown`].
    pub fn invoke(
        &mut self,
        initiator: ProcessorId,
        req: O::Request,
    ) -> Result<O::Response, NetError> {
        if self.shut_down {
            return Err(NetError::ShutDown);
        }
        if initiator.index() >= self.processors() {
            return Err(NetError::UnknownProcessor {
                index: initiator.index(),
                processors: self.processors(),
            });
        }
        let op_seq = self.next_op;
        self.next_op += 1;
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        self.peers[initiator.index()]
            .send(NetMsg::StartOp { op_seq, req })
            .map_err(|_| NetError::ShutDown)?;
        // First the response...
        let (seq, resp) = self.results.recv().map_err(|_| NetError::ShutDown)?;
        debug_assert_eq!(seq, op_seq, "sequential driving delivers in order");
        // ...then quiescence of any retirement cascade, per the paper's
        // "enough time elapses" assumption.
        self.wait_quiescent();
        Ok(resp)
    }

    fn wait_quiescent(&self) {
        let mut spins = 0u32;
        while self.shared.in_flight.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
            std::hint::spin_loop();
        }
    }

    /// Per-processor message loads (sent + received), snapshot.
    #[must_use]
    pub fn loads(&self) -> Vec<u64> {
        (0..self.processors())
            .map(|i| {
                self.shared.sent[i].load(Ordering::Relaxed)
                    + self.shared.received[i].load(Ordering::Relaxed)
            })
            .collect()
    }

    /// The bottleneck load.
    #[must_use]
    pub fn bottleneck(&self) -> u64 {
        self.loads().into_iter().max().unwrap_or(0)
    }

    /// Total retirements across the run.
    #[must_use]
    pub fn retirements(&self) -> u64 {
        self.shared.retirements.load(Ordering::Relaxed)
    }

    /// Stops every worker thread and joins them.
    ///
    /// # Errors
    ///
    /// [`NetError::Spawn`] if a worker thread panicked.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        if self.shut_down {
            return Ok(());
        }
        self.shut_down = true;
        for tx in self.peers.iter() {
            let _ = tx.send(NetMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            handle.join().map_err(|_| NetError::Spawn("worker thread panicked".into()))?;
        }
        Ok(())
    }
}

impl<O: RootObject> Drop for ThreadedTreeClient<O> {
    fn drop(&mut self) {
        if !self.shut_down {
            self.shut_down = true;
            for tx in self.peers.iter() {
                let _ = tx.send(NetMsg::Shutdown);
            }
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// The retirement-tree counter running on real OS threads.
///
/// # Examples
///
/// ```
/// use distctr_net::ThreadedTreeCounter;
/// use distctr_sim::ProcessorId;
///
/// # fn main() -> Result<(), distctr_net::NetError> {
/// let mut counter = ThreadedTreeCounter::new(8)?; // 8 threads, k = 2
/// assert_eq!(counter.inc(ProcessorId::new(3))?, 0);
/// assert_eq!(counter.inc(ProcessorId::new(5))?, 1);
/// counter.shutdown()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ThreadedTreeCounter {
    client: ThreadedTreeClient<CounterObject>,
}

impl ThreadedTreeCounter {
    /// Spawns one thread per processor for a tree of at least `n`
    /// processors (rounded up to `k^(k+1)`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::new`].
    pub fn new(n: usize) -> Result<Self, NetError> {
        Ok(ThreadedTreeCounter { client: ThreadedTreeClient::new(n, CounterObject::new())? })
    }

    /// Number of processors (= threads).
    #[must_use]
    pub fn processors(&self) -> usize {
        self.client.processors()
    }

    /// The tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.client.order()
    }

    /// Executes one `inc` initiated by `initiator`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::invoke`].
    pub fn inc(&mut self, initiator: ProcessorId) -> Result<u64, NetError> {
        self.client.invoke(initiator, ())
    }

    /// Per-processor message loads (sent + received), snapshot.
    #[must_use]
    pub fn loads(&self) -> Vec<u64> {
        self.client.loads()
    }

    /// The bottleneck load.
    #[must_use]
    pub fn bottleneck(&self) -> u64 {
        self.client.bottleneck()
    }

    /// Total retirements across the run.
    #[must_use]
    pub fn retirements(&self) -> u64 {
        self.client.retirements()
    }

    /// Stops every worker thread and joins them.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::shutdown`].
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        self.client.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sequentially_and_shuts_down() {
        let mut c = ThreadedTreeCounter::new(8).expect("8 threads");
        assert_eq!(c.processors(), 8);
        assert_eq!(c.order(), 2);
        for i in 0..8 {
            let v = c.inc(ProcessorId::new(i)).expect("inc");
            assert_eq!(v, i as u64);
        }
        assert!(c.retirements() > 0, "retirement really happened across threads");
        c.shutdown().expect("clean shutdown");
        assert!(matches!(c.inc(ProcessorId::new(0)), Err(NetError::ShutDown)));
    }

    #[test]
    fn bottleneck_is_big_o_of_k() {
        let mut c = ThreadedTreeCounter::new(81).expect("81 threads");
        for i in 0..81 {
            c.inc(ProcessorId::new(i)).expect("inc");
        }
        let b = c.bottleneck();
        assert!(b >= 3, "lower bound k = 3: {b}");
        assert!(b <= 20 * 3, "O(k) bound: {b}");
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(ThreadedTreeCounter::new(0), Err(NetError::Order(_))));
        let mut c = ThreadedTreeCounter::new(8).expect("counter");
        assert!(matches!(
            c.inc(ProcessorId::new(99)),
            Err(NetError::UnknownProcessor { .. })
        ));
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn rounds_up_like_the_simulator() {
        let mut c = ThreadedTreeCounter::new(50).expect("counter");
        assert_eq!(c.processors(), 81);
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let mut c = ThreadedTreeCounter::new(8).expect("counter");
        c.inc(ProcessorId::new(0)).expect("inc");
        drop(c); // must not hang or panic
    }

    #[test]
    fn generic_client_hosts_a_priority_queue_on_threads() {
        use distctr_core::object::{PqRequest, PqResponse, PriorityQueueObject};
        let mut pq =
            ThreadedTreeClient::new(8, PriorityQueueObject::new()).expect("threads");
        for (i, key) in [9u64, 2, 7].into_iter().enumerate() {
            let resp = pq.invoke(ProcessorId::new(i), PqRequest::Insert(key)).expect("insert");
            assert_eq!(resp, PqResponse::Inserted { len: i as u64 + 1 });
        }
        assert_eq!(
            pq.invoke(ProcessorId::new(5), PqRequest::ExtractMin).expect("extract"),
            PqResponse::Min(Some(2)),
            "the heap migrated with root retirements and still orders keys"
        );
        pq.shutdown().expect("shutdown");
    }

    #[test]
    fn generic_client_hosts_a_max_register_on_threads() {
        use distctr_core::MaxRegisterObject;
        let mut reg = ThreadedTreeClient::new(8, MaxRegisterObject::new()).expect("threads");
        assert_eq!(reg.invoke(ProcessorId::new(0), 5).expect("fetch_max"), 0);
        assert_eq!(reg.invoke(ProcessorId::new(3), 2).expect("fetch_max"), 5);
        assert_eq!(reg.invoke(ProcessorId::new(7), 9).expect("fetch_max"), 5);
        reg.shutdown().expect("shutdown");
    }
}
