//! The public threaded client and counter.
//!
//! One OS thread per processor, crossbeam channels as the network,
//! sequential driving per the paper's model: each operation waits for its
//! response *and* for full quiescence of the retirement cascade ("enough
//! time elapses between any two inc requests").

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use distctr_core::engine::{seed_initial_hosting, EngineConfig, NodeEngine, PoolPolicy};
use distctr_core::{kmath, CounterBackend, CounterObject, Msg, NodeRef, RootObject, Topology};
use distctr_sim::ProcessorId;

use crate::error::NetError;
use crate::messages::NetMsg;
use crate::worker::{Shared, Worker, DEFAULT_REPLY_CACHE};

/// Hard cap on spawned threads: one per processor.
pub const MAX_THREADED_PROCESSORS: usize = 4096;

/// Bounded retry: how many times the driver (re)sends an operation
/// before reporting [`NetError::Timeout`]. Retries are safe because the
/// root deduplicates by op sequence through its migrating reply cache.
pub const SEND_ATTEMPTS: u32 = 3;

/// Base per-attempt response timeout; attempt `i` waits `i` times this
/// (linear backoff), so a crashed path is reported after
/// `BASE_TIMEOUT * (1 + 2 + … + SEND_ATTEMPTS)`.
pub const BASE_TIMEOUT: Duration = Duration::from_millis(150);

/// Upper bound on waiting for the retirement cascade to quiesce; only
/// reachable if in-flight accounting leaks, so hitting it is reported
/// as a timeout instead of spinning forever.
const QUIESCENCE_TIMEOUT: Duration = Duration::from_secs(10);

/// Any [`RootObject`] served by the retirement tree on real OS threads.
///
/// # Examples
///
/// ```
/// use distctr_core::FlipBitObject;
/// use distctr_net::ThreadedTreeClient;
/// use distctr_sim::ProcessorId;
///
/// # fn main() -> Result<(), distctr_net::NetError> {
/// let mut bit = ThreadedTreeClient::new(8, FlipBitObject::new())?;
/// assert!(!bit.invoke(ProcessorId::new(3), ())?);
/// assert!(bit.invoke(ProcessorId::new(5), ())?);
/// bit.shutdown()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ThreadedTreeClient<O: RootObject> {
    topo: Arc<Topology>,
    peers: Arc<Vec<Sender<NetMsg<O>>>>,
    results: Receiver<(u64, O::Response)>,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next_op: u64,
    shut_down: bool,
    crashed: Vec<bool>,
}

impl<O> ThreadedTreeClient<O>
where
    O: RootObject + Send + 'static,
    O::Request: Send + 'static,
    O::Response: Send + 'static,
{
    /// Spawns one thread per processor for a tree of at least `n`
    /// processors (rounded up to `k^(k+1)`), hosting `object` at the
    /// root.
    ///
    /// # Errors
    ///
    /// [`NetError::Order`] for invalid sizes; [`NetError::TooManyThreads`]
    /// beyond [`MAX_THREADED_PROCESSORS`]; [`NetError::Spawn`] if thread
    /// creation fails.
    pub fn new(n: usize, object: O) -> Result<Self, NetError> {
        Self::with_reply_cache(n, object, DEFAULT_REPLY_CACHE)
    }

    /// Like [`ThreadedTreeClient::new`], but with an explicit root
    /// reply-cache capacity. The cache deduplicates retries by op
    /// sequence; a service boundary multiplexing many client sessions
    /// needs a window at least as large as the number of operations that
    /// may land between a lost reply and its retry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::new`], plus
    /// [`NetError::Order`] if `reply_cache_cap` is 0.
    pub fn with_reply_cache(n: usize, object: O, reply_cache_cap: usize) -> Result<Self, NetError> {
        if reply_cache_cap == 0 {
            return Err(NetError::Order("reply cache needs at least one slot".into()));
        }
        if n == 0 {
            return Err(NetError::Order("n must be at least 1".into()));
        }
        let k = kmath::order_for(n as u64);
        let topo = Arc::new(Topology::new(k).map_err(NetError::Order)?);
        let processors = usize::try_from(topo.processors())
            .map_err(|_| NetError::Order("n does not fit usize".into()))?;
        if processors > MAX_THREADED_PROCESSORS {
            return Err(NetError::TooManyThreads { requested: processors });
        }

        let mut senders = Vec::with_capacity(processors);
        let mut receivers = Vec::with_capacity(processors);
        for _ in 0..processors {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let peers = Arc::new(senders);
        let shared = Arc::new(Shared::new(processors));
        let (result_tx, results) = unbounded();

        // One shared-protocol engine per thread, seeded with the initial
        // hosting and neighbour routing straight from the topology. The
        // driver's bounded retry makes deduplication mandatory here.
        let config = EngineConfig {
            threshold: Some(kmath::retirement_threshold(k)),
            pool_policy: PoolPolicy::OneShot,
            reply_cache_cap,
            dedupe: true,
            persist: false,
        };
        let mut engines: Vec<NodeEngine<O>> = (0..processors)
            .map(|i| NodeEngine::new(ProcessorId::new(i), Arc::clone(&topo), config))
            .collect();
        seed_initial_hosting(&topo, &mut engines, &object);

        let mut handles = Vec::with_capacity(processors);
        for ((index, rx), engine) in receivers.into_iter().enumerate().zip(engines) {
            let me = ProcessorId::new(index);
            let worker = Worker {
                me,
                topo: Arc::clone(&topo),
                rx,
                peers: Arc::clone(&peers),
                shared: Arc::clone(&shared),
                results: result_tx.clone(),
                engine,
                crashed: false,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("distctr-p{index}"))
                    .spawn(move || worker.run())
                    .map_err(|e| NetError::Spawn(e.to_string()))?,
            );
        }
        Ok(ThreadedTreeClient {
            topo,
            peers,
            results,
            shared,
            handles,
            next_op: 0,
            shut_down: false,
            crashed: vec![false; processors],
        })
    }

    /// Number of processors (= threads).
    #[must_use]
    pub fn processors(&self) -> usize {
        self.peers.len()
    }

    /// The tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.topo.order()
    }

    /// Executes one operation initiated by `initiator`, waiting for the
    /// response and for the retirement cascade to quiesce.
    ///
    /// The wait is bounded: each of up to [`SEND_ATTEMPTS`] sends waits
    /// with linear backoff, and a retry reuses the same op sequence so
    /// the root's reply cache keeps the object's history exactly-once
    /// even if the original `Apply` did land.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownProcessor`] for an out-of-range initiator;
    /// [`NetError::ShutDown`] after [`ThreadedTreeClient::shutdown`];
    /// [`NetError::PeerLost`] if the initiator itself has crashed;
    /// [`NetError::Timeout`] when every attempt went unanswered —
    /// typically a crashed worker black-holes the operation's path.
    pub fn invoke(
        &mut self,
        initiator: ProcessorId,
        req: O::Request,
    ) -> Result<O::Response, NetError> {
        let op_seq = self.reserve_op();
        self.invoke_reserved(initiator, op_seq, req)
    }

    /// Reserves the next op sequence without driving anything. Combined
    /// with [`ThreadedTreeClient::invoke_reserved`], this is the
    /// exactly-once hook for a service boundary: reserve a sequence when
    /// a client request first arrives, then drive it — possibly more than
    /// once, across client reconnects — under that same sequence. The
    /// root's migrating reply cache answers every re-drive with the value
    /// of the first application.
    pub fn reserve_op(&mut self) -> u64 {
        let op_seq = self.next_op;
        self.next_op += 1;
        op_seq
    }

    /// Executes one operation under a caller-reserved op sequence (see
    /// [`ThreadedTreeClient::reserve_op`]). Re-driving a sequence whose
    /// original application already reached the root is answered from the
    /// reply cache instead of applying again.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::invoke`].
    pub fn invoke_reserved(
        &mut self,
        initiator: ProcessorId,
        op_seq: u64,
        req: O::Request,
    ) -> Result<O::Response, NetError> {
        self.check_peer(initiator)?;
        self.drive(initiator, op_seq, |op_seq| NetMsg::StartOp { op_seq, req: req.clone() })
    }

    /// Executes a *batch* of `count` identical operations under a
    /// caller-reserved op sequence: the batch shares **one** tree
    /// traversal ([`Msg::BatchApply`]) and the response is the first
    /// member's — for the counter, the start of the contiguous range
    /// `[first, first + count)` the batch owns. Re-driving the same
    /// sequence (with the same count) is answered from the root's reply
    /// cache, so the whole range stays exactly-once across retries.
    ///
    /// [`Msg::BatchApply`]: distctr_core::Msg::BatchApply
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::invoke`].
    pub fn invoke_batch_reserved(
        &mut self,
        initiator: ProcessorId,
        op_seq: u64,
        count: u64,
        req: O::Request,
    ) -> Result<O::Response, NetError> {
        self.check_peer(initiator)?;
        let count = count.max(1);
        self.drive(initiator, op_seq, |op_seq| NetMsg::StartBatch {
            op_seq,
            count,
            req: req.clone(),
        })
    }

    /// Injects an operation addressed to `node` directly at
    /// `entry_worker`, modelling a sender with a **stale routing view**
    /// (one that has not yet heard a retirement's `NewWorker`
    /// notification). If `entry_worker` retired from `node`, its shim
    /// forwards the request to the pool successor — and counts the hop —
    /// exactly like the simulator's forwarding accounting. The reply
    /// still flows to `initiator` and back to the driver.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::invoke`], for
    /// `entry_worker` in place of the initiator.
    pub fn invoke_stale(
        &mut self,
        entry_worker: ProcessorId,
        node: NodeRef,
        initiator: ProcessorId,
        req: O::Request,
    ) -> Result<O::Response, NetError> {
        self.check_peer(entry_worker)?;
        self.check_peer(initiator)?;
        let op_seq = self.reserve_op();
        self.drive(entry_worker, op_seq, |op_seq| {
            NetMsg::Protocol(Msg::Apply { node, origin: initiator, op_seq, req: req.clone() })
        })
    }

    /// Crashes the worker thread of processor `p`: it loses all hosted
    /// node state and silently discards traffic from then on (fail
    /// silent). Operations whose path crosses the crashed processor time
    /// out instead of aborting the process; the rest of the network
    /// keeps serving.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownProcessor`] for an out-of-range index;
    /// [`NetError::ShutDown`] after shutdown.
    pub fn crash_worker(&mut self, p: ProcessorId) -> Result<(), NetError> {
        if self.shut_down {
            return Err(NetError::ShutDown);
        }
        if p.index() >= self.processors() {
            return Err(NetError::UnknownProcessor {
                index: p.index(),
                processors: self.processors(),
            });
        }
        if !self.crashed[p.index()] {
            self.crashed[p.index()] = true;
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            if self.peers[p.index()].send(NetMsg::Crash).is_err() {
                // The thread is already gone; that is a crash too.
                self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            self.wait_quiescent(QUIESCENCE_TIMEOUT);
        }
        Ok(())
    }

    /// Processors crashed via [`ThreadedTreeClient::crash_worker`].
    #[must_use]
    pub fn crashed_workers(&self) -> Vec<ProcessorId> {
        self.crashed
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .map(|(i, _)| ProcessorId::new(i))
            .collect()
    }

    fn check_peer(&self, p: ProcessorId) -> Result<(), NetError> {
        if self.shut_down {
            return Err(NetError::ShutDown);
        }
        if p.index() >= self.processors() {
            return Err(NetError::UnknownProcessor {
                index: p.index(),
                processors: self.processors(),
            });
        }
        if self.crashed[p.index()] {
            return Err(NetError::PeerLost { peer: p.index() });
        }
        Ok(())
    }

    /// The bounded retry/backoff loop shared by [`invoke`] and
    /// [`invoke_stale`]: send, await the matching reply under a per
    /// attempt deadline, resend with the same op sequence on timeout.
    ///
    /// [`invoke`]: ThreadedTreeClient::invoke
    /// [`invoke_stale`]: ThreadedTreeClient::invoke_stale
    fn drive(
        &mut self,
        target: ProcessorId,
        op_seq: u64,
        make_msg: impl Fn(u64) -> NetMsg<O>,
    ) -> Result<O::Response, NetError> {
        let started = Instant::now();
        let mut attempts = 0u32;
        let resp = 'attempts: loop {
            if attempts == SEND_ATTEMPTS {
                // Let any half-finished cascade drain before reporting,
                // so the client stays usable after the error.
                self.wait_quiescent(QUIESCENCE_TIMEOUT);
                return Err(NetError::Timeout {
                    waited_ms: started.elapsed().as_millis() as u64,
                    attempts,
                });
            }
            attempts += 1;
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            if self.peers[target.index()].send(make_msg(op_seq)).is_err() {
                self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                return Err(NetError::PeerLost { peer: target.index() });
            }
            let deadline = Instant::now() + BASE_TIMEOUT * attempts;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    continue 'attempts;
                }
                match self.results.recv_timeout(deadline - now) {
                    Ok((seq, resp)) if seq == op_seq => break 'attempts resp,
                    // A stale reply from an attempt that already timed
                    // out (or a previous timed-out operation): discard.
                    Ok(_) => {}
                    Err(RecvTimeoutError::Timeout) => continue 'attempts,
                    Err(RecvTimeoutError::Disconnected) => return Err(NetError::ShutDown),
                }
            }
        };
        // Quiescence of any retirement cascade, per the paper's "enough
        // time elapses" assumption.
        if !self.wait_quiescent(QUIESCENCE_TIMEOUT) {
            return Err(NetError::Timeout {
                waited_ms: started.elapsed().as_millis() as u64,
                attempts,
            });
        }
        Ok(resp)
    }

    /// Spins until `in_flight` reaches zero or `deadline` elapses;
    /// returns whether quiescence was observed.
    fn wait_quiescent(&self, deadline: Duration) -> bool {
        let started = Instant::now();
        let mut spins = 0u32;
        while self.shared.in_flight.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
                if started.elapsed() >= deadline {
                    return false;
                }
            }
            std::hint::spin_loop();
        }
        true
    }

    /// Per-processor message loads (sent + received), snapshot.
    #[must_use]
    pub fn loads(&self) -> Vec<u64> {
        (0..self.processors())
            .map(|i| {
                self.shared.sent[i].load(Ordering::Relaxed)
                    + self.shared.received[i].load(Ordering::Relaxed)
            })
            .collect()
    }

    /// The bottleneck load.
    #[must_use]
    pub fn bottleneck(&self) -> u64 {
        self.loads().into_iter().max().unwrap_or(0)
    }

    /// Total retirements across the run.
    #[must_use]
    pub fn retirements(&self) -> u64 {
        self.shared.retirements.load(Ordering::Relaxed)
    }

    /// Messages that arrived at a retired worker and were forwarded to
    /// its pool successor by the retirement shim.
    #[must_use]
    pub fn shim_forwards(&self) -> u64 {
        self.shared.shim_forwards.load(Ordering::Relaxed)
    }

    /// Messages dropped because their destination thread was gone or a
    /// crashed processor discarded them.
    #[must_use]
    pub fn dead_letters(&self) -> u64 {
        self.shared.dead_letters.load(Ordering::Relaxed)
    }

    /// Snapshots every worker's engine fingerprint, in processor order.
    ///
    /// Only meaningful at quiescence (between operations): the driver
    /// waits for the cascade to drain after each call, so calling this
    /// from the driving thread observes a stable state. Crashed workers
    /// answer too — their fingerprint is that of the reset engine, which
    /// together with [`ThreadedTreeClient::crashed_workers`] matches the
    /// model checker's `combined_fingerprint` convention.
    ///
    /// # Errors
    ///
    /// [`NetError::ShutDown`] after shutdown; [`NetError::Timeout`] if a
    /// worker never answers (only possible if its thread died).
    pub fn engine_fingerprints(&self) -> Result<Vec<u64>, NetError> {
        if self.shut_down {
            return Err(NetError::ShutDown);
        }
        let (tx, rx) = unbounded();
        let mut expected = 0usize;
        for peer in self.peers.iter() {
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            if peer.send(NetMsg::Fingerprint { reply: tx.clone() }).is_err() {
                self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            } else {
                expected += 1;
            }
        }
        if expected < self.processors() {
            return Err(NetError::Timeout { waited_ms: 0, attempts: 0 });
        }
        let mut fps = vec![0u64; self.processors()];
        for _ in 0..expected {
            let (index, fp) = rx
                .recv_timeout(QUIESCENCE_TIMEOUT)
                .map_err(|_| NetError::Timeout { waited_ms: 0, attempts: 0 })?;
            fps[index] = fp;
        }
        Ok(fps)
    }

    /// The tree topology backing this network.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Stops every worker thread and joins them.
    ///
    /// # Errors
    ///
    /// [`NetError::Spawn`] if a worker thread panicked.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        if self.shut_down {
            return Ok(());
        }
        self.shut_down = true;
        for tx in self.peers.iter() {
            let _ = tx.send(NetMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            handle.join().map_err(|_| NetError::Spawn("worker thread panicked".into()))?;
        }
        Ok(())
    }
}

impl<O: RootObject> Drop for ThreadedTreeClient<O> {
    fn drop(&mut self) {
        if !self.shut_down {
            self.shut_down = true;
            for tx in self.peers.iter() {
                let _ = tx.send(NetMsg::Shutdown);
            }
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// The retirement-tree counter running on real OS threads.
///
/// # Examples
///
/// ```
/// use distctr_net::ThreadedTreeCounter;
/// use distctr_sim::ProcessorId;
///
/// # fn main() -> Result<(), distctr_net::NetError> {
/// let mut counter = ThreadedTreeCounter::new(8)?; // 8 threads, k = 2
/// assert_eq!(counter.inc(ProcessorId::new(3))?, 0);
/// assert_eq!(counter.inc(ProcessorId::new(5))?, 1);
/// counter.shutdown()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ThreadedTreeCounter {
    client: ThreadedTreeClient<CounterObject>,
}

impl ThreadedTreeCounter {
    /// Spawns one thread per processor for a tree of at least `n`
    /// processors (rounded up to `k^(k+1)`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::new`].
    pub fn new(n: usize) -> Result<Self, NetError> {
        Ok(ThreadedTreeCounter { client: ThreadedTreeClient::new(n, CounterObject::new())? })
    }

    /// Like [`ThreadedTreeCounter::new`], but with an explicit root
    /// reply-cache capacity; see
    /// [`ThreadedTreeClient::with_reply_cache`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::with_reply_cache`].
    pub fn with_reply_cache(n: usize, reply_cache_cap: usize) -> Result<Self, NetError> {
        Ok(ThreadedTreeCounter {
            client: ThreadedTreeClient::with_reply_cache(n, CounterObject::new(), reply_cache_cap)?,
        })
    }

    /// Reserves the next op sequence for [`ThreadedTreeCounter::inc_reserved`];
    /// see [`ThreadedTreeClient::reserve_op`].
    pub fn reserve_op(&mut self) -> u64 {
        self.client.reserve_op()
    }

    /// Executes one `inc` under a reserved op sequence. Re-driving the
    /// same sequence (a retry whose original did land) is answered from
    /// the root's reply cache without incrementing again.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::invoke`].
    pub fn inc_reserved(&mut self, initiator: ProcessorId, op_seq: u64) -> Result<u64, NetError> {
        self.client.invoke_reserved(initiator, op_seq, ())
    }

    /// Executes a batch of `count` incs as one tree traversal under a
    /// reserved op sequence, returning the start of the batch's range
    /// `[first, first + count)`; see
    /// [`ThreadedTreeClient::invoke_batch_reserved`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::invoke`].
    pub fn inc_batch_reserved(
        &mut self,
        initiator: ProcessorId,
        op_seq: u64,
        count: u64,
    ) -> Result<u64, NetError> {
        self.client.invoke_batch_reserved(initiator, op_seq, count, ())
    }

    /// Executes a batch of `count` incs as one traversal with a fresh
    /// internal sequence, returning the range start.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::invoke`].
    pub fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, NetError> {
        let op_seq = self.client.reserve_op();
        self.inc_batch_reserved(initiator, op_seq, count)
    }

    /// Number of processors (= threads).
    #[must_use]
    pub fn processors(&self) -> usize {
        self.client.processors()
    }

    /// The tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.client.order()
    }

    /// Executes one `inc` initiated by `initiator`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::invoke`].
    pub fn inc(&mut self, initiator: ProcessorId) -> Result<u64, NetError> {
        self.client.invoke(initiator, ())
    }

    /// Per-processor message loads (sent + received), snapshot.
    #[must_use]
    pub fn loads(&self) -> Vec<u64> {
        self.client.loads()
    }

    /// The bottleneck load.
    #[must_use]
    pub fn bottleneck(&self) -> u64 {
        self.client.bottleneck()
    }

    /// Total retirements across the run.
    #[must_use]
    pub fn retirements(&self) -> u64 {
        self.client.retirements()
    }

    /// Crashes one worker thread; see
    /// [`ThreadedTreeClient::crash_worker`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::crash_worker`].
    pub fn crash_worker(&mut self, p: ProcessorId) -> Result<(), NetError> {
        self.client.crash_worker(p)
    }

    /// Processors crashed so far.
    #[must_use]
    pub fn crashed_workers(&self) -> Vec<ProcessorId> {
        self.client.crashed_workers()
    }

    /// Messages forwarded by the retirement shim.
    #[must_use]
    pub fn shim_forwards(&self) -> u64 {
        self.client.shim_forwards()
    }

    /// Messages dropped at crashed or vanished destinations.
    #[must_use]
    pub fn dead_letters(&self) -> u64 {
        self.client.dead_letters()
    }

    /// Snapshots every worker's engine fingerprint; see
    /// [`ThreadedTreeClient::engine_fingerprints`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::engine_fingerprints`].
    pub fn engine_fingerprints(&self) -> Result<Vec<u64>, NetError> {
        self.client.engine_fingerprints()
    }

    /// Stops every worker thread and joins them.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ThreadedTreeClient::shutdown`].
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        self.client.shutdown()
    }
}

impl CounterBackend for ThreadedTreeCounter {
    type Error = NetError;

    fn processors(&self) -> usize {
        ThreadedTreeCounter::processors(self)
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error> {
        ThreadedTreeCounter::inc(self, initiator)
    }

    fn reserve(&mut self) -> Option<u64> {
        Some(self.reserve_op())
    }

    fn inc_ticketed(&mut self, initiator: ProcessorId, ticket: u64) -> Result<u64, Self::Error> {
        self.inc_reserved(initiator, ticket)
    }

    fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, Self::Error> {
        ThreadedTreeCounter::inc_batch(self, initiator, count)
    }

    fn inc_batch_ticketed(
        &mut self,
        initiator: ProcessorId,
        ticket: u64,
        count: u64,
    ) -> Result<u64, Self::Error> {
        self.inc_batch_reserved(initiator, ticket, count)
    }

    fn bottleneck(&self) -> u64 {
        ThreadedTreeCounter::bottleneck(self)
    }

    fn retirements(&self) -> u64 {
        ThreadedTreeCounter::retirements(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sequentially_and_shuts_down() {
        let mut c = ThreadedTreeCounter::new(8).expect("8 threads");
        assert_eq!(c.processors(), 8);
        assert_eq!(c.order(), 2);
        for i in 0..8 {
            let v = c.inc(ProcessorId::new(i)).expect("inc");
            assert_eq!(v, i as u64);
        }
        assert!(c.retirements() > 0, "retirement really happened across threads");
        c.shutdown().expect("clean shutdown");
        assert!(matches!(c.inc(ProcessorId::new(0)), Err(NetError::ShutDown)));
    }

    #[test]
    fn bottleneck_is_big_o_of_k() {
        let mut c = ThreadedTreeCounter::new(81).expect("81 threads");
        for i in 0..81 {
            c.inc(ProcessorId::new(i)).expect("inc");
        }
        let b = c.bottleneck();
        assert!(b >= 3, "lower bound k = 3: {b}");
        assert!(b <= 20 * 3, "O(k) bound: {b}");
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(ThreadedTreeCounter::new(0), Err(NetError::Order(_))));
        let mut c = ThreadedTreeCounter::new(8).expect("counter");
        assert!(matches!(c.inc(ProcessorId::new(99)), Err(NetError::UnknownProcessor { .. })));
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn rounds_up_like_the_simulator() {
        let mut c = ThreadedTreeCounter::new(50).expect("counter");
        assert_eq!(c.processors(), 81);
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn crashed_initiator_is_peer_lost() {
        let mut c = ThreadedTreeCounter::new(8).expect("counter");
        c.crash_worker(ProcessorId::new(3)).expect("crash");
        assert_eq!(c.crashed_workers(), vec![ProcessorId::new(3)]);
        assert!(matches!(c.inc(ProcessorId::new(3)), Err(NetError::PeerLost { peer: 3 })));
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn a_crashed_path_times_out_but_the_rest_keeps_counting() {
        let mut c = ThreadedTreeCounter::new(8).expect("counter");
        let topo = self::topo_of(&c);
        // Pick a leaf-parent worker to kill whose processor serves no
        // node on some other initiator's path to the root, so exactly
        // one subtree degrades.
        let path_workers = |i: u64| -> Vec<ProcessorId> {
            let mut node = Some(topo.leaf_parent(i));
            let mut ws = Vec::new();
            while let Some(n) = node {
                ws.push(topo.initial_worker(n));
                node = topo.parent(n);
            }
            ws
        };
        let (victim, crash_target, survivor) = (0u64..8)
            .flat_map(|a| (0u64..8).map(move |b| (a, b)))
            .find_map(|(a, b)| {
                let target = topo.initial_worker(topo.leaf_parent(a));
                let clear = a != b
                    && ProcessorId::new(b as usize) != target
                    && !path_workers(b).contains(&target);
                clear.then_some((a, target, b))
            })
            .expect("some subtree is independent of another's leaf parent");
        c.crash_worker(crash_target).expect("crash");
        // The crashed subtree degrades to a bounded timeout...
        match c.inc(ProcessorId::new(victim as usize)) {
            Err(NetError::Timeout { attempts, .. }) => assert_eq!(attempts, SEND_ATTEMPTS),
            other => panic!("expected a timeout, got {other:?}"),
        }
        assert!(c.dead_letters() >= u64::from(SEND_ATTEMPTS), "black-holed applies");
        // ...while the rest of the network keeps counting: the crashed
        // operation never reached the root, so the sequence is intact.
        assert_eq!(c.inc(ProcessorId::new(survivor as usize)).expect("inc"), 0);
        assert_eq!(c.inc(ProcessorId::new(survivor as usize)).expect("inc"), 1);
        c.shutdown().expect("shutdown");
    }

    fn topo_of(c: &ThreadedTreeCounter) -> Arc<Topology> {
        Arc::new(Topology::new(c.order()).expect("same order builds"))
    }

    #[test]
    fn reserved_retry_is_exactly_once() {
        let mut c = ThreadedTreeCounter::with_reply_cache(8, 64).expect("counter");
        let seq = c.reserve_op();
        let first = c.inc_reserved(ProcessorId::new(2), seq).expect("inc");
        // Unrelated traffic lands in between, then the "retry" re-drives
        // the same sequence: the reply cache must answer with the
        // original value and the count must not advance for it.
        let between = c.inc(ProcessorId::new(5)).expect("inc");
        let retried = c.inc_reserved(ProcessorId::new(2), seq).expect("retry");
        assert_eq!(first, 0);
        assert_eq!(between, 1);
        assert_eq!(retried, 0, "retry answered from the reply cache");
        assert_eq!(c.inc(ProcessorId::new(7)).expect("inc"), 2, "nothing double-counted");
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn zero_reply_cache_rejected() {
        assert!(matches!(ThreadedTreeCounter::with_reply_cache(8, 0), Err(NetError::Order(_))));
    }

    #[test]
    fn backend_trait_reserves_real_tickets() {
        use distctr_core::CounterBackend as _;
        let mut c = ThreadedTreeCounter::new(8).expect("counter");
        let t = c.reserve().expect("threaded backend hands out tickets");
        assert_eq!(c.inc_ticketed(ProcessorId::new(0), t).expect("inc"), 0);
        assert_eq!(c.inc_ticketed(ProcessorId::new(0), t).expect("retry"), 0);
        assert_eq!(c.inc(ProcessorId::new(1)).expect("inc"), 1);
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn batches_share_one_traversal_and_partition_the_range() {
        let mut c = ThreadedTreeCounter::with_reply_cache(8, 64).expect("counter");
        assert_eq!(c.inc(ProcessorId::new(0)).expect("inc"), 0);
        let loads_before = c.loads();
        let first = c.inc_batch(ProcessorId::new(1), 10).expect("batch");
        assert_eq!(first, 1, "the batch owns [1, 11)");
        let loads_after = c.loads();
        let unit_cost: u64 = loads_after.iter().zip(&loads_before).map(|(a, b)| a - b).sum();
        // One traversal (plus any retirement traffic), not 10: far less
        // than 10 unit climbs would cost.
        assert!(unit_cost < 20, "a batch of 10 moved {unit_cost} messages, not ~10 traversals");
        assert_eq!(c.inc(ProcessorId::new(2)).expect("inc"), 11, "range fully consumed");
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn batch_retry_under_one_ticket_returns_the_same_range() {
        use distctr_core::CounterBackend as _;
        let mut c = ThreadedTreeCounter::with_reply_cache(8, 64).expect("counter");
        let t = c.reserve().expect("ticket");
        assert_eq!(c.inc_batch_ticketed(ProcessorId::new(0), t, 4).expect("batch"), 0);
        let between = CounterBackend::inc(&mut c, ProcessorId::new(5)).expect("inc");
        assert_eq!(between, 4, "the batch consumed [0, 4)");
        assert_eq!(
            c.inc_batch_ticketed(ProcessorId::new(0), t, 4).expect("retry"),
            0,
            "the retried batch owns the same range"
        );
        assert_eq!(CounterBackend::inc(&mut c, ProcessorId::new(7)).expect("inc"), 5);
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let mut c = ThreadedTreeCounter::new(8).expect("counter");
        c.inc(ProcessorId::new(0)).expect("inc");
        drop(c); // must not hang or panic
    }

    #[test]
    fn generic_client_hosts_a_priority_queue_on_threads() {
        use distctr_core::object::{PqRequest, PqResponse, PriorityQueueObject};
        let mut pq = ThreadedTreeClient::new(8, PriorityQueueObject::new()).expect("threads");
        for (i, key) in [9u64, 2, 7].into_iter().enumerate() {
            let resp = pq.invoke(ProcessorId::new(i), PqRequest::Insert(key)).expect("insert");
            assert_eq!(resp, PqResponse::Inserted { len: i as u64 + 1 });
        }
        assert_eq!(
            pq.invoke(ProcessorId::new(5), PqRequest::ExtractMin).expect("extract"),
            PqResponse::Min(Some(2)),
            "the heap migrated with root retirements and still orders keys"
        );
        pq.shutdown().expect("shutdown");
    }

    #[test]
    fn generic_client_hosts_a_max_register_on_threads() {
        use distctr_core::MaxRegisterObject;
        let mut reg = ThreadedTreeClient::new(8, MaxRegisterObject::new()).expect("threads");
        assert_eq!(reg.invoke(ProcessorId::new(0), 5).expect("fetch_max"), 0);
        assert_eq!(reg.invoke(ProcessorId::new(3), 2).expect("fetch_max"), 5);
        assert_eq!(reg.invoke(ProcessorId::new(7), 9).expect("fetch_max"), 5);
        reg.shutdown().expect("shutdown");
    }
}
