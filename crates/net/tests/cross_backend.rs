//! Cross-backend differential tests: the threaded counter must exhibit
//! the same observable behaviour as the simulated one.

use distctr_core::TreeCounter;
use distctr_net::ThreadedTreeCounter;
use distctr_sim::{Counter, ProcessorId, TraceMode};

#[test]
fn threaded_and_simulated_backends_agree_on_values() {
    let n = 81usize;
    let mut sim = TreeCounter::builder(n)
        .expect("builder")
        .trace(TraceMode::Off)
        .build()
        .expect("sim counter");
    let mut threads = ThreadedTreeCounter::new(n).expect("threaded counter");
    assert_eq!(sim.processors(), threads.processors());

    // Same deterministic (but non-trivial) initiator order on both.
    let order: Vec<usize> = (0..n).map(|i| (i * 37) % n).collect();
    {
        let mut seen = vec![false; n];
        order.iter().for_each(|&p| seen[p] = true);
        assert!(seen.iter().all(|&b| b), "order is a permutation");
    }
    for &p in &order {
        let sim_value = sim.inc(ProcessorId::new(p)).expect("sim inc").value;
        let thread_value = threads.inc(ProcessorId::new(p)).expect("threaded inc");
        assert_eq!(sim_value, thread_value, "initiator P{p}");
    }
    threads.shutdown().expect("shutdown");
}

#[test]
fn threaded_loads_match_the_simulator_up_to_shim_traffic() {
    // The protocol messages are identical across backends; the only
    // divergence is *handshake* (shim-forward) traffic, because the two
    // backends model routing staleness differently: the simulator's
    // senders read the node's worker field (stale only while a handoff
    // is in flight), while threads rely on their own NewWorker-updated
    // routing tables. The paper prices this as "a constant number of
    // extra messages"; we assert exactly that — per-processor loads agree
    // within a small additive constant.
    let n = 81usize;
    let mut sim = TreeCounter::builder(n)
        .expect("builder")
        .trace(TraceMode::Off)
        .build()
        .expect("sim counter");
    let mut threads = ThreadedTreeCounter::new(n).expect("threaded counter");
    for p in 0..n {
        sim.inc(ProcessorId::new(p)).expect("sim inc");
        threads.inc(ProcessorId::new(p)).expect("threaded inc");
    }
    let sim_loads = sim.loads().to_vec();
    let thread_loads = threads.loads();
    let mut total_diff = 0u64;
    for (i, (&a, &b)) in sim_loads.iter().zip(&thread_loads).enumerate() {
        let diff = a.abs_diff(b);
        assert!(diff <= 4, "P{i}: sim {a} vs threads {b} differ by more than shim slack");
        total_diff += diff;
    }
    assert!(
        total_diff <= 2 * sim.audit().shim_forwards().max(4) * 2 + 8,
        "aggregate divergence {total_diff} stays within O(shim) messages"
    );
    // The headline quantity agrees tightly.
    let sim_b = sim.loads().max_load();
    let thread_b = threads.bottleneck();
    assert!(sim_b.abs_diff(thread_b) <= 4, "bottlenecks {sim_b} vs {thread_b}");
    threads.shutdown().expect("shutdown");
}

#[test]
fn threaded_retirement_counts_match_the_audit() {
    let n = 81usize;
    let mut sim = TreeCounter::new(n).expect("sim counter");
    let mut threads = ThreadedTreeCounter::new(n).expect("threaded counter");
    for p in 0..n {
        sim.inc(ProcessorId::new(p)).expect("sim inc");
        threads.inc(ProcessorId::new(p)).expect("threaded inc");
    }
    let sim_retirements: u64 = sim.audit().retirements_by_level().iter().sum();
    assert_eq!(sim_retirements, threads.retirements());
    threads.shutdown().expect("shutdown");
}

#[test]
#[ignore = "spawns 1024 OS threads; run with --ignored --release"]
fn threaded_backend_at_k4_scale() {
    let n = 1024usize;
    let mut threads = ThreadedTreeCounter::new(n).expect("1024 threads");
    for p in 0..n {
        let v = threads.inc(ProcessorId::new(p)).expect("inc");
        assert_eq!(v, p as u64);
    }
    let b = threads.bottleneck();
    assert!(b >= 4, "k = 4 lower bound");
    assert!(b <= 20 * 4, "O(k) bound on 1024 real threads: {b}");
    threads.shutdown().expect("shutdown");
}

#[test]
fn stale_sends_to_a_retired_worker_are_forwarded_and_counted() {
    use distctr_core::{CounterObject, NodeRef};
    use distctr_net::ThreadedTreeClient;

    let mut c = ThreadedTreeClient::new(8, CounterObject::new()).expect("client");
    // One full round of ops ages the root by 2 each (it sits on every
    // path), so it has certainly retired from its initial worker.
    for i in 0..8u64 {
        let v = c.invoke(ProcessorId::new(i as usize), ()).expect("inc");
        assert_eq!(v, i);
    }
    assert!(c.retirements() >= 1, "the root retired during the round");
    let old_root_worker = c.topology().initial_worker(NodeRef::ROOT);
    let forwards_before = c.shim_forwards();
    let load_before = c.loads()[old_root_worker.index()];

    // A peer with a stale routing view addresses the root's Apply to the
    // *retired* worker. The retirement shim must forward it to the pool
    // successor and the operation must still count: the returned value
    // stays exactly in sequence.
    let v = c
        .invoke_stale(old_root_worker, NodeRef::ROOT, ProcessorId::new(7), ())
        .expect("stale invoke");
    assert_eq!(v, 8, "the forwarded apply is counted exactly once");
    assert!(c.shim_forwards() > forwards_before, "the shim forwarded the stale apply");
    // The retired worker is charged for the hop — one receive plus one
    // forwarded send — which is exactly how the simulator's audit prices
    // shim traffic (`audit().shim_forwards()` over there).
    assert!(
        c.loads()[old_root_worker.index()] >= load_before + 2,
        "forwarding hops count toward the retired worker's load"
    );
    // The network is still healthy afterwards.
    assert_eq!(c.invoke(ProcessorId::new(0), ()).expect("inc"), 9);
    c.shutdown().expect("shutdown");
}

#[test]
fn a_crashed_worker_degrades_one_subtree_across_backends() {
    // Differential fault injection: crash the same leaf-parent worker in
    // both backends; in both, the untouched subtree keeps the exact
    // value sequence (the dead subtree's operations never reach the
    // root object).
    let n = 81usize;
    let mut sim = TreeCounter::builder(n)
        .expect("builder")
        .trace(TraceMode::Off)
        .faults(distctr_sim::FaultPlan::new(0))
        .build()
        .expect("sim counter");
    let mut threads = ThreadedTreeCounter::new(n).expect("threaded counter");
    // Processor 80 works for the last level-3 node, which serves leaves
    // 77..80 and nothing else (level-k pools are singletons).
    let crash_target = ProcessorId::new(80);
    sim.crash(crash_target);
    threads.crash_worker(crash_target).expect("crash");
    // Both backends refuse the dead initiator outright.
    assert!(sim.inc_fault_tolerant(crash_target).is_err());
    assert!(threads.inc(crash_target).is_err());
    // Both keep exact sequential values for initiators outside the dead
    // subtree.
    for (expected, p) in (0..40usize).enumerate() {
        let sim_value = sim.inc_fault_tolerant(ProcessorId::new(p)).expect("sim inc").value;
        let thread_value = threads.inc(ProcessorId::new(p)).expect("threaded inc");
        assert_eq!(sim_value, expected as u64, "sim initiator P{p}");
        assert_eq!(thread_value, expected as u64, "threaded initiator P{p}");
    }
    threads.shutdown().expect("shutdown");
}

#[test]
fn repeated_runs_are_deterministic_despite_real_threads() {
    // Sequential driving fully serializes the protocol, so even with OS
    // scheduling in play, observable outcomes repeat run to run.
    let run = || {
        let mut c = ThreadedTreeCounter::new(8).expect("counter");
        let values: Vec<u64> = (0..8).map(|i| c.inc(ProcessorId::new(i)).expect("inc")).collect();
        let loads = c.loads();
        c.shutdown().expect("shutdown");
        (values, loads)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
