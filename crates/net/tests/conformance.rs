//! Cross-driver conformance suite for the shared protocol engine.
//!
//! The simulator and the threaded backend are now thin drivers around
//! the *same* sans-io [`distctr_core::engine::NodeEngine`], so their
//! observable behaviour must not merely agree within slack — it must be
//! **identical**: the same workload produces the same value sequence,
//! the same per-processor message counts, and the same retirement and
//! shim tallies, across a grid of tree orders and under fault injection.
//! Any future edit that forks the two code paths again fails here first.

use distctr_check::{combined_fingerprint, Budget, CheckConfig, Checker};
use distctr_core::engine::{EngineConfig, PoolPolicy};
use distctr_core::{kmath, Topology, TreeCounter};
use distctr_net::{ThreadedTreeCounter, DEFAULT_REPLY_CACHE};
use distctr_sim::{Counter, FaultPlan, ProcessorId, TraceMode};

/// Observables of one full round through one backend.
#[derive(Debug, PartialEq)]
struct RoundObservables {
    values: Vec<u64>,
    loads: Vec<u64>,
    retirements: u64,
    shim_forwards: u64,
}

/// One full round of `n` operations under a seeded permutation, driven
/// through both backends.
fn drive_both(n: usize, seed: u64) -> (RoundObservables, RoundObservables) {
    let mut sim = TreeCounter::builder(n)
        .expect("builder")
        .trace(TraceMode::Off)
        .build()
        .expect("sim counter");
    let mut threads = ThreadedTreeCounter::new(n).expect("threaded counter");
    assert_eq!(sim.processors(), threads.processors());
    let n = sim.processors();

    // A seeded permutation of initiators: x -> (a*x + b) mod n with a
    // coprime to n covers every processor exactly once.
    let a = (2 * seed + 7) | 1;
    let order: Vec<usize> = (0..n).map(|i| ((a as usize * i) + seed as usize) % n).collect();
    let mut seen = vec![false; n];
    order.iter().for_each(|&p| seen[p] = true);
    assert!(seen.iter().all(|&b| b), "seed {seed}: order is a permutation of 0..{n}");

    let mut sim_values = Vec::with_capacity(n);
    let mut thread_values = Vec::with_capacity(n);
    for &p in &order {
        sim_values.push(sim.inc(ProcessorId::new(p)).expect("sim inc").value);
        thread_values.push(threads.inc(ProcessorId::new(p)).expect("threaded inc"));
    }
    let out = (
        RoundObservables {
            values: sim_values,
            loads: sim.loads().to_vec(),
            retirements: sim.audit().retirements_by_level().iter().sum(),
            shim_forwards: sim.audit().shim_forwards(),
        },
        RoundObservables {
            values: thread_values,
            loads: threads.loads(),
            retirements: threads.retirements(),
            shim_forwards: threads.shim_forwards(),
        },
    );
    threads.shutdown().expect("shutdown");
    out
}

#[test]
fn both_drivers_report_identical_values_loads_and_retirements() {
    // Property-style over a small grid: every supported thread-scale
    // order, several workload permutations each.
    for n in [8usize, 81] {
        for seed in [0u64, 3, 11] {
            let (sim, threads) = drive_both(n, seed);
            assert_eq!(
                sim.values,
                (0..sim.values.len() as u64).collect::<Vec<_>>(),
                "n={n} seed={seed}: values are exactly sequential"
            );
            for (p, (&s, &t)) in sim.loads.iter().zip(&threads.loads).enumerate() {
                assert_eq!(s, t, "n={n} seed={seed}: P{p} message count (sim {s}, threads {t})");
            }
            assert_eq!(sim, threads, "n={n} seed={seed}: observables diverge");
        }
    }
}

#[test]
fn both_drivers_agree_under_a_crash_fault_plan() {
    // Crash the same level-k singleton worker in both backends, then
    // drive operations whose paths avoid the dead subtree: the engine
    // must produce the same values and the same per-processor counts.
    let n = 81usize;
    let mut sim = TreeCounter::builder(n)
        .expect("builder")
        .trace(TraceMode::Off)
        .faults(distctr_sim::FaultPlan::new(0))
        .build()
        .expect("sim counter");
    let mut threads = ThreadedTreeCounter::new(n).expect("threaded counter");
    let crash_target = ProcessorId::new(80);
    sim.crash(crash_target);
    threads.crash_worker(crash_target).expect("crash");

    for (expected, p) in (0..54usize).enumerate() {
        let s = sim.inc_fault_tolerant(ProcessorId::new(p)).expect("sim inc").value;
        let t = threads.inc(ProcessorId::new(p)).expect("threaded inc");
        assert_eq!(s, expected as u64, "sim initiator P{p}");
        assert_eq!(t, expected as u64, "threaded initiator P{p}");
    }
    assert_eq!(
        sim.audit().retirements_by_level().iter().sum::<u64>(),
        threads.retirements(),
        "retirement counts under the crash plan"
    );
    let sim_loads = sim.loads().to_vec();
    let thread_loads = threads.loads();
    for (p, (&s, &t)) in sim_loads.iter().zip(&thread_loads).enumerate() {
        assert_eq!(s, t, "crash plan: P{p} message count (sim {s}, threads {t})");
    }
    threads.shutdown().expect("shutdown");
}

#[test]
fn both_drivers_grant_identical_batch_ranges_under_a_crash_plan() {
    // Batched increments under the same crash: both backends must hand
    // out the *same* contiguous ranges — same starts, same partition of
    // [0, total) — and agree on per-processor message counts, so
    // batching amortizes identically across drivers.
    let n = 81usize;
    let mut sim = TreeCounter::builder(n)
        .expect("builder")
        .trace(TraceMode::Off)
        .faults(distctr_sim::FaultPlan::new(0))
        .build()
        .expect("sim counter");
    let mut threads = ThreadedTreeCounter::new(n).expect("threaded counter");
    let crash_target = ProcessorId::new(80);
    sim.crash(crash_target);
    threads.crash_worker(crash_target).expect("crash");

    // Alternate unit incs and batches away from the dead subtree; the
    // expected range starts are fully determined by the counts.
    let counts: [u64; 8] = [1, 5, 1, 12, 3, 1, 7, 2];
    let mut expected_start = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        let p = ProcessorId::new(i * 5);
        let (s, t) = if count == 1 {
            (
                sim.inc_fault_tolerant(p).expect("sim inc").value,
                threads.inc(p).expect("threaded inc"),
            )
        } else {
            (
                sim.inc_batch_fault_tolerant(p, count).expect("sim batch").value,
                threads.inc_batch(p, count).expect("threaded batch"),
            )
        };
        assert_eq!(s, expected_start, "sim range start, op {i}");
        assert_eq!(t, expected_start, "threaded range start, op {i}");
        expected_start += count;
    }
    assert_eq!(
        sim.audit().retirements_by_level().iter().sum::<u64>(),
        threads.retirements(),
        "retirement counts under the crash plan"
    );
    let sim_loads = sim.loads().to_vec();
    let thread_loads = threads.loads();
    for (p, (&s, &t)) in sim_loads.iter().zip(&thread_loads).enumerate() {
        assert_eq!(s, t, "batch crash plan: P{p} message count (sim {s}, threads {t})");
    }
    threads.shutdown().expect("shutdown");
}

/// The threaded backend's engine configuration, mirrored for the model
/// checker: the driver always dedupes retries through a bounded reply
/// cache and has no stable storage.
fn threaded_parity_engine(k: u32) -> EngineConfig {
    EngineConfig {
        threshold: Some(kmath::retirement_threshold(k)),
        pool_policy: PoolPolicy::OneShot,
        reply_cache_cap: DEFAULT_REPLY_CACHE,
        dedupe: true,
        persist: false,
    }
}

#[test]
fn threaded_final_state_is_in_the_checkers_quiescent_set() {
    // The strongest conformance statement the engines allow: the real
    // threaded run, fingerprinted engine-by-engine, lands on a protocol
    // state the model checker *also* reaches while exhausting every
    // delivery order of the same workload under the same crash plan —
    // over a matrix of tree orders and crash plans.
    for k in [2u32, 3] {
        let topo = Topology::new(k).expect("topology");
        let n = usize::try_from(topo.processors()).expect("fits");
        // Two ops whose paths stay inside the first top-level subtree,
        // away from the crash victim below.
        let initiators: Vec<usize> = vec![0, k as usize];
        // The victim serves the *last* initiator's leaf parent — on no
        // explored op's path, so both backends keep answering.
        let victim = topo.initial_worker(topo.leaf_parent(topo.processors() - 1));
        let plans =
            [FaultPlan::new(0), FaultPlan::new(0).crash(victim, 0 /* before any delivery */)];
        for plan in plans {
            let crashes = plan.crashes.len();

            // Drive the real threads.
            let mut threads = ThreadedTreeCounter::new(n).expect("threaded counter");
            for c in &plan.crashes {
                threads.crash_worker(c.processor).expect("crash");
            }
            for (expected, &p) in initiators.iter().enumerate() {
                let v = threads.inc(ProcessorId::new(p)).expect("threaded inc");
                assert_eq!(v, expected as u64, "k={k} crashes={crashes}: P{p}");
            }
            let fps = threads.engine_fingerprints().expect("fingerprints");
            let mut crashed = vec![false; n];
            for c in threads.crashed_workers() {
                crashed[c.index()] = true;
            }
            let threaded_fp = combined_fingerprint(&fps, &crashed);
            threads.shutdown().expect("shutdown");

            // Exhaust every delivery order of the same workload in the
            // checker and demand the threaded state is in its quiescent
            // set.
            let cfg = CheckConfig::new(n)
                .sequential_ops(&initiators)
                .engine(threaded_parity_engine(k))
                .faults(&plan);
            let outcome = Checker::new(cfg)
                .budget(Budget { max_transitions: 60_000, ..Budget::default() })
                .run();
            assert!(outcome.holds(), "k={k} crashes={crashes}: {:?}", outcome.violation);
            assert!(!outcome.stats.truncated, "k={k} crashes={crashes}: exploration exhausted");
            assert!(
                outcome.stats.quiescent_fingerprints.contains(&threaded_fp),
                "k={k} crashes={crashes}: threaded fingerprint {threaded_fp:#x} not among the \
                 checker's {} quiescent states",
                outcome.stats.quiescent_fingerprints.len()
            );
        }
    }
}
