//! Batched increments and flat combining at the service boundary.
//!
//! Three guarantees, observed through real loopback sockets:
//!
//! * a `BatchInc` grants a contiguous range in one round-trip, and a
//!   retry of the same request id returns the *same* range without
//!   incrementing again (exactly-once for batches);
//! * the flat-combining inc path stays exact under genuinely
//!   concurrent clients — every value 0..ops is handed out exactly
//!   once, no gaps, no duplicates;
//! * combining really combines: the hosted backend sees markedly fewer
//!   traversals' worth of messages than one-traversal-per-inc serving.

use std::collections::HashSet;

use distctr_net::ThreadedTreeCounter;
use distctr_server::{CounterServer, RemoteCounter};

#[test]
fn a_batch_inc_grants_a_contiguous_range_exactly_once() {
    let server =
        CounterServer::serve(ThreadedTreeCounter::new(8).expect("backend")).expect("serve");
    let mut client = RemoteCounter::connect(server.local_addr()).expect("connect");

    assert_eq!(client.inc().expect("inc"), 0);
    let first = client.inc_batch(10).expect("batch");
    assert_eq!(first, 1, "the batch owns [1, 11)");
    assert_eq!(client.inc().expect("inc"), 11);

    // Replaying the batch's request id (id 1: inc took 0) must be
    // answered from the dedup state with the original range.
    let replay = client.inc_batch_with_id(1, 10, None).expect("replay");
    assert_eq!(replay, first, "a retry returns the original range");
    assert_eq!(client.inc().expect("inc"), 12, "the replay did not increment");

    let stats = server.stats();
    assert_eq!(stats.ops, 13, "3 incs + 10 batched");
    assert_eq!(stats.deduped, 1);
}

#[test]
fn a_zero_count_batch_is_rejected() {
    let server =
        CounterServer::serve(ThreadedTreeCounter::new(8).expect("backend")).expect("serve");
    let mut client = RemoteCounter::connect(server.local_addr()).expect("connect");
    assert!(client.inc_batch(0).is_err());
}

#[test]
fn combining_hands_out_every_value_exactly_once_under_concurrency() {
    const CONNS: usize = 8;
    const OPS_PER_CONN: usize = 8;

    let server = CounterServer::serve_combining(ThreadedTreeCounter::new(8).expect("backend"))
        .expect("serve");
    let addr = server.local_addr();
    let handles: Vec<_> = (0..CONNS)
        .map(|_| {
            std::thread::spawn(move || -> Vec<u64> {
                let mut client = RemoteCounter::connect(addr).expect("connect");
                (0..OPS_PER_CONN).map(|_| client.inc().expect("inc")).collect()
            })
        })
        .collect();
    let mut values: Vec<u64> = handles.into_iter().flat_map(|h| h.join().expect("join")).collect();

    // Per-connection values must be strictly increasing (each client is
    // sequential), and globally the ranges partition [0, ops).
    let distinct: HashSet<u64> = values.iter().copied().collect();
    assert_eq!(distinct.len(), values.len(), "no value handed out twice");
    values.sort_unstable();
    let expected: Vec<u64> = (0..(CONNS * OPS_PER_CONN) as u64).collect();
    assert_eq!(values, expected, "combined serving stays exact");

    let stats = server.stats();
    assert_eq!(stats.ops, (CONNS * OPS_PER_CONN) as u64);
}

#[test]
fn combining_retries_after_reconnect_stay_exactly_once() {
    let server = CounterServer::serve_combining(ThreadedTreeCounter::new(8).expect("backend"))
        .expect("serve");
    let mut client = RemoteCounter::connect(server.local_addr()).expect("connect");
    let v0 = client.inc().expect("inc");
    let session = client.session();

    // Reconnect and replay the same request id: the combining round
    // recorded the slice in the session's answer table, so the retry is
    // served from dedup state, not a new traversal.
    let mut resumed = RemoteCounter::resume(server.local_addr(), session).expect("resume");
    assert_eq!(resumed.inc_with_id(0, None).expect("replay"), v0);
    assert_eq!(resumed.inc_with_id(1, None).expect("fresh"), v0 + 1);

    let stats = server.stats();
    assert_eq!(stats.ops, 2);
    assert_eq!(stats.deduped, 1);
}
