//! The readiness serving core, observed from outside the service
//! boundary: the same clients, the same wire protocol, the same
//! exactly-once story — served by one reactor thread instead of a
//! thread per connection. Every scenario here runs against
//! `serve_async`/`serve_async_combining` and asserts behavior the
//! threaded server already pinned down, plus the properties only the
//! async path has (admission under `max_conns` without a service
//! thread, torn-frame reassembly inside the reactor, combining replies
//! routed through the reply channel).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use distctr_core::TreeCounter;
use distctr_net::ThreadedTreeCounter;
use distctr_server::wire::{encode_frame_into, read_frame, write_frame};
use distctr_server::{
    run_load, run_mux, CounterServer, ErrCode, LoadConfig, MuxConfig, RemoteCounter, ServerConfig,
    WireMsg,
};

fn tree(n: usize) -> TreeCounter {
    TreeCounter::new(n).expect("tree")
}

/// Opens a raw socket and completes the Hello handshake.
fn raw_hello(addr: SocketAddr) -> (TcpStream, u64) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write_frame(&mut stream, &WireMsg::Hello { resume: None }).expect("hello");
    match read_frame(&mut stream).expect("hello reply") {
        WireMsg::HelloOk { session, .. } => (stream, session),
        other => panic!("expected HelloOk, got {other:?}"),
    }
}

#[test]
fn sequential_async_server_serves_real_clients_exactly_once() {
    let mut server = CounterServer::serve_async(tree(8)).expect("serve");
    let mut a = RemoteCounter::connect(server.local_addr()).expect("connect");
    let mut b = RemoteCounter::connect(server.local_addr()).expect("connect");
    assert_eq!(a.inc().expect("inc"), 0);
    assert_eq!(b.inc().expect("inc"), 1);
    assert_eq!(a.inc_batch(5).expect("batch"), 2, "batch grants 2..7");
    assert_eq!(b.inc().expect("inc"), 7);
    let stats = server.stats();
    assert_eq!(stats.ops, 8);
    assert_eq!(stats.connections, 2);
    server.shutdown().expect("shutdown");
}

#[test]
fn combining_async_server_is_exactly_once_under_concurrent_load() {
    let mut server = CounterServer::serve_async_combining(tree(8)).expect("serve");
    let report = run_load(server.local_addr(), &LoadConfig::closed(8, 400)).expect("load");
    assert_eq!(report.failed, 0);
    assert!(report.values_are_sequential_from(0), "exactly-once across 8 concurrent conns");
    let stats = server.stats();
    assert_eq!(stats.ops, 400);
    assert!(stats.combined_traversals > 0, "the combiner actually batched");
    assert!(stats.combined_traversals < 400, "combining coalesced at least some concurrent incs");
    server.shutdown().expect("shutdown");
}

#[test]
fn async_server_hosts_the_threaded_backend_too() {
    let backend = ThreadedTreeCounter::new(8).expect("threads");
    let mut server = CounterServer::serve_async_combining(backend).expect("serve");
    let report = run_load(server.local_addr(), &LoadConfig::closed(4, 64)).expect("load");
    assert!(report.values_are_sequential_from(0));
    server.shutdown().expect("shutdown");
}

#[test]
fn resume_and_replay_is_exactly_once_on_the_async_path() {
    let mut server = CounterServer::serve_async(tree(8)).expect("serve");
    let addr = server.local_addr();
    let mut client = RemoteCounter::connect(addr).expect("connect");
    let session = client.session();
    assert_eq!(client.inc().expect("inc"), 0);
    // The connection dies with the grant delivered; the client's
    // reconnect resumes the session and replays the same request id.
    drop(client);
    let mut resumed = RemoteCounter::resume(addr, session).expect("resume");
    assert_eq!(resumed.inc_with_id(0, None).expect("replay"), 0, "replay returns the old grant");
    assert_eq!(resumed.inc().expect("fresh"), 1, "the replay consumed nothing");
    assert_eq!(server.stats().deduped, 1);
    server.shutdown().expect("shutdown");
}

#[test]
fn a_frame_trickled_one_byte_at_a_time_is_reassembled() {
    let mut server = CounterServer::serve_async(tree(8)).expect("serve");
    let (mut stream, _) = raw_hello(server.local_addr());
    let mut frame = Vec::new();
    encode_frame_into(&WireMsg::Inc { request_id: 0, initiator: None }, &mut frame);
    // Each byte is its own TCP segment, microseconds apart: the reactor
    // sees up to `frame.len()` separate readable events, buffering the
    // torn prefix until the frame completes.
    for byte in frame {
        stream.write_all(&[byte]).expect("trickle byte");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_micros(300));
    }
    match read_frame(&mut stream).expect("reply") {
        WireMsg::IncOk { request_id: 0, value: 0 } => {}
        other => panic!("expected IncOk(0, 0), got {other:?}"),
    }
    server.shutdown().expect("shutdown");
}

#[test]
fn pipelined_requests_in_one_write_all_get_answers() {
    let mut server = CounterServer::serve_async_combining(tree(8)).expect("serve");
    let (mut stream, _) = raw_hello(server.local_addr());
    // 50 Incs in a single write: one readable event carries many
    // frames, and the replies queue behind one write buffer.
    let mut burst = Vec::new();
    for request_id in 0..50 {
        encode_frame_into(&WireMsg::Inc { request_id, initiator: None }, &mut burst);
    }
    stream.write_all(&burst).expect("burst");
    let mut values: Vec<u64> = (0..50)
        .map(|_| match read_frame(&mut stream).expect("reply") {
            WireMsg::IncOk { value, .. } => value,
            other => panic!("expected IncOk, got {other:?}"),
        })
        .collect();
    values.sort_unstable();
    assert_eq!(values, (0..50).collect::<Vec<u64>>(), "every pipelined inc got its own value");
    server.shutdown().expect("shutdown");
}

#[test]
fn garbage_after_the_handshake_gets_a_typed_error_and_the_server_survives() {
    let mut server = CounterServer::serve_async(tree(8)).expect("serve");
    let (mut stream, _) = raw_hello(server.local_addr());
    // A frame with an unknown tag: length 1, valid CRC over tag 0x7F.
    let crc = distctr_server::wire::crc32(&[0x7F]);
    stream.write_all(&1u32.to_le_bytes()).expect("len");
    stream.write_all(&crc.to_le_bytes()).expect("crc");
    stream.write_all(&[0x7F]).expect("tag");
    match read_frame(&mut stream).expect("reply") {
        WireMsg::Err { code: ErrCode::UnknownTag } => {}
        other => panic!("expected Err(UnknownTag), got {other:?}"),
    }
    // The connection is closed after the error frame...
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty());
    // ...and the server keeps serving fresh connections exactly-once.
    let mut fresh = RemoteCounter::connect(server.local_addr()).expect("fresh");
    assert_eq!(fresh.inc().expect("inc"), 0);
    assert_eq!(server.stats().wire_errors, 1);
    server.shutdown().expect("shutdown");
}

#[test]
fn an_inc_before_hello_is_a_bad_handshake() {
    let mut server = CounterServer::serve_async(tree(8)).expect("serve");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write_frame(&mut stream, &WireMsg::Inc { request_id: 0, initiator: None }).expect("inc");
    match read_frame(&mut stream).expect("reply") {
        WireMsg::Err { code: ErrCode::BadHandshake } => {}
        other => panic!("expected Err(BadHandshake), got {other:?}"),
    }
    assert_eq!(server.stats().ops, 0, "nothing was counted");
    server.shutdown().expect("shutdown");
}

#[test]
fn max_conns_sheds_with_busy_on_the_async_path() {
    let config = ServerConfig { max_conns: Some(2), ..ServerConfig::default() };
    let mut server = CounterServer::serve_async_with(tree(8), config).expect("serve");
    let addr = server.local_addr();
    let (_a, _) = raw_hello(addr);
    let (_b, _) = raw_hello(addr);
    // The third connection is answered Busy and closed, without a
    // session and without a thread.
    let mut third = TcpStream::connect(addr).expect("connect");
    third.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    match read_frame(&mut third).expect("busy frame") {
        WireMsg::Busy { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("expected Busy, got {other:?}"),
    }
    assert_eq!(server.stats().shed, 1);
    // Dropping one admitted connection frees a slot.
    drop(_a);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(mut c) = RemoteCounter::connect(addr) {
            if c.inc().is_ok() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "slot never freed after a close");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown().expect("shutdown");
}

#[test]
fn max_inflight_sheds_excess_pipelined_incs_without_losing_count() {
    let config = ServerConfig { max_inflight_per_conn: Some(4), ..ServerConfig::default() };
    let mut server = CounterServer::serve_async_combining_with(tree(8), config).expect("serve");
    let (mut stream, _) = raw_hello(server.local_addr());
    let mut burst = Vec::new();
    for request_id in 0..64 {
        encode_frame_into(&WireMsg::Inc { request_id, initiator: None }, &mut burst);
    }
    stream.write_all(&burst).expect("burst");
    let mut acked = 0u64;
    let mut busied = 0u64;
    for _ in 0..64 {
        match read_frame(&mut stream).expect("reply") {
            WireMsg::IncOk { .. } => acked += 1,
            WireMsg::Busy { .. } => busied += 1,
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(acked + busied, 64, "every request got exactly one answer");
    assert!(busied > 0, "the cap actually shed");
    assert_eq!(server.stats().ops, acked, "shed requests consumed nothing");
    server.shutdown().expect("shutdown");
}

#[test]
fn drain_completes_buffered_work_then_refuses_new_connections() {
    let mut server = CounterServer::serve_async_combining(tree(8)).expect("serve");
    let addr = server.local_addr();
    let (mut stream, _) = raw_hello(addr);
    // Work already on the wire when drain begins must still be served.
    let mut burst = Vec::new();
    for request_id in 0..20 {
        encode_frame_into(&WireMsg::Inc { request_id, initiator: None }, &mut burst);
    }
    stream.write_all(&burst).expect("burst");
    let mut values: Vec<u64> = (0..20)
        .map(|_| match read_frame(&mut stream).expect("reply") {
            WireMsg::IncOk { value, .. } => value,
            other => panic!("expected IncOk, got {other:?}"),
        })
        .collect();
    server.drain().expect("drain");
    values.sort_unstable();
    assert_eq!(values, (0..20).collect::<Vec<u64>>(), "drain lost an acked value");
    // The drained connection was closed at a frame boundary.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty(), "no torn bytes after the drain close");
    assert!(RemoteCounter::connect(addr).is_err(), "a drained server admits nobody");
}

#[test]
fn stats_and_reads_are_served_inline_by_the_reactor() {
    let mut server = CounterServer::serve_async(tree(8)).expect("serve");
    let mut client = RemoteCounter::connect(server.local_addr()).expect("connect");
    assert_eq!(client.inc().expect("inc"), 0);
    let stats = client.stats().expect("stats over the wire");
    assert_eq!(stats.ops, 1);
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.accept_errors, 0);
    // A single-counter backend rejects reads with NoSuchKey, same as
    // the threaded path.
    assert!(client.read(0).is_err());
    server.shutdown().expect("shutdown");
}

#[test]
fn the_mux_driver_sustains_hundreds_of_conns_on_one_thread_each_side() {
    // A smoke-sized C10k shape: 256 concurrent connections, one client
    // thread, one reactor thread. (The full 10k run is experiment E27,
    // which splits client and server across processes to stay inside
    // RLIMIT_NOFILE.)
    let mut server = CounterServer::serve_async_combining(tree(8)).expect("serve");
    let cfg = MuxConfig::open(256, 2048, 20_000.0).with_ramp(Duration::from_millis(100));
    let report = run_mux(server.local_addr(), &cfg).expect("mux");
    assert_eq!(report.failed, 0, "no op failed at smoke load");
    assert!(report.values_are_sequential_from(0), "exactly-once at 256 conns");
    assert_eq!(report.per_conn.len(), 256);
    let stats = server.stats();
    assert_eq!(stats.ops, 2048);
    assert_eq!(stats.connections, 256);
    server.shutdown().expect("shutdown");
}
