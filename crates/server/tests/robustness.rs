//! Codec and session robustness at the socket boundary: truncated
//! frames, oversized length prefixes, garbage tags and mid-operation
//! disconnects each produce a *typed* error — and never wedge or crash
//! the server, which keeps serving subsequent connections exactly-once.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use distctr_core::TreeCounter;
use distctr_net::ThreadedTreeCounter;
use distctr_server::wire::{frame_raw, read_frame, write_frame};
use distctr_server::{CounterServer, ErrCode, RemoteCounter, WireMsg, MAX_FRAME};

/// Opens a raw socket and completes the Hello handshake, returning the
/// stream and the session id.
fn raw_hello(addr: SocketAddr) -> (TcpStream, u64) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write_frame(&mut stream, &WireMsg::Hello { resume: None }).expect("hello");
    match read_frame(&mut stream).expect("hello reply") {
        WireMsg::HelloOk { session, .. } => (stream, session),
        other => panic!("expected HelloOk, got {other:?}"),
    }
}

/// Polls a server statistic until it reaches `want`.
fn await_stat<B: distctr_core::CounterBackend + Send + 'static>(
    server: &CounterServer<B>,
    what: &str,
    stat: impl Fn(&CounterServer<B>) -> u64,
    want: u64,
) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while stat(server) < want {
        assert!(Instant::now() < deadline, "server never recorded the {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Polls the server's wire-error counter until it reaches `want`.
fn await_wire_errors<B: distctr_core::CounterBackend + Send + 'static>(
    server: &CounterServer<B>,
    want: u64,
) {
    await_stat(server, "wire error", |s| s.stats().wire_errors, want);
}

/// After any abuse, a *fresh* client must still get exact values.
fn assert_still_serving<B: distctr_core::CounterBackend + Send + 'static>(
    server: &CounterServer<B>,
    expected_next: u64,
) {
    let mut client = RemoteCounter::connect(server.local_addr()).expect("fresh connect");
    assert_eq!(client.inc().expect("fresh inc"), expected_next, "server wedged or lost count");
}

#[test]
fn truncated_frame_is_detected_and_survived() {
    let mut server = CounterServer::serve(TreeCounter::new(8).expect("sim")).expect("serve");
    let (mut stream, _) = raw_hello(server.local_addr());
    // A length prefix promising 10 bytes, followed by only 3 — then the
    // connection vanishes mid-frame.
    stream.write_all(&10u32.to_le_bytes()).expect("prefix");
    stream.write_all(&[0x02, 0x00, 0x00]).expect("partial payload");
    drop(stream);
    // The server classifies it (WireError::Truncated, distinct from a
    // clean close), counts it, and keeps serving.
    await_wire_errors(&server, 1);
    assert_still_serving(&server, 0);
    server.shutdown().expect("shutdown");
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut server = CounterServer::serve(TreeCounter::new(8).expect("sim")).expect("serve");
    let (mut stream, _) = raw_hello(server.local_addr());
    // Claim a frame far beyond MAX_FRAME; the server must answer with a
    // typed error without ever trying to buffer it.
    let huge = (MAX_FRAME + 1) * 1000;
    stream.write_all(&huge.to_le_bytes()).expect("oversized prefix");
    stream.flush().expect("flush");
    match read_frame(&mut stream).expect("error reply") {
        WireMsg::Err { code } => assert_eq!(code, ErrCode::Oversized),
        other => panic!("expected Err {{ Oversized }}, got {other:?}"),
    }
    await_wire_errors(&server, 1);
    assert_still_serving(&server, 0);
    server.shutdown().expect("shutdown");
}

#[test]
fn garbage_tag_and_malformed_payload_get_typed_errors() {
    let mut server = CounterServer::serve(TreeCounter::new(8).expect("sim")).expect("serve");

    // Unknown tag 0x7f in an otherwise well-formed frame (honest
    // length prefix and checksum, so the tag is what gets flagged).
    let (mut stream, _) = raw_hello(server.local_addr());
    stream.write_all(&frame_raw(&[0x7f])).expect("tag");
    match read_frame(&mut stream).expect("error reply") {
        WireMsg::Err { code } => assert_eq!(code, ErrCode::UnknownTag),
        other => panic!("expected Err {{ UnknownTag }}, got {other:?}"),
    }
    drop(stream);

    // A valid Inc tag with a short body (framed honestly, so the
    // layout mismatch is what gets flagged).
    let (mut stream, _) = raw_hello(server.local_addr());
    stream.write_all(&frame_raw(&[0x02, 0x01, 0x02])).expect("short inc");
    match read_frame(&mut stream).expect("error reply") {
        WireMsg::Err { code } => assert_eq!(code, ErrCode::Malformed),
        other => panic!("expected Err {{ Malformed }}, got {other:?}"),
    }
    drop(stream);

    // A server-only frame from a client is a protocol violation, not a
    // crash.
    let (mut stream, _) = raw_hello(server.local_addr());
    write_frame(&mut stream, &WireMsg::IncOk { request_id: 0, value: 99 }).expect("wrong frame");
    match read_frame(&mut stream).expect("error reply") {
        WireMsg::Err { code } => assert_eq!(code, ErrCode::Malformed),
        other => panic!("expected Err {{ Malformed }}, got {other:?}"),
    }
    drop(stream);

    await_wire_errors(&server, 3);
    assert_still_serving(&server, 0);
    server.shutdown().expect("shutdown");
}

#[test]
fn hello_must_come_first() {
    let server = CounterServer::serve(TreeCounter::new(8).expect("sim")).expect("serve");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write_frame(&mut stream, &WireMsg::Inc { request_id: 0, initiator: None }).expect("inc");
    match read_frame(&mut stream).expect("error reply") {
        WireMsg::Err { code } => assert_eq!(code, ErrCode::BadHandshake),
        other => panic!("expected Err {{ BadHandshake }}, got {other:?}"),
    }
    assert_still_serving(&server, 0);
}

#[test]
fn resuming_an_unknown_session_is_refused() {
    let server = CounterServer::serve(TreeCounter::new(8).expect("sim")).expect("serve");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write_frame(&mut stream, &WireMsg::Hello { resume: Some(0xdead_beef) }).expect("hello");
    match read_frame(&mut stream).expect("error reply") {
        WireMsg::Err { code } => assert_eq!(code, ErrCode::UnknownSession),
        other => panic!("expected Err {{ UnknownSession }}, got {other:?}"),
    }
    assert_still_serving(&server, 0);
}

#[test]
fn out_of_range_initiator_is_refused_without_counting() {
    let mut server = CounterServer::serve(TreeCounter::new(8).expect("sim")).expect("serve");
    let mut client = RemoteCounter::connect(server.local_addr()).expect("connect");
    let err = client.inc_as(distctr_sim::ProcessorId::new(8)).expect_err("out of range");
    match err {
        distctr_server::ServerError::Remote(code) => assert_eq!(code, ErrCode::BadInitiator),
        other => panic!("expected Remote(BadInitiator), got {other:?}"),
    }
    // The refused operation did not consume a counter value.
    assert_still_serving(&server, 0);
    server.shutdown().expect("shutdown");
}

/// The headline reconnect story, on the threaded backend: a client whose
/// connection dies *after* sending an `Inc` but *before* reading the
/// reply resumes its session and replays the same request id — and the
/// operation counts exactly once, answered through the net backend's
/// migrating root reply cache.
#[test]
fn mid_op_disconnect_then_replay_is_exactly_once_on_threads() {
    let mut server =
        CounterServer::serve(ThreadedTreeCounter::new(8).expect("threads")).expect("serve");
    exercise_replay(&server);
    // Whichever delivery was the retry (ours or the dead connection's
    // still-buffered one), it was answered from dedup state.
    await_stat(&server, "dedup", |s| s.stats().deduped, 1);
    server.shutdown().expect("shutdown");
}

/// The same story on the simulator backend, which has no native ticket
/// reservation: the session layer's answered-table fallback provides the
/// same exactly-once guarantee.
#[test]
fn mid_op_disconnect_then_replay_is_exactly_once_on_sim() {
    let mut server = CounterServer::serve(TreeCounter::new(8).expect("sim")).expect("serve");
    exercise_replay(&server);
    await_stat(&server, "dedup", |s| s.stats().deduped, 1);
    server.shutdown().expect("shutdown");
}

fn exercise_replay<B: distctr_core::CounterBackend + Send + 'static>(server: &CounterServer<B>) {
    let addr = server.local_addr();
    let (mut stream, session) = raw_hello(addr);
    // Request 0 completes normally.
    write_frame(&mut stream, &WireMsg::Inc { request_id: 0, initiator: None }).expect("inc 0");
    let v0 = match read_frame(&mut stream).expect("inc 0 reply") {
        WireMsg::IncOk { request_id: 0, value } => value,
        other => panic!("expected IncOk, got {other:?}"),
    };
    assert_eq!(v0, 0);
    // Request 1 goes out — and the connection dies before the reply is
    // read. The server may or may not have applied it yet.
    write_frame(&mut stream, &WireMsg::Inc { request_id: 1, initiator: None }).expect("inc 1");
    drop(stream);

    // Resume the session on a new connection and replay request 1: the
    // client cannot know whether it was applied, so it *must* retry, and
    // the retry must not double-count.
    let mut replayer = RemoteCounter::resume(addr, session).expect("resume");
    let v1 = replayer.inc_with_id(1, None).expect("replayed inc");
    assert_eq!(v1, 1, "replay returned the original value, not a second increment");
    // The next fresh operation proves nothing was double-counted.
    assert_eq!(replayer.inc().expect("fresh inc"), 2);
}
