//! Overload and failure hardening at the server boundary: admission
//! control sheds with `Busy` instead of queueing without bound, a
//! panicking backend round is contained (the server keeps serving and
//! the waiters' retries succeed), and a graceful drain never loses an
//! acked operation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use distctr_core::{CoreError, CounterBackend, TreeCounter};
use distctr_server::wire::{read_frame, write_frame};
use distctr_server::{
    ClientConfig, CounterServer, RemoteCounter, RetryPolicy, ServerConfig, ServerError, WireMsg,
};
use distctr_sim::ProcessorId;

/// A backend that panics on the next counting operation while `armed`,
/// disarming itself first — the operation after the panic succeeds.
/// The panic fires *before* the inner counter is touched, so the
/// contained state stays consistent (as any correctly-written backend
/// must keep itself on unwind).
struct PanicOnce {
    inner: TreeCounter,
    armed: Arc<AtomicBool>,
}

impl PanicOnce {
    fn trip(&self) {
        if self.armed.swap(false, Ordering::SeqCst) {
            panic!("injected backend panic");
        }
    }
}

impl CounterBackend for PanicOnce {
    type Error = CoreError;

    fn processors(&self) -> usize {
        CounterBackend::processors(&self.inner)
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error> {
        self.trip();
        CounterBackend::inc(&mut self.inner, initiator)
    }

    fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, Self::Error> {
        self.trip();
        CounterBackend::inc_batch(&mut self.inner, initiator, count)
    }

    fn bottleneck(&self) -> u64 {
        self.inner.bottleneck()
    }

    fn retirements(&self) -> u64 {
        CounterBackend::retirements(&self.inner)
    }
}

/// A backend whose batch operations take a fixed nap — long enough for
/// pipelined requests to pile up behind the combiner and hit the
/// in-flight cap or their deadline.
struct SlowBackend {
    inner: TreeCounter,
    nap: Duration,
}

impl CounterBackend for SlowBackend {
    type Error = CoreError;

    fn processors(&self) -> usize {
        CounterBackend::processors(&self.inner)
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error> {
        std::thread::sleep(self.nap);
        CounterBackend::inc(&mut self.inner, initiator)
    }

    fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, Self::Error> {
        std::thread::sleep(self.nap);
        CounterBackend::inc_batch(&mut self.inner, initiator, count)
    }

    fn bottleneck(&self) -> u64 {
        self.inner.bottleneck()
    }

    fn retirements(&self) -> u64 {
        CounterBackend::retirements(&self.inner)
    }
}

fn fast_retries() -> ClientConfig {
    ClientConfig {
        reply_timeout: Duration::from_secs(5),
        retry: RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            seed: 7,
        },
    }
}

#[test]
fn a_panicking_combiner_round_is_contained_and_the_retry_succeeds() {
    let armed = Arc::new(AtomicBool::new(false));
    let backend = PanicOnce { inner: TreeCounter::new(8).expect("sim"), armed: Arc::clone(&armed) };
    let mut server =
        CounterServer::serve_combining_with(backend, ServerConfig::default()).expect("serve");
    let mut client =
        RemoteCounter::connect_with(server.local_addr(), fast_retries()).expect("connect");

    assert_eq!(client.inc().expect("pre-panic inc"), 0);
    armed.store(true, Ordering::SeqCst);
    // The combining round serving this inc panics inside the backend;
    // the server contains it, replies `Err { Backend }`, and the
    // client's retry lands in a later (healthy) round.
    assert_eq!(client.inc().expect("inc across the panic"), 1);
    assert_eq!(client.inc().expect("post-panic inc"), 2);

    let stats = server.stats();
    assert_eq!(stats.panics_contained, 1, "exactly one contained panic");
    // A second client still gets exact values: nothing was lost or
    // double-applied around the panic.
    let mut fresh = RemoteCounter::connect(server.local_addr()).expect("fresh connect");
    assert_eq!(fresh.inc().expect("fresh inc"), 3);
    server.shutdown().expect("shutdown");
}

#[test]
fn a_panicking_sequential_request_is_contained_too() {
    let armed = Arc::new(AtomicBool::new(false));
    let backend = PanicOnce { inner: TreeCounter::new(8).expect("sim"), armed: Arc::clone(&armed) };
    let mut server = CounterServer::serve(backend).expect("serve");
    let mut client =
        RemoteCounter::connect_with(server.local_addr(), fast_retries()).expect("connect");

    assert_eq!(client.inc().expect("pre-panic inc"), 0);
    armed.store(true, Ordering::SeqCst);
    assert_eq!(client.inc().expect("inc across the panic"), 1);
    assert_eq!(server.stats().panics_contained, 1);
    server.shutdown().expect("shutdown");
}

#[test]
fn a_panic_surfaces_as_a_backend_error_without_retries() {
    let armed = Arc::new(AtomicBool::new(true));
    let backend = PanicOnce { inner: TreeCounter::new(8).expect("sim"), armed: Arc::clone(&armed) };
    let mut server = CounterServer::serve(backend).expect("serve");
    let config = ClientConfig { retry: RetryPolicy::none(), ..ClientConfig::default() };
    let mut client = RemoteCounter::connect_with(server.local_addr(), config).expect("connect");
    match client.inc() {
        Err(ServerError::Remote(distctr_server::ErrCode::Backend)) => {}
        other => panic!("expected Remote(Backend), got {other:?}"),
    }
    // The session and the server both survived the contained panic.
    assert_eq!(client.inc().expect("inc after the contained panic"), 0);
    server.shutdown().expect("shutdown");
}

#[test]
fn admission_control_sheds_connections_past_the_cap_with_busy() {
    let config = ServerConfig {
        max_conns: Some(1),
        busy_retry_after: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let mut server =
        CounterServer::serve_with(TreeCounter::new(8).expect("sim"), config).expect("serve");
    let fail_fast = ClientConfig { retry: RetryPolicy::none(), ..ClientConfig::default() };

    let first = RemoteCounter::connect(server.local_addr()).expect("first connect");
    match RemoteCounter::connect_with(server.local_addr(), fail_fast.clone()) {
        Err(ServerError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 5),
        other => panic!("expected Busy at the cap, got {other:?}"),
    }
    assert_eq!(server.stats().shed, 1, "the shed connection is counted");

    // Freeing the slot re-admits: drop the first client and poll until
    // its connection thread exits and a new connect succeeds.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut readmitted = loop {
        match RemoteCounter::connect_with(server.local_addr(), fail_fast.clone()) {
            Ok(client) => break client,
            Err(_) => {
                assert!(Instant::now() < deadline, "slot never freed");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    assert_eq!(readmitted.inc().expect("inc after readmission"), 0);
    server.shutdown().expect("shutdown");
}

#[test]
fn per_connection_inflight_cap_sheds_with_busy_and_replays_stay_exactly_once() {
    let backend =
        SlowBackend { inner: TreeCounter::new(8).expect("sim"), nap: Duration::from_millis(80) };
    let config = ServerConfig {
        max_inflight_per_conn: Some(2),
        busy_retry_after: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let mut server =
        CounterServer::serve_on_with("127.0.0.1:0", backend, true, config).expect("serve");

    // Raw pipelined connection: fire 6 incs back-to-back while the
    // combiner naps, so the in-flight cap must trip.
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    write_frame(&mut stream, &WireMsg::Hello { resume: None }).expect("hello");
    match read_frame(&mut stream).expect("hello reply") {
        WireMsg::HelloOk { .. } => {}
        other => panic!("expected HelloOk, got {other:?}"),
    }
    let total = 6u64;
    for request_id in 0..total {
        write_frame(&mut stream, &WireMsg::Inc { request_id, initiator: None }).expect("inc");
    }
    let mut acked: Vec<(u64, u64)> = Vec::new();
    let mut shed = 0u64;
    for _ in 0..total {
        match read_frame(&mut stream).expect("reply") {
            WireMsg::IncOk { request_id, value } => acked.push((request_id, value)),
            WireMsg::Busy { .. } => shed += 1,
            other => panic!("expected IncOk or Busy, got {other:?}"),
        }
    }
    assert!(shed >= 1, "the in-flight cap never tripped");
    assert!(!acked.is_empty(), "capped pipelining still makes progress");

    // Replay every shed id: the shed requests were never applied, so
    // each replay gets a *fresh* value and the union stays duplicate-
    // and gap-free.
    let acked_ids: Vec<u64> = acked.iter().map(|&(id, _)| id).collect();
    for request_id in (0..total).filter(|id| !acked_ids.contains(id)) {
        write_frame(&mut stream, &WireMsg::Inc { request_id, initiator: None }).expect("replay");
        loop {
            match read_frame(&mut stream).expect("replay reply") {
                WireMsg::IncOk { request_id: rid, value } => {
                    assert_eq!(rid, request_id);
                    acked.push((rid, value));
                    break;
                }
                WireMsg::Busy { .. } => {
                    std::thread::sleep(Duration::from_millis(20));
                    write_frame(&mut stream, &WireMsg::Inc { request_id, initiator: None })
                        .expect("replay again");
                }
                other => panic!("expected IncOk, got {other:?}"),
            }
        }
    }
    let mut values: Vec<u64> = acked.iter().map(|&(_, v)| v).collect();
    values.sort_unstable();
    let expect: Vec<u64> = (0..total).collect();
    assert_eq!(values, expect, "every op applied exactly once, sheds included");
    assert!(server.stats().shed >= shed);
    server.shutdown().expect("shutdown");
}

#[test]
fn drain_never_loses_an_acked_operation() {
    let mut server = CounterServer::serve_combining_with(
        TreeCounter::new(8).expect("sim"),
        ServerConfig { drain_grace: Duration::from_secs(5), ..ServerConfig::default() },
    )
    .expect("serve");
    let addr = server.local_addr();

    // A background client hammers incs until the drain cuts it off;
    // every value it collected was acked over the wire.
    let fail_fast = ClientConfig {
        reply_timeout: Duration::from_secs(2),
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
            seed: 3,
        },
    };
    let driver = std::thread::spawn(move || {
        let mut acked = Vec::new();
        let Ok(mut client) = RemoteCounter::connect_with(addr, fail_fast) else {
            return acked;
        };
        while let Ok(v) = client.inc() {
            acked.push(v);
        }
        acked
    });
    // Let it get going, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(150));
    server.drain().expect("drain");
    let acked = driver.join().expect("driver thread");
    assert!(!acked.is_empty(), "the driver made progress before the drain");

    // Every acked value is distinct and the sequence has no gaps: the
    // drain flushed every in-flight reply before closing, and nothing
    // acked was lost or double-applied.
    let expect: Vec<u64> = (0..acked.len() as u64).collect();
    assert_eq!(acked, expect, "acked values form an exact prefix");

    // The reclaimed backend agrees: at most one in-flight operation
    // (sent but never acked before the cut) may have consumed an extra
    // value; an acked one never disappears.
    let mut backend = server.into_backend().expect("backend");
    let next = CounterBackend::inc(&mut backend, ProcessorId::new(0)).expect("direct inc");
    assert!(
        next == acked.len() as u64 || next == acked.len() as u64 + 1,
        "backend counted {next} vs {} acked",
        acked.len()
    );
}

#[test]
fn drained_servers_refuse_new_connections_with_busy() {
    let mut server = CounterServer::serve_with(
        TreeCounter::new(8).expect("sim"),
        ServerConfig { busy_retry_after: Duration::from_millis(25), ..ServerConfig::default() },
    )
    .expect("serve");
    let addr = server.local_addr();
    server.drain().expect("drain");
    // After the drain completes the listener is gone entirely; during
    // the drain new connections get Busy. Either way, no new session.
    match RemoteCounter::connect_with(
        addr,
        ClientConfig { retry: RetryPolicy::none(), ..ClientConfig::default() },
    ) {
        Err(_) => {}
        Ok(_) => panic!("a drained server admitted a new session"),
    }
}

#[test]
fn shutdown_of_an_idle_server_is_prompt_without_a_wakeup_connection() {
    // The nonblocking accept loop observes the stop flag on its own
    // poll tick — shutdown must not need a throwaway connect to unwedge
    // a blocking accept, and must come back quickly.
    let mut server = CounterServer::serve(TreeCounter::new(8).expect("sim")).expect("serve");
    let t0 = Instant::now();
    server.shutdown().expect("shutdown");
    assert!(t0.elapsed() < Duration::from_secs(2), "idle shutdown took {:?}", t0.elapsed());
}
