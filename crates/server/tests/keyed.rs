//! Keyed protocol behavior of a *single-counter* backend: key 0
//! aliases the legacy counter, every other key is rejected with
//! `NoSuchKey`, and the stats snapshot reports the degenerate
//! keyspace of one. (The adaptive multi-counter behavior lives in
//! `distctr-keyspace`'s own integration tests — this file pins down
//! the default-trait fallback every existing backend inherits.)

use distctr_core::TreeCounter;
use distctr_server::{CounterServer, ErrCode, RemoteCounter, ServerError};

#[test]
fn key_zero_aliases_the_legacy_counter() {
    let mut server = CounterServer::serve(TreeCounter::new(27).unwrap()).unwrap();
    let addr = server.local_addr();

    // A keyed handshake for key 0 and a legacy handshake drive the
    // same counter, interleaved.
    let mut keyed = RemoteCounter::connect_keyed(addr, 0).unwrap();
    let mut legacy = RemoteCounter::connect(addr).unwrap();
    assert_eq!(keyed.inc().unwrap(), 0);
    assert_eq!(legacy.inc().unwrap(), 1);
    assert_eq!(keyed.inc_batch_key(0, 5).unwrap(), 2, "keyed batch grants 2..7");
    assert_eq!(legacy.inc().unwrap(), 7);

    let stats = server.stats();
    assert_eq!(stats.keys_hosted, 1, "a single-counter backend hosts exactly key 0");
    assert_eq!(stats.promotions, 0);
    assert_eq!(stats.demotions, 0);
    assert_eq!(stats.migrations_inflight, 0);
    server.shutdown().unwrap();
}

#[test]
fn foreign_keys_and_reads_are_rejected_not_misrouted() {
    let mut server = CounterServer::serve(TreeCounter::new(27).unwrap()).unwrap();
    let addr = server.local_addr();

    let mut client = RemoteCounter::connect(addr).unwrap();
    assert!(matches!(
        client.inc_key(3), //
        Err(ServerError::Remote(ErrCode::NoSuchKey))
    ));
    assert!(matches!(client.inc_batch_key(3, 4), Err(ServerError::Remote(ErrCode::NoSuchKey))));
    // The default backend exposes no read index at all — not even for
    // key 0: reads are a keyspace feature.
    assert!(matches!(client.read(0), Err(ServerError::Remote(ErrCode::NoSuchKey))));

    // The rejections consumed no values: the sequence is unbroken.
    assert_eq!(client.inc().unwrap(), 0);
    server.shutdown().unwrap();
}

#[test]
fn a_keyed_handshake_survives_resume_on_its_original_key() {
    let mut server = CounterServer::serve(TreeCounter::new(27).unwrap()).unwrap();
    let addr = server.local_addr();

    let mut client = RemoteCounter::connect_keyed(addr, 0).unwrap();
    let session = client.session();
    assert_eq!(client.inc().unwrap(), 0);
    drop(client);

    let mut resumed = RemoteCounter::resume(addr, session).unwrap();
    assert_eq!(resumed.inc_with_id(0, None).unwrap(), 0, "replay answers the original grant");
    assert_eq!(resumed.inc().unwrap(), 1, "fresh ops continue the sequence");
    server.shutdown().unwrap();
}
