//! Cross-backend equivalence at the *service boundary*: the canonical
//! one-inc-per-processor workload at `n = 81` driven (a) on the
//! simulator in-process, (b) on the real-threads backend in-process,
//! and (c) through a real loopback TCP socket via [`RemoteCounter`],
//! must hand out identical sequential values — and every backend's
//! bottleneck stays within the documented `20k` bound (k = 3), plus the
//! small additive shim slack the net crate's differential tests price.

use distctr_core::{CounterBackend, TreeCounter};
use distctr_net::ThreadedTreeCounter;
use distctr_server::{CounterServer, RemoteCounter};
use distctr_sim::ProcessorId;

/// `n = 81 = 3^4`, so the tree order is `k = 3`.
const N: usize = 81;
const K: u64 = 3;
/// The repo-wide documented bottleneck bound (README quickstart).
const BOUND: u64 = 20 * K;
/// Cross-backend handshake-traffic slack (see
/// `crates/net/tests/cross_backend.rs`).
const SLACK: u64 = 4;

/// Drives the canonical workload through any backend in-process.
fn drive_local<B: CounterBackend>(backend: &mut B) -> Vec<u64> {
    (0..N).map(|p| backend.inc(ProcessorId::new(p)).expect("local inc")).collect()
}

#[test]
fn remote_counter_matches_both_local_backends_at_n_81() {
    // (a) The simulator, in-process.
    let mut sim = TreeCounter::new(N).expect("sim counter");
    let sim_values = drive_local(&mut sim);
    let sim_bottleneck = sim.bottleneck();

    // (b) The real-threads backend, in-process.
    let mut threads = ThreadedTreeCounter::new(N).expect("threaded counter");
    let thread_values = drive_local(&mut threads);
    let thread_bottleneck = CounterBackend::bottleneck(&threads);
    let thread_retirements = CounterBackend::retirements(&threads);
    threads.shutdown().expect("shutdown");

    // (c) The same workload through a real TCP socket: one connection
    // (sequential driving preserved), explicit initiators on the wire.
    let server = CounterServer::serve(ThreadedTreeCounter::new(N).expect("threaded counter"))
        .expect("serve");
    let mut remote = RemoteCounter::connect(server.local_addr()).expect("connect");
    assert_eq!(CounterBackend::processors(&remote), N);
    let remote_values: Vec<u64> =
        (0..N).map(|p| remote.inc_as(ProcessorId::new(p)).expect("remote inc")).collect();
    let stats = server.stats();
    let hosted = server.into_backend().expect("into_backend");
    let remote_bottleneck = CounterBackend::bottleneck(&hosted);
    drop(hosted);

    // Identical sequential values 0..81 from all three vantage points.
    let expected: Vec<u64> = (0..N as u64).collect();
    assert_eq!(sim_values, expected, "simulator values");
    assert_eq!(thread_values, expected, "threaded values");
    assert_eq!(remote_values, expected, "remote values over TCP");

    // Every backend honours the O(k) bottleneck bound.
    for (name, b) in
        [("sim", sim_bottleneck), ("threads", thread_bottleneck), ("remote", remote_bottleneck)]
    {
        assert!(b <= BOUND + SLACK, "{name} bottleneck {b} exceeds {BOUND} + {SLACK}");
        assert!(b >= K, "{name} bottleneck {b} beats the Omega(k) lower bound");
    }

    // Putting a socket in front of the backend changed *nothing* about
    // the protocol: sequential driving is deterministic, so the hosted
    // run agrees exactly with the in-process threaded run.
    assert_eq!(remote_bottleneck, thread_bottleneck, "TCP indirection changed message loads");
    assert_eq!(stats.retirements, thread_retirements, "TCP indirection changed retirements");
    assert_eq!(stats.ops, N as u64);
    assert_eq!(stats.deduped, 0, "no retries in a clean run");
}

#[test]
fn hosting_the_simulator_backend_is_equally_transparent() {
    // The service layer is generic over `CounterBackend`: the simulator
    // served over TCP agrees exactly with the simulator in-process.
    let mut local = TreeCounter::new(N).expect("sim counter");
    let local_values = drive_local(&mut local);

    let server = CounterServer::serve(TreeCounter::new(N).expect("sim counter")).expect("serve");
    let mut remote = RemoteCounter::connect(server.local_addr()).expect("connect");
    let remote_values: Vec<u64> =
        (0..N).map(|p| remote.inc_as(ProcessorId::new(p)).expect("remote inc")).collect();
    let stats = server.stats();
    let hosted = server.into_backend().expect("into_backend");

    assert_eq!(remote_values, local_values);
    assert_eq!(hosted.bottleneck(), local.bottleneck(), "deterministic backend, equal loads");
    assert_eq!(stats.bottleneck, local.bottleneck());
    assert!(stats.bottleneck <= BOUND + SLACK);
}
