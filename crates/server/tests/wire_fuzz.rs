//! Fuzz-style robustness tests for the wire codec: a seeded generator
//! drives thousands of random valid frames through the round trip
//! byte-exactly, then mutates and truncates them every way the
//! transport can, asserting the decoder always answers with a typed
//! [`WireError`] — never a panic, never a hang, never a bogus frame
//! accepted as a different message than the bytes spell.

use std::io::Cursor;

use distctr_server::error::ErrCode;
use distctr_server::wire::{
    decode, encode, read_frame, write_frame, StatsSnapshot, WireError, WireMsg, MAX_FRAME,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one arbitrary valid message. Error codes below 8 are reserved
/// named variants, so `Other` draws from the open range — the named
/// codes are covered explicitly in `known_error_codes_round_trip`.
fn arbitrary_msg(rng: &mut StdRng) -> WireMsg {
    match rng.gen_range(0u32..9) {
        0 => WireMsg::Hello { resume: rng.gen_bool(0.5).then(|| rng.gen()) },
        1 => {
            WireMsg::Inc { request_id: rng.gen(), initiator: rng.gen_bool(0.5).then(|| rng.gen()) }
        }
        2 => WireMsg::Stats,
        3 => WireMsg::HelloOk { session: rng.gen(), processor: rng.gen() },
        4 => WireMsg::IncOk { request_id: rng.gen(), value: rng.gen() },
        5 => WireMsg::StatsOk(StatsSnapshot {
            processors: rng.gen(),
            sessions: rng.gen(),
            connections: rng.gen(),
            ops: rng.gen(),
            deduped: rng.gen(),
            wire_errors: rng.gen(),
            combined_traversals: rng.gen(),
            bottleneck: rng.gen(),
            retirements: rng.gen(),
        }),
        6 => WireMsg::BatchInc {
            request_id: rng.gen(),
            count: rng.gen(),
            initiator: rng.gen_bool(0.5).then(|| rng.gen()),
        },
        7 => WireMsg::BatchOk { request_id: rng.gen(), first: rng.gen(), count: rng.gen() },
        _ => WireMsg::Err { code: ErrCode::from_u16(rng.gen_range(8u16..=u16::MAX)) },
    }
}

#[test]
fn random_valid_frames_round_trip_byte_exact() {
    let mut rng = StdRng::seed_from_u64(0x77697265);
    for _ in 0..4_000 {
        let msg = arbitrary_msg(&mut rng);
        let payload = encode(&msg);
        assert!(payload.len() as u32 <= MAX_FRAME, "legal frames fit the limit");
        let decoded = decode(&payload).expect("a frame the encoder wrote must decode");
        assert_eq!(decoded, msg, "decode inverts encode");
        assert_eq!(encode(&decoded), payload, "re-encoding is byte-exact");

        let mut framed = Vec::new();
        write_frame(&mut framed, &msg).expect("in-memory write");
        let mut r = Cursor::new(&framed);
        assert_eq!(read_frame(&mut r).expect("framed read"), msg);
        assert_eq!(r.position() as usize, framed.len(), "reader consumes the whole frame");
    }
}

#[test]
fn known_error_codes_round_trip() {
    for code in 0..16u16 {
        let msg = WireMsg::Err { code: ErrCode::from_u16(code) };
        let payload = encode(&msg);
        assert_eq!(decode(&payload).expect("error frames decode"), msg);
        assert_eq!(encode(&decode(&payload).unwrap()), payload, "byte-exact through Other");
    }
}

#[test]
fn every_truncation_of_a_valid_frame_is_a_typed_error() {
    let mut rng = StdRng::seed_from_u64(0x74727563);
    for _ in 0..400 {
        let msg = arbitrary_msg(&mut rng);
        let mut framed = Vec::new();
        write_frame(&mut framed, &msg).expect("in-memory write");
        for cut in 0..framed.len() {
            let mut r = Cursor::new(&framed[..cut]);
            match read_frame(&mut r) {
                Err(WireError::Closed) => assert_eq!(cut, 0, "Closed only before any byte"),
                Err(WireError::Truncated { .. }) => assert!(cut > 0),
                other => {
                    panic!("cut at {cut}/{}: expected truncation, got {other:?}", framed.len())
                }
            }
        }
    }
}

#[test]
fn single_byte_mutations_never_panic_and_errors_are_typed() {
    let mut rng = StdRng::seed_from_u64(0x6d757461);
    for _ in 0..400 {
        let msg = arbitrary_msg(&mut rng);
        let mut framed = Vec::new();
        write_frame(&mut framed, &msg).expect("in-memory write");
        let idx = rng.gen_range(0..framed.len());
        let flip: u8 = rng.gen_range(1u32..=255) as u8;
        framed[idx] ^= flip;
        let mut r = Cursor::new(&framed[..]);
        // A mutated frame either still decodes (the flip landed in a
        // don't-care numeric field) or fails with a *typed* error;
        // the read itself must never panic or loop.
        match read_frame(&mut r) {
            Ok(_)
            | Err(
                WireError::Truncated { .. }
                | WireError::Oversized { .. }
                | WireError::UnknownTag(_)
                | WireError::Malformed(_),
            ) => {}
            Err(other) => panic!("unexpected error class for a byte flip: {other:?}"),
        }
    }
}

#[test]
fn random_garbage_streams_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x67617262);
    for _ in 0..2_000 {
        let len = rng.gen_range(0usize..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..=255) as u8).collect();
        let mut r = Cursor::new(&bytes[..]);
        // Drain the stream: every iteration either yields a (miraculous)
        // valid frame or a typed error; `Closed`/errors end the loop.
        loop {
            match read_frame(&mut r) {
                Ok(_) => continue,
                Err(WireError::Io(e)) => panic!("in-memory reads cannot fail with i/o: {e}"),
                Err(_) => break,
            }
        }
    }
}

#[test]
fn oversized_prefixes_are_rejected_for_every_length_beyond_the_cap() {
    let mut rng = StdRng::seed_from_u64(0x6f766572);
    for _ in 0..1_000 {
        let len = rng.gen_range(MAX_FRAME + 1..=u32::MAX);
        let mut framed = len.to_le_bytes().to_vec();
        framed.extend_from_slice(&[0u8; 8]);
        let mut r = Cursor::new(&framed[..]);
        assert_eq!(read_frame(&mut r), Err(WireError::Oversized { len, max: MAX_FRAME }));
    }
}

#[test]
fn truncated_payloads_of_every_tag_are_malformed_or_truncated() {
    // Shorten each valid *payload* (post-length-prefix) by one byte and
    // re-frame it with a correct prefix: the cursor must flag the
    // layout mismatch, not read out of bounds.
    let mut rng = StdRng::seed_from_u64(0x73686f72);
    for _ in 0..1_000 {
        let msg = arbitrary_msg(&mut rng);
        let mut payload = encode(&msg);
        if payload.len() <= 1 {
            continue; // Stats is a lone tag; nothing to shorten
        }
        payload.truncate(payload.len() - 1);
        match decode(&payload) {
            Err(WireError::Malformed(_)) => {}
            // Hello{resume: Some} shortened by one can re-parse as a
            // valid shorter layout only if the flag byte changed — it
            // cannot, so anything else is a bug.
            other => panic!("shortened payload must be malformed, got {other:?}"),
        }
    }
}
