//! Fuzz-style robustness tests for the wire codec: a seeded generator
//! drives thousands of random valid frames through the round trip
//! byte-exactly, then mutates and truncates them every way the
//! transport can, asserting the decoder always answers with a typed
//! [`WireError`] — never a panic, never a hang, never a bogus frame
//! accepted as a different message than the bytes spell.

use std::io::{Cursor, Read};

use distctr_server::error::ErrCode;
use distctr_server::wire::{
    decode, encode, read_frame, write_frame, StatsSnapshot, WireError, WireMsg, MAX_FRAME,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one arbitrary valid message. Error codes below 10 are reserved
/// named variants, so `Other` draws from the open range — the named
/// codes are covered explicitly in `known_error_codes_round_trip`.
fn arbitrary_msg(rng: &mut StdRng) -> WireMsg {
    match rng.gen_range(0u32..15) {
        0 => WireMsg::Hello { resume: rng.gen_bool(0.5).then(|| rng.gen()) },
        1 => {
            WireMsg::Inc { request_id: rng.gen(), initiator: rng.gen_bool(0.5).then(|| rng.gen()) }
        }
        2 => WireMsg::Stats,
        3 => WireMsg::HelloOk { session: rng.gen(), processor: rng.gen() },
        4 => WireMsg::IncOk { request_id: rng.gen(), value: rng.gen() },
        5 => WireMsg::StatsOk(StatsSnapshot {
            processors: rng.gen(),
            sessions: rng.gen(),
            connections: rng.gen(),
            ops: rng.gen(),
            deduped: rng.gen(),
            wire_errors: rng.gen(),
            combined_traversals: rng.gen(),
            shed: rng.gen(),
            panics_contained: rng.gen(),
            accept_errors: rng.gen(),
            bottleneck: rng.gen(),
            retirements: rng.gen(),
            keys_hosted: rng.gen(),
            promotions: rng.gen(),
            demotions: rng.gen(),
            migrations_inflight: rng.gen(),
        }),
        6 => WireMsg::BatchInc {
            request_id: rng.gen(),
            count: rng.gen(),
            initiator: rng.gen_bool(0.5).then(|| rng.gen()),
        },
        7 => WireMsg::BatchOk { request_id: rng.gen(), first: rng.gen(), count: rng.gen() },
        8 => WireMsg::Busy { retry_after_ms: rng.gen() },
        9 => WireMsg::HelloKeyed { resume: rng.gen_bool(0.5).then(|| rng.gen()), key: rng.gen() },
        10 => WireMsg::KeyInc {
            key: rng.gen(),
            request_id: rng.gen(),
            initiator: rng.gen_bool(0.5).then(|| rng.gen()),
        },
        11 => WireMsg::KeyBatchInc {
            key: rng.gen(),
            request_id: rng.gen(),
            count: rng.gen(),
            initiator: rng.gen_bool(0.5).then(|| rng.gen()),
        },
        12 => WireMsg::Read { key: rng.gen() },
        13 => WireMsg::ReadOk { key: rng.gen(), value: rng.gen() },
        _ => WireMsg::Err { code: ErrCode::from_u16(rng.gen_range(10u16..=u16::MAX)) },
    }
}

#[test]
fn random_valid_frames_round_trip_byte_exact() {
    let mut rng = StdRng::seed_from_u64(0x77697265);
    for _ in 0..4_000 {
        let msg = arbitrary_msg(&mut rng);
        let payload = encode(&msg);
        assert!(payload.len() as u32 <= MAX_FRAME, "legal frames fit the limit");
        let decoded = decode(&payload).expect("a frame the encoder wrote must decode");
        assert_eq!(decoded, msg, "decode inverts encode");
        assert_eq!(encode(&decoded), payload, "re-encoding is byte-exact");

        let mut framed = Vec::new();
        write_frame(&mut framed, &msg).expect("in-memory write");
        let mut r = Cursor::new(&framed);
        assert_eq!(read_frame(&mut r).expect("framed read"), msg);
        assert_eq!(r.position() as usize, framed.len(), "reader consumes the whole frame");
    }
}

#[test]
fn known_error_codes_round_trip() {
    for code in 0..16u16 {
        let msg = WireMsg::Err { code: ErrCode::from_u16(code) };
        let payload = encode(&msg);
        assert_eq!(decode(&payload).expect("error frames decode"), msg);
        assert_eq!(encode(&decode(&payload).unwrap()), payload, "byte-exact through Other");
    }
}

#[test]
fn every_truncation_of_a_valid_frame_is_a_typed_error() {
    let mut rng = StdRng::seed_from_u64(0x74727563);
    for _ in 0..400 {
        let msg = arbitrary_msg(&mut rng);
        let mut framed = Vec::new();
        write_frame(&mut framed, &msg).expect("in-memory write");
        for cut in 0..framed.len() {
            let mut r = Cursor::new(&framed[..cut]);
            match read_frame(&mut r) {
                Err(WireError::Closed) => assert_eq!(cut, 0, "Closed only before any byte"),
                Err(WireError::Truncated { .. }) => assert!(cut > 0),
                other => {
                    panic!("cut at {cut}/{}: expected truncation, got {other:?}", framed.len())
                }
            }
        }
    }
}

#[test]
fn single_byte_mutations_never_panic_and_errors_are_typed() {
    let mut rng = StdRng::seed_from_u64(0x6d757461);
    for _ in 0..400 {
        let msg = arbitrary_msg(&mut rng);
        let mut framed = Vec::new();
        write_frame(&mut framed, &msg).expect("in-memory write");
        let idx = rng.gen_range(0..framed.len());
        let flip: u8 = rng.gen_range(1u32..=255) as u8;
        framed[idx] ^= flip;
        let mut r = Cursor::new(&framed[..]);
        // A mutated frame either still decodes (the flip landed in a
        // don't-care numeric field) or fails with a *typed* error;
        // the read itself must never panic or loop.
        match read_frame(&mut r) {
            Ok(_)
            | Err(
                WireError::Truncated { .. }
                | WireError::Oversized { .. }
                | WireError::UnknownTag(_)
                | WireError::Malformed(_)
                | WireError::Checksum { .. },
            ) => {}
            Err(other) => panic!("unexpected error class for a byte flip: {other:?}"),
        }
    }
}

#[test]
fn random_garbage_streams_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x67617262);
    for _ in 0..2_000 {
        let len = rng.gen_range(0usize..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..=255) as u8).collect();
        let mut r = Cursor::new(&bytes[..]);
        // Drain the stream: every iteration either yields a (miraculous)
        // valid frame or a typed error; `Closed`/errors end the loop.
        loop {
            match read_frame(&mut r) {
                Ok(_) => continue,
                Err(WireError::Io(e)) => panic!("in-memory reads cannot fail with i/o: {e}"),
                Err(_) => break,
            }
        }
    }
}

#[test]
fn oversized_prefixes_are_rejected_for_every_length_beyond_the_cap() {
    let mut rng = StdRng::seed_from_u64(0x6f766572);
    for _ in 0..1_000 {
        let len = rng.gen_range(MAX_FRAME + 1..=u32::MAX);
        let mut framed = len.to_le_bytes().to_vec();
        framed.extend_from_slice(&[0u8; 8]);
        let mut r = Cursor::new(&framed[..]);
        assert_eq!(read_frame(&mut r), Err(WireError::Oversized { len, max: MAX_FRAME }));
    }
}

#[test]
fn truncated_payloads_of_every_tag_are_malformed_or_truncated() {
    // Shorten each valid *payload* (post-length-prefix) by one byte and
    // re-frame it with a correct prefix: the cursor must flag the
    // layout mismatch, not read out of bounds.
    let mut rng = StdRng::seed_from_u64(0x73686f72);
    for _ in 0..1_000 {
        let msg = arbitrary_msg(&mut rng);
        let mut payload = encode(&msg);
        if payload.len() <= 1 {
            continue; // Stats is a lone tag; nothing to shorten
        }
        payload.truncate(payload.len() - 1);
        match decode(&payload) {
            Err(WireError::Malformed(_)) => {}
            // Hello{resume: Some} shortened by one can re-parse as a
            // valid shorter layout only if the flag byte changed — it
            // cannot, so anything else is a bug.
            other => panic!("shortened payload must be malformed, got {other:?}"),
        }
    }
}

#[test]
fn keyed_frames_with_truncated_counter_ids_are_typed_errors() {
    // The counter id is the newest field on the wire. Cut every keyed
    // frame (the versioned handshake included) at *every* prefix — in
    // particular the prefixes that end mid-way through the 8-byte key —
    // and demand the decoder flag the layout, never misparse a short
    // key as a valid frame for a different counter.
    let mut rng = StdRng::seed_from_u64(0x6b65_7973);
    for _ in 0..400 {
        let msg = match rng.gen_range(0u32..5) {
            0 => {
                WireMsg::HelloKeyed { resume: rng.gen_bool(0.5).then(|| rng.gen()), key: rng.gen() }
            }
            1 => WireMsg::KeyInc {
                key: rng.gen(),
                request_id: rng.gen(),
                initiator: rng.gen_bool(0.5).then(|| rng.gen()),
            },
            2 => WireMsg::KeyBatchInc {
                key: rng.gen(),
                request_id: rng.gen(),
                count: rng.gen(),
                initiator: rng.gen_bool(0.5).then(|| rng.gen()),
            },
            3 => WireMsg::Read { key: rng.gen() },
            _ => WireMsg::ReadOk { key: rng.gen(), value: rng.gen() },
        };
        let payload = encode(&msg);
        assert_eq!(decode(&payload).expect("keyed frames decode"), msg);
        for cut in 1..payload.len() {
            match decode(&payload[..cut]) {
                Err(WireError::Malformed(_)) => {}
                other => panic!("cut at {cut}: expected a layout reject, got {other:?}"),
            }
        }
    }
}

/// Delivers a byte stream in bounded random chunks — exactly what the
/// chaos proxy's slicer toxic does to TCP segments. The codec must
/// reassemble frames from any segmentation.
struct Chunked<'a> {
    data: &'a [u8],
    pos: usize,
    rng: StdRng,
    max_chunk: usize,
}

impl Read for Chunked<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        let k =
            self.rng.gen_range(1..=self.max_chunk).min(buf.len()).min(self.data.len() - self.pos);
        buf[..k].copy_from_slice(&self.data[self.pos..self.pos + k]);
        self.pos += k;
        Ok(k)
    }
}

#[test]
fn sliced_delivery_reassembles_every_frame() {
    let mut rng = StdRng::seed_from_u64(0x736c_6963);
    for round in 0..50 {
        let msgs: Vec<WireMsg> = (0..20).map(|_| arbitrary_msg(&mut rng)).collect();
        let mut bytes = Vec::new();
        for m in &msgs {
            write_frame(&mut bytes, m).expect("in-memory write");
        }
        // 1–3 bytes at a time: every frame arrives interleaved across
        // many partial reads, and boundaries never align with frames.
        let mut r = Chunked {
            data: &bytes,
            pos: 0,
            rng: StdRng::seed_from_u64(0xF00D + round),
            max_chunk: 3,
        };
        for m in &msgs {
            assert_eq!(&read_frame(&mut r).expect("reassembled frame"), m);
        }
        assert!(
            matches!(read_frame(&mut r), Err(WireError::Closed)),
            "clean EOF at the stream's end"
        );
    }
}

#[test]
fn a_torn_frame_spliced_into_a_fresh_one_is_rejected_not_misparsed() {
    // The blackhole/reset toxics can cut a connection mid-frame; a
    // naive peer that reconnects and keeps appending would splice a
    // fresh frame right after the torn prefix. The reader must flag a
    // typed error — under the length prefix alone the splice could
    // decode as a *different valid message*; the checksum forbids it.
    let mut rng = StdRng::seed_from_u64(0x746f_726e);
    for _ in 0..400 {
        let torn = arbitrary_msg(&mut rng);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &torn).expect("in-memory write");
        let cut = rng.gen_range(5..bytes.len());
        bytes.truncate(cut);
        write_frame(&mut bytes, &arbitrary_msg(&mut rng)).expect("in-memory write");
        let mut r = Cursor::new(&bytes[..]);
        match read_frame(&mut r) {
            Err(WireError::Io(e)) => panic!("in-memory reads cannot fail with i/o: {e}"),
            Err(_) => {}
            // A splice can only decode when the borrowed bytes re-spell
            // the torn frame exactly (same payload, same checksum) — in
            // which case it IS the original message and exactly-once is
            // unharmed. Decoding as a *different* message is the bug.
            Ok(decoded) => assert_eq!(decoded, torn, "a torn splice misparsed"),
        }
    }
}

#[test]
fn interleaved_partial_frames_from_two_writers_stay_framed() {
    // Two logical streams sliced and concatenated whole-frame-wise (the
    // proxy never mixes bytes of different connections, but a combining
    // server's reply stream interleaves frames written by the reader
    // thread and the combiner): order within the byte stream is the
    // only order, and every frame must parse independently.
    let mut rng = StdRng::seed_from_u64(0x696e_746c);
    let a: Vec<WireMsg> = (0..10).map(|_| arbitrary_msg(&mut rng)).collect();
    let b: Vec<WireMsg> = (0..10).map(|_| arbitrary_msg(&mut rng)).collect();
    let mut bytes = Vec::new();
    let mut expect = Vec::new();
    for (x, y) in a.iter().zip(&b) {
        write_frame(&mut bytes, x).expect("in-memory write");
        write_frame(&mut bytes, y).expect("in-memory write");
        expect.push(x.clone());
        expect.push(y.clone());
    }
    let mut r = Chunked { data: &bytes, pos: 0, rng: StdRng::seed_from_u64(0xBEEF), max_chunk: 5 };
    for m in &expect {
        assert_eq!(&read_frame(&mut r).expect("interleaved frame"), m);
    }
}

#[test]
fn corrupted_frames_are_flagged_with_the_offending_checksum() {
    // Byte corruption in flight (the corrupt toxic) must surface as
    // Checksum — not decode into a different message whose ack would
    // break exactly-once.
    let mut rng = StdRng::seed_from_u64(0x6372_6370);
    let mut flagged = 0u32;
    for _ in 0..400 {
        let msg = arbitrary_msg(&mut rng);
        let mut framed = Vec::new();
        write_frame(&mut framed, &msg).expect("in-memory write");
        // Flip strictly inside the payload (past the 8-byte header), so
        // the length prefix stays honest and the CRC must do the work.
        if framed.len() <= 8 {
            continue;
        }
        let idx = rng.gen_range(8..framed.len());
        framed[idx] ^= rng.gen_range(1u32..=255) as u8;
        let mut r = Cursor::new(&framed[..]);
        match read_frame(&mut r) {
            Err(WireError::Checksum { expected, found }) => {
                assert_ne!(expected, found);
                flagged += 1;
            }
            other => panic!("payload corruption must fail the checksum, got {other:?}"),
        }
    }
    assert!(flagged > 300, "the corpus actually exercised the checksum ({flagged})");
}
