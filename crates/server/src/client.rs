//! The native client: a counter whose network is a real TCP connection.
//!
//! [`RemoteCounter`] speaks the wire protocol of [`crate::wire`] and
//! implements the same [`CounterBackend`] interface as the local
//! backends, so everything that drives a `TreeCounter` or a
//! `ThreadedTreeCounter` — tests, experiments, the load generator — can
//! drive a counter on the other end of a socket unchanged.
//!
//! Reconnect-and-retry is first-class: [`RemoteCounter::session`] is the
//! resume token, and [`RemoteCounter::inc_with_id`] replays a request id
//! after [`RemoteCounter::resume`], landing on the server's dedup state
//! so the increment applies exactly once no matter how many times the
//! connection died.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use distctr_core::CounterBackend;
use distctr_sim::ProcessorId;

use crate::error::ServerError;
use crate::wire::{read_frame, write_frame, write_frame_buf, StatsSnapshot, WireMsg};

/// Client-side guard against a wedged server: every reply must arrive
/// within this window.
const REPLY_TIMEOUT: Duration = Duration::from_secs(10);

/// A counter served over TCP.
///
/// # Examples
///
/// ```
/// use distctr_net::ThreadedTreeCounter;
/// use distctr_server::{CounterServer, RemoteCounter, ServerError};
///
/// # fn main() -> Result<(), ServerError> {
/// let backend = ThreadedTreeCounter::new(8).map_err(|e| ServerError::Backend(e.to_string()))?;
/// let mut server = CounterServer::serve(backend)?;
/// let mut counter = RemoteCounter::connect(server.local_addr())?;
/// assert_eq!(counter.inc()?, 0);
/// assert_eq!(counter.inc()?, 1);
/// server.shutdown()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RemoteCounter {
    stream: TcpStream,
    addr: SocketAddr,
    session: u64,
    processor: u64,
    processors: u64,
    next_request: u64,
    /// Reused frame-encoding buffer: a long-lived client sends every
    /// request without a per-message allocation.
    scratch: Vec<u8>,
}

impl RemoteCounter {
    /// Connects to a [`crate::CounterServer`] at `addr` and opens a
    /// fresh session.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] on connect failure; [`ServerError::Wire`],
    /// [`ServerError::Remote`] or [`ServerError::Protocol`] on a failed
    /// handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServerError> {
        Self::handshake(addr, None)
    }

    /// Reconnects to `addr` and resumes session `session` (from
    /// [`RemoteCounter::session`] of a previous connection), keeping its
    /// server-side dedup state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::connect`];
    /// [`ServerError::Remote`] with `UnknownSession` if the server does
    /// not know the session.
    pub fn resume(addr: impl ToSocketAddrs, session: u64) -> Result<Self, ServerError> {
        Self::handshake(addr, Some(session))
    }

    fn handshake(addr: impl ToSocketAddrs, resume: Option<u64>) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServerError::Io(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| ServerError::Io(e.to_string()))?;
        stream.set_read_timeout(Some(REPLY_TIMEOUT)).map_err(|e| ServerError::Io(e.to_string()))?;
        let addr = stream.peer_addr().map_err(|e| ServerError::Io(e.to_string()))?;
        let mut counter = RemoteCounter {
            stream,
            addr,
            session: 0,
            processor: 0,
            processors: 0,
            next_request: 0,
            scratch: Vec::with_capacity(64),
        };
        counter.send(&WireMsg::Hello { resume })?;
        match counter.receive()? {
            WireMsg::HelloOk { session, processor } => {
                counter.session = session;
                counter.processor = processor;
            }
            other => return Err(unexpected(&other)),
        }
        counter.processors = counter.stats()?.processors;
        Ok(counter)
    }

    /// The session id — the resume token for [`RemoteCounter::resume`].
    #[must_use]
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The processor this session's operations are charged to by
    /// default.
    #[must_use]
    pub fn processor(&self) -> ProcessorId {
        ProcessorId::new(self.processor as usize)
    }

    /// The server's address.
    #[must_use]
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request ids handed out so far; `next_request_id - 1` is the id of
    /// the operation in flight when a connection dies mid-`inc`, which is
    /// what [`RemoteCounter::inc_with_id`] replays after a resume.
    #[must_use]
    pub fn next_request_id(&self) -> u64 {
        self.next_request
    }

    /// Executes one `inc` charged to the session's processor.
    ///
    /// # Errors
    ///
    /// [`ServerError::Wire`] on transport failure (resume and replay to
    /// retry); [`ServerError::Remote`] if the server reports one.
    pub fn inc(&mut self) -> Result<u64, ServerError> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.inc_with_id(request_id, None)
    }

    /// Executes one `inc` charged to an explicit initiating processor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`], plus
    /// [`ServerError::Remote`] with `BadInitiator` if out of range.
    pub fn inc_as(&mut self, initiator: ProcessorId) -> Result<u64, ServerError> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.inc_with_id(request_id, Some(initiator.index() as u64))
    }

    /// Executes (or replays) an `inc` under an explicit request id: the
    /// exactly-once retry hook. Replaying an id the server has seen is
    /// answered from its dedup state without incrementing again.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`].
    pub fn inc_with_id(
        &mut self,
        request_id: u64,
        initiator: Option<u64>,
    ) -> Result<u64, ServerError> {
        self.next_request = self.next_request.max(request_id + 1);
        self.send(&WireMsg::Inc { request_id, initiator })?;
        match self.receive()? {
            WireMsg::IncOk { request_id: rid, value } if rid == request_id => Ok(value),
            WireMsg::IncOk { request_id: rid, .. } => Err(ServerError::Protocol(format!(
                "IncOk for request {rid} while {request_id} was in flight"
            ))),
            other => Err(unexpected(&other)),
        }
    }

    /// Executes a batch of `count` incs as one request and one backend
    /// traversal, returning the first value of the granted contiguous
    /// range `[first, first + count)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`].
    pub fn inc_batch(&mut self, count: u64) -> Result<u64, ServerError> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.inc_batch_with_id(request_id, count, None)
    }

    /// Executes (or replays) a batch under an explicit request id — the
    /// batch analogue of [`RemoteCounter::inc_with_id`]. A replay must
    /// repeat the same `count` and is answered with the original range.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`].
    pub fn inc_batch_with_id(
        &mut self,
        request_id: u64,
        count: u64,
        initiator: Option<u64>,
    ) -> Result<u64, ServerError> {
        self.next_request = self.next_request.max(request_id + 1);
        self.send(&WireMsg::BatchInc { request_id, count, initiator })?;
        match self.receive()? {
            WireMsg::BatchOk { request_id: rid, first, .. } if rid == request_id => Ok(first),
            WireMsg::BatchOk { request_id: rid, .. } => Err(ServerError::Protocol(format!(
                "BatchOk for request {rid} while {request_id} was in flight"
            ))),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's statistics snapshot.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServerError> {
        self.send(&WireMsg::Stats)?;
        match self.receive()? {
            WireMsg::StatsOk(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Like [`RemoteCounter::stats`], but usable through a shared
    /// reference (TCP reads and writes only need `&TcpStream`); backs
    /// the [`CounterBackend`] accessors.
    fn stats_shared(&self) -> Result<StatsSnapshot, ServerError> {
        let mut half = &self.stream;
        write_frame(&mut half, &WireMsg::Stats)?;
        match read_frame(&mut half)? {
            WireMsg::StatsOk(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    fn send(&mut self, msg: &WireMsg) -> Result<(), ServerError> {
        write_frame_buf(&mut self.stream, msg, &mut self.scratch).map_err(ServerError::Wire)
    }

    fn receive(&mut self) -> Result<WireMsg, ServerError> {
        match read_frame(&mut self.stream)? {
            WireMsg::Err { code } => Err(ServerError::Remote(code)),
            msg => Ok(msg),
        }
    }
}

fn unexpected(msg: &WireMsg) -> ServerError {
    match msg {
        WireMsg::Err { code } => ServerError::Remote(*code),
        other => ServerError::Protocol(format!("unexpected frame {other:?}")),
    }
}

impl CounterBackend for RemoteCounter {
    type Error = ServerError;

    fn processors(&self) -> usize {
        self.processors as usize
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error> {
        self.inc_as(initiator)
    }

    fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, Self::Error> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.inc_batch_with_id(request_id, count, Some(initiator.index() as u64))
    }

    fn bottleneck(&self) -> u64 {
        self.stats_shared().map_or(0, |s| s.bottleneck)
    }

    fn retirements(&self) -> u64 {
        self.stats_shared().map_or(0, |s| s.retirements)
    }
}
