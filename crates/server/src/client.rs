//! The native client: a counter whose network is a real TCP connection.
//!
//! [`RemoteCounter`] speaks the wire protocol of [`crate::wire`] and
//! implements the same [`CounterBackend`] interface as the local
//! backends, so everything that drives a `TreeCounter` or a
//! `ThreadedTreeCounter` — tests, experiments, the load generator — can
//! drive a counter on the other end of a socket unchanged.
//!
//! Reconnect-and-retry is first-class **and automatic**: every
//! operation runs under the client's [`RetryPolicy`]. A transport
//! failure mid-operation makes the client resume its session
//! ([`RemoteCounter::session`] is the token) and replay the *same*
//! request id, landing on the server's dedup state so the increment
//! applies exactly once no matter how many times the connection died. A
//! [`WireMsg::Busy`] load-shed reply makes it back off for the server's
//! `retry_after_ms` hint (plus jitter) before retrying. The manual
//! hooks ([`RemoteCounter::resume`], [`RemoteCounter::inc_with_id`])
//! remain for callers orchestrating their own recovery.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use distctr_core::CounterBackend;
use distctr_sim::ProcessorId;

use crate::error::{ErrCode, ServerError};
use crate::wire::{read_frame, write_frame, write_frame_buf, StatsSnapshot, WireMsg};

/// Jittered-exponential-backoff retry budget: how a [`RemoteCounter`]
/// turns transient failures (dead connections, corrupted frames,
/// [`WireMsg::Busy`] load sheds, backend hiccups) into delay instead of
/// errors. Exactly-once is preserved across every retry because the
/// replay carries the original request id into the server's dedup
/// state.
///
/// The backoff before retry `n` is drawn uniformly from
/// `[d/2, d]` where `d = min(base_backoff · 2ⁿ, max_backoff)` —
/// "equal jitter", which decorrelates a thundering herd of clients
/// shed at the same instant. A `Busy { retry_after_ms }` reply
/// overrides the exponential base with the server's hint (still
/// jittered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed per operation beyond the first attempt; `0`
    /// disables retrying entirely.
    pub max_retries: u32,
    /// First-retry backoff; doubles each retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
    /// Seed of the jitter stream, so a test run's delays are
    /// reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            seed: 0x5DEE_CE66_D5DE_ECE6,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every failure surfaces immediately,
    /// exactly as the pre-policy client behaved.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// The default policy with a different retry budget.
    #[must_use]
    pub fn with_budget(max_retries: u32) -> Self {
        RetryPolicy { max_retries, ..RetryPolicy::default() }
    }

    /// The backoff before retry number `attempt` (0-based), honoring a
    /// server `retry_after_ms` hint when one was given.
    fn backoff(&self, attempt: u32, hint_ms: Option<u64>, rng: &mut u64) -> Duration {
        let base = match hint_ms {
            Some(ms) => Duration::from_millis(ms),
            None => self.base_backoff.saturating_mul(1u32 << attempt.min(16)),
        };
        let nanos = base.min(self.max_backoff).as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        let half = nanos / 2;
        Duration::from_nanos(half + xorshift(rng) % (nanos - half + 1))
    }
}

/// One step of xorshift64 — all the randomness jitter needs, with no
/// dependency and reproducible from [`RetryPolicy::seed`].
fn xorshift(state: &mut u64) -> u64 {
    if *state == 0 {
        *state = 0x9E37_79B9_7F4A_7C15;
    }
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Tunable knobs of a [`RemoteCounter`]. The default reproduces the
/// historical timeout (10 s) and adds an 8-retry policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Client-side guard against a wedged server: every reply must
    /// arrive within this window.
    pub reply_timeout: Duration,
    /// How failures are retried; [`RetryPolicy::none`] restores
    /// fail-fast behavior.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig { reply_timeout: Duration::from_secs(10), retry: RetryPolicy::default() }
    }
}

/// Whether an error is worth retrying: transient transport, overload
/// and backend failures are; protocol refusals (bad initiator, unknown
/// session, malformed request) never change on retry.
fn retryable(e: &ServerError) -> bool {
    match e {
        ServerError::Wire(_) | ServerError::Io(_) | ServerError::Busy { .. } => true,
        // Decode-failure codes (`Corrupt`, `Oversized`, `UnknownTag`,
        // `Malformed`) mean the server could not parse what arrived —
        // on a damaged network that is the *transport's* fault, not a
        // protocol bug, so the request is replayed on a fresh
        // connection. A genuinely broken client is still bounded by
        // the retry budget.
        ServerError::Remote(code) => matches!(
            code,
            ErrCode::Backend
                | ErrCode::Corrupt
                | ErrCode::Oversized
                | ErrCode::UnknownTag
                | ErrCode::Malformed
        ),
        _ => false,
    }
}

/// Whether the connection must be re-established before retrying.
/// `Busy` and backend errors leave the stream framed and healthy; any
/// codec or transport failure — reported locally (`Wire`/`Io`) or by
/// the server (a decode-failure code, after which the server closes) —
/// means the stream position can no longer be trusted.
fn needs_reconnect(e: &ServerError) -> bool {
    matches!(
        e,
        ServerError::Wire(_)
            | ServerError::Io(_)
            | ServerError::Remote(
                ErrCode::Corrupt | ErrCode::Oversized | ErrCode::UnknownTag | ErrCode::Malformed
            )
    )
}

/// The server's backoff hint, if the failure carried one.
fn busy_hint(e: &ServerError) -> Option<u64> {
    match e {
        ServerError::Busy { retry_after_ms } => Some(*retry_after_ms),
        _ => None,
    }
}

/// A counter served over TCP.
///
/// # Examples
///
/// ```
/// use distctr_net::ThreadedTreeCounter;
/// use distctr_server::{CounterServer, RemoteCounter, ServerError};
///
/// # fn main() -> Result<(), ServerError> {
/// let backend = ThreadedTreeCounter::new(8).map_err(|e| ServerError::Backend(e.to_string()))?;
/// let mut server = CounterServer::serve(backend)?;
/// let mut counter = RemoteCounter::connect(server.local_addr())?;
/// assert_eq!(counter.inc()?, 0);
/// assert_eq!(counter.inc()?, 1);
/// server.shutdown()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RemoteCounter {
    stream: TcpStream,
    addr: SocketAddr,
    session: u64,
    processor: u64,
    processors: u64,
    /// The counter key this session was opened against (`None` for the
    /// unkeyed handshake), re-sent on every reconnect handshake.
    key: Option<u64>,
    next_request: u64,
    config: ClientConfig,
    /// Jitter stream state (see [`RetryPolicy::seed`]).
    rng: u64,
    /// Reused frame-encoding buffer: a long-lived client sends every
    /// request without a per-message allocation.
    scratch: Vec<u8>,
}

impl RemoteCounter {
    /// Connects to a [`crate::CounterServer`] at `addr` and opens a
    /// fresh session, with [`ClientConfig::default`] knobs.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] on connect failure; [`ServerError::Wire`],
    /// [`ServerError::Remote`] or [`ServerError::Protocol`] on a failed
    /// handshake; [`ServerError::Busy`] (possibly wrapped in
    /// [`ServerError::RetriesExhausted`]) if the server keeps shedding.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServerError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`RemoteCounter::connect`] with explicit knobs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Self, ServerError> {
        Self::handshake_retrying(addr, None, None, config)
    }

    /// Connects with the **keyed** handshake: this session's unkeyed
    /// operations are routed to counter `key` instead of the default
    /// key. The server must host a keyed backend for any non-zero key
    /// (otherwise the first operation reports `NoSuchKey`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::connect`].
    pub fn connect_keyed(addr: impl ToSocketAddrs, key: u64) -> Result<Self, ServerError> {
        Self::connect_keyed_with(addr, key, ClientConfig::default())
    }

    /// [`RemoteCounter::connect_keyed`] with explicit knobs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::connect`].
    pub fn connect_keyed_with(
        addr: impl ToSocketAddrs,
        key: u64,
        config: ClientConfig,
    ) -> Result<Self, ServerError> {
        Self::handshake_retrying(addr, None, Some(key), config)
    }

    /// Reconnects to `addr` and resumes session `session` (from
    /// [`RemoteCounter::session`] of a previous connection), keeping its
    /// server-side dedup state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::connect`];
    /// [`ServerError::Remote`] with `UnknownSession` if the server does
    /// not know the session.
    pub fn resume(addr: impl ToSocketAddrs, session: u64) -> Result<Self, ServerError> {
        Self::handshake_retrying(addr, Some(session), None, ClientConfig::default())
    }

    /// [`RemoteCounter::resume`] with explicit knobs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::resume`].
    pub fn resume_with(
        addr: impl ToSocketAddrs,
        session: u64,
        config: ClientConfig,
    ) -> Result<Self, ServerError> {
        Self::handshake_retrying(addr, Some(session), None, config)
    }

    /// Connect-and-handshake under the retry policy: a server that
    /// sheds the connection with `Busy` (draining, or at its admission
    /// cap) is retried after its hint, like any shed operation.
    fn handshake_retrying(
        addr: impl ToSocketAddrs,
        resume: Option<u64>,
        key: Option<u64>,
        config: ClientConfig,
    ) -> Result<Self, ServerError> {
        let mut rng = config.retry.seed;
        let mut attempt = 0u32;
        loop {
            let e = match Self::handshake(&addr, resume, key, &config) {
                Ok(mut counter) => {
                    counter.rng = rng;
                    return Ok(counter);
                }
                Err(e) => e,
            };
            if !retryable(&e) {
                return Err(e);
            }
            if attempt >= config.retry.max_retries {
                return if config.retry.max_retries == 0 {
                    Err(e)
                } else {
                    Err(ServerError::RetriesExhausted(Box::new(e)))
                };
            }
            std::thread::sleep(config.retry.backoff(attempt, busy_hint(&e), &mut rng));
            attempt += 1;
        }
    }

    /// One handshake attempt, no retries.
    fn handshake(
        addr: impl ToSocketAddrs,
        resume: Option<u64>,
        key: Option<u64>,
        config: &ClientConfig,
    ) -> Result<Self, ServerError> {
        let (stream, session, processor) = Self::dial(&addr, resume, key, config)?;
        let addr = stream.peer_addr().map_err(|e| ServerError::Io(e.to_string()))?;
        let mut counter = RemoteCounter {
            stream,
            addr,
            session,
            processor,
            processors: 0,
            key,
            next_request: 0,
            rng: config.retry.seed,
            config: config.clone(),
            scratch: Vec::with_capacity(64),
        };
        counter.processors = counter.stats()?.processors;
        Ok(counter)
    }

    /// Dials the server and completes the Hello exchange, returning the
    /// raw pieces — shared by first connects and mid-operation
    /// reconnects.
    fn dial(
        addr: impl ToSocketAddrs,
        resume: Option<u64>,
        key: Option<u64>,
        config: &ClientConfig,
    ) -> Result<(TcpStream, u64, u64), ServerError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| ServerError::Io(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| ServerError::Io(e.to_string()))?;
        stream
            .set_read_timeout(Some(config.reply_timeout))
            .map_err(|e| ServerError::Io(e.to_string()))?;
        let hello = match key {
            Some(key) => WireMsg::HelloKeyed { resume, key },
            None => WireMsg::Hello { resume },
        };
        write_frame(&mut stream, &hello)?;
        match read_frame(&mut stream)? {
            WireMsg::HelloOk { session, processor } => Ok((stream, session, processor)),
            WireMsg::Busy { retry_after_ms } => Err(ServerError::Busy { retry_after_ms }),
            WireMsg::Err { code } => Err(ServerError::Remote(code)),
            other => Err(unexpected(&other)),
        }
    }

    /// Re-establishes the connection and resumes this session, keeping
    /// the server-side dedup state the retry loop replays into.
    fn reconnect(&mut self) -> Result<(), ServerError> {
        let (stream, session, processor) =
            Self::dial(self.addr, Some(self.session), self.key, &self.config)?;
        self.stream = stream;
        self.session = session;
        self.processor = processor;
        Ok(())
    }

    /// Runs one operation under the retry policy: backoff on transient
    /// failures (honoring `Busy` hints), resume the session when the
    /// transport died, and replay the same request — then report
    /// [`ServerError::RetriesExhausted`] once the budget is spent.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> Result<T, ServerError>,
    ) -> Result<T, ServerError> {
        let mut attempt = 0u32;
        loop {
            let e = match op(self) {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if !retryable(&e) {
                return Err(e);
            }
            if attempt >= self.config.retry.max_retries {
                return if self.config.retry.max_retries == 0 {
                    Err(e)
                } else {
                    Err(ServerError::RetriesExhausted(Box::new(e)))
                };
            }
            let delay = self.config.retry.backoff(attempt, busy_hint(&e), &mut self.rng);
            std::thread::sleep(delay);
            if needs_reconnect(&e) {
                // Best-effort: if the redial fails, the next attempt of
                // `op` surfaces a fresh transport error and the loop
                // charges another attempt against the budget.
                let _ = self.reconnect();
            }
            attempt += 1;
        }
    }

    /// The session id — the resume token for [`RemoteCounter::resume`].
    #[must_use]
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The processor this session's operations are charged to by
    /// default.
    #[must_use]
    pub fn processor(&self) -> ProcessorId {
        ProcessorId::new(self.processor as usize)
    }

    /// The server's address.
    #[must_use]
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The knobs this client runs under.
    #[must_use]
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Request ids handed out so far; `next_request_id - 1` is the id of
    /// the operation in flight when a connection dies mid-`inc`, which is
    /// what [`RemoteCounter::inc_with_id`] replays after a resume.
    #[must_use]
    pub fn next_request_id(&self) -> u64 {
        self.next_request
    }

    /// Executes one `inc` charged to the session's processor, retrying
    /// per the [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// [`ServerError::Wire`] on transport failure once retries are
    /// spent; [`ServerError::Remote`] if the server reports one.
    pub fn inc(&mut self) -> Result<u64, ServerError> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.inc_with_id(request_id, None)
    }

    /// Executes one `inc` charged to an explicit initiating processor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`], plus
    /// [`ServerError::Remote`] with `BadInitiator` if out of range.
    pub fn inc_as(&mut self, initiator: ProcessorId) -> Result<u64, ServerError> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.inc_with_id(request_id, Some(initiator.index() as u64))
    }

    /// Executes (or replays) an `inc` under an explicit request id: the
    /// exactly-once retry hook, itself run under the retry policy.
    /// Replaying an id the server has seen is answered from its dedup
    /// state without incrementing again.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`].
    pub fn inc_with_id(
        &mut self,
        request_id: u64,
        initiator: Option<u64>,
    ) -> Result<u64, ServerError> {
        self.next_request = self.next_request.max(request_id + 1);
        self.with_retry(|c| c.raw_inc(request_id, initiator))
    }

    fn raw_inc(&mut self, request_id: u64, initiator: Option<u64>) -> Result<u64, ServerError> {
        self.send(&WireMsg::Inc { request_id, initiator })?;
        match self.receive()? {
            WireMsg::IncOk { request_id: rid, value } if rid == request_id => Ok(value),
            WireMsg::IncOk { request_id: rid, .. } => Err(ServerError::Protocol(format!(
                "IncOk for request {rid} while {request_id} was in flight"
            ))),
            other => Err(unexpected(&other)),
        }
    }

    /// Executes a batch of `count` incs as one request and one backend
    /// traversal, returning the first value of the granted contiguous
    /// range `[first, first + count)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`].
    pub fn inc_batch(&mut self, count: u64) -> Result<u64, ServerError> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.inc_batch_with_id(request_id, count, None)
    }

    /// Executes (or replays) a batch under an explicit request id — the
    /// batch analogue of [`RemoteCounter::inc_with_id`]. A replay must
    /// repeat the same `count` and is answered with the original range.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`].
    pub fn inc_batch_with_id(
        &mut self,
        request_id: u64,
        count: u64,
        initiator: Option<u64>,
    ) -> Result<u64, ServerError> {
        self.next_request = self.next_request.max(request_id + 1);
        self.with_retry(|c| c.raw_inc_batch(request_id, count, initiator))
    }

    fn raw_inc_batch(
        &mut self,
        request_id: u64,
        count: u64,
        initiator: Option<u64>,
    ) -> Result<u64, ServerError> {
        self.send(&WireMsg::BatchInc { request_id, count, initiator })?;
        match self.receive()? {
            WireMsg::BatchOk { request_id: rid, first, .. } if rid == request_id => Ok(first),
            WireMsg::BatchOk { request_id: rid, .. } => Err(ServerError::Protocol(format!(
                "BatchOk for request {rid} while {request_id} was in flight"
            ))),
            other => Err(unexpected(&other)),
        }
    }

    /// The key this session was opened against, if the keyed handshake
    /// was used.
    #[must_use]
    pub fn key(&self) -> Option<u64> {
        self.key
    }

    /// Executes one `inc` against counter `key` (regardless of the
    /// session's own key), retrying per the [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`], plus
    /// [`ServerError::Remote`] with `NoSuchKey` if the server does not
    /// route the key.
    pub fn inc_key(&mut self, key: u64) -> Result<u64, ServerError> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.inc_key_with_id(key, request_id, None)
    }

    /// Executes (or replays) a keyed `inc` under an explicit request id
    /// — the keyed [`RemoteCounter::inc_with_id`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc_key`].
    pub fn inc_key_with_id(
        &mut self,
        key: u64,
        request_id: u64,
        initiator: Option<u64>,
    ) -> Result<u64, ServerError> {
        self.next_request = self.next_request.max(request_id + 1);
        self.with_retry(|c| c.raw_inc_key(key, request_id, initiator))
    }

    fn raw_inc_key(
        &mut self,
        key: u64,
        request_id: u64,
        initiator: Option<u64>,
    ) -> Result<u64, ServerError> {
        self.send(&WireMsg::KeyInc { key, request_id, initiator })?;
        match self.receive()? {
            WireMsg::IncOk { request_id: rid, value } if rid == request_id => Ok(value),
            WireMsg::IncOk { request_id: rid, .. } => Err(ServerError::Protocol(format!(
                "IncOk for request {rid} while {request_id} was in flight"
            ))),
            other => Err(unexpected(&other)),
        }
    }

    /// Executes a batch of `count` incs against counter `key` as one
    /// request, returning the first value of the granted range.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc_key`].
    pub fn inc_batch_key(&mut self, key: u64, count: u64) -> Result<u64, ServerError> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.inc_batch_key_with_id(key, request_id, count, None)
    }

    /// Executes (or replays) a keyed batch under an explicit request id.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc_key`].
    pub fn inc_batch_key_with_id(
        &mut self,
        key: u64,
        request_id: u64,
        count: u64,
        initiator: Option<u64>,
    ) -> Result<u64, ServerError> {
        self.next_request = self.next_request.max(request_id + 1);
        self.with_retry(|c| c.raw_inc_batch_key(key, request_id, count, initiator))
    }

    fn raw_inc_batch_key(
        &mut self,
        key: u64,
        request_id: u64,
        count: u64,
        initiator: Option<u64>,
    ) -> Result<u64, ServerError> {
        self.send(&WireMsg::KeyBatchInc { key, request_id, count, initiator })?;
        match self.receive()? {
            WireMsg::BatchOk { request_id: rid, first, .. } if rid == request_id => Ok(first),
            WireMsg::BatchOk { request_id: rid, .. } => Err(ServerError::Protocol(format!(
                "BatchOk for request {rid} while {request_id} was in flight"
            ))),
            other => Err(unexpected(&other)),
        }
    }

    /// Reads counter `key`'s current value without incrementing,
    /// retrying per the [`RetryPolicy`]. Reads have no side effect, so
    /// retrying them is trivially safe.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc_key`].
    pub fn read(&mut self, key: u64) -> Result<u64, ServerError> {
        self.with_retry(|c| {
            c.send(&WireMsg::Read { key })?;
            match c.receive()? {
                WireMsg::ReadOk { key: k, value } if k == key => Ok(value),
                WireMsg::ReadOk { key: k, .. } => Err(ServerError::Protocol(format!(
                    "ReadOk for key {k} while {key} was in flight"
                ))),
                other => Err(unexpected(&other)),
            }
        })
    }

    /// Fetches the server's statistics snapshot.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RemoteCounter::inc`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServerError> {
        self.send(&WireMsg::Stats)?;
        match self.receive()? {
            WireMsg::StatsOk(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Like [`RemoteCounter::stats`], but usable through a shared
    /// reference (TCP reads and writes only need `&TcpStream`); backs
    /// the [`CounterBackend`] accessors.
    fn stats_shared(&self) -> Result<StatsSnapshot, ServerError> {
        let mut half = &self.stream;
        write_frame(&mut half, &WireMsg::Stats)?;
        match read_frame(&mut half)? {
            WireMsg::StatsOk(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    fn send(&mut self, msg: &WireMsg) -> Result<(), ServerError> {
        write_frame_buf(&mut self.stream, msg, &mut self.scratch).map_err(ServerError::Wire)
    }

    fn receive(&mut self) -> Result<WireMsg, ServerError> {
        match read_frame(&mut self.stream)? {
            WireMsg::Err { code } => Err(ServerError::Remote(code)),
            WireMsg::Busy { retry_after_ms } => Err(ServerError::Busy { retry_after_ms }),
            msg => Ok(msg),
        }
    }
}

fn unexpected(msg: &WireMsg) -> ServerError {
    match msg {
        WireMsg::Err { code } => ServerError::Remote(*code),
        WireMsg::Busy { retry_after_ms } => ServerError::Busy { retry_after_ms: *retry_after_ms },
        other => ServerError::Protocol(format!("unexpected frame {other:?}")),
    }
}

impl CounterBackend for RemoteCounter {
    type Error = ServerError;

    fn processors(&self) -> usize {
        self.processors as usize
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<u64, Self::Error> {
        self.inc_as(initiator)
    }

    fn inc_batch(&mut self, initiator: ProcessorId, count: u64) -> Result<u64, Self::Error> {
        let request_id = self.next_request;
        self.next_request += 1;
        self.inc_batch_with_id(request_id, count, Some(initiator.index() as u64))
    }

    fn bottleneck(&self) -> u64 {
        self.stats_shared().map_or(0, |s| s.bottleneck)
    }

    fn retirements(&self) -> u64 {
        self.stats_shared().map_or(0, |s| s.retirements)
    }
}
