//! # distctr-server
//!
//! The TCP service layer that puts **real clients** in front of the
//! retirement tree. After this crate, the counter is no longer only
//! reachable in-process: a [`CounterServer`] hosts any
//! [`distctr_core::CounterBackend`] (the simulator's `TreeCounter`, the
//! real-threads `ThreadedTreeCounter`, or anything else implementing the
//! trait) behind a length-prefixed binary wire protocol, and a
//! [`RemoteCounter`] is a native client implementing the same backend
//! interface — a counter whose "network" is a socket.
//!
//! Six layers, all on `std::net` (no registry dependencies, preserving
//! the offline shims-only build):
//!
//! 1. [`wire`] — the sans-io codec: `Hello`/`Inc`/`Stats` requests,
//!    `HelloOk`/`IncOk`/`StatsOk`/`Err` replies, hardened against
//!    truncated frames, oversized length prefixes and garbage tags;
//!    parses from buffers, so both serving engines share it.
//! 2. [`server`] — the thread-per-connection engine with the **session
//!    layer**: connections map to sessions, sessions map to
//!    `ProcessorId`s, and each session carries the dedup state that
//!    makes reconnect-and-retry exactly-once (riding the threaded
//!    backend's migrating root reply cache where available).
//! 3. [`readiness`] — the same server on one reactor thread:
//!    nonblocking connections as slab-held state machines over
//!    `distctr-reactor`'s epoll/poll poller, partial-frame buffers,
//!    writable-interest backpressure, `Busy` shedding on fd
//!    exhaustion ([`CounterServer::serve_async`]). Sessions,
//!    combining, drain, and exactly-once carry over unchanged.
//! 4. [`client`] — [`RemoteCounter`], with first-class resume/replay.
//! 5. [`load`] — a closed- and open-loop load generator reporting
//!    throughput and p50/p99/max client-observed latency.
//! 6. [`mux`] — the C10k client side: [`run_mux`] multiplexes
//!    thousands of open-loop connections from a single thread over the
//!    same poller, with a paced connect ramp and no per-op allocation.
//!
//! ```
//! use distctr_net::ThreadedTreeCounter;
//! use distctr_server::{CounterServer, LoadConfig, RemoteCounter, ServerError};
//!
//! # fn main() -> Result<(), ServerError> {
//! let backend = ThreadedTreeCounter::new(8).map_err(|e| ServerError::Backend(e.to_string()))?;
//! let mut server = CounterServer::serve(backend)?;
//!
//! // Real clients over loopback TCP, 2 connections, 16 ops.
//! let report = distctr_server::run_load(server.local_addr(), &LoadConfig::closed(2, 16))?;
//! assert!(report.values_are_sequential_from(0), "exactly-once, observed over the wire");
//!
//! let stats = server.stats();
//! assert_eq!(stats.ops, 16);
//! server.shutdown()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod load;
pub mod mux;
pub mod readiness;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, RemoteCounter, RetryPolicy};
pub use error::{ErrCode, ServerError};
pub use load::{run_load, ConnReport, KeyLoad, KeyMix, LoadConfig, LoadMode, LoadReport};
pub use mux::{run_mux, MuxConfig};
pub use server::{CounterServer, ServerConfig, DEDUP_WINDOW};
pub use wire::{StatsSnapshot, WireError, WireMsg, MAX_FRAME};
