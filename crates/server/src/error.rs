//! Error types of the service layer.

use std::error::Error;
use std::fmt;

use crate::wire::WireError;

/// A failure code a server reports to its client over the wire
/// (`WireMsg::Err`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrCode {
    /// The frame's length prefix exceeded the limit.
    Oversized,
    /// The frame's tag byte was not a known message.
    UnknownTag,
    /// The frame's payload did not match its tag's layout.
    Malformed,
    /// The connection's first frame was not a `Hello`, or a `Hello`
    /// arrived mid-session.
    BadHandshake,
    /// A `Hello` tried to resume a session this server does not know.
    UnknownSession,
    /// An `Inc` named an initiator outside the hosted network.
    BadInitiator,
    /// The hosted backend failed the operation (timeout, lost peer).
    Backend,
    /// A frame arrived whose payload failed its CRC-32: corrupted in
    /// transit. The connection is desynchronized; retry on a fresh one.
    Corrupt,
    /// A keyed operation named a counter the hosted backend does not
    /// route (single-counter backends host only key 0; a keyspace may
    /// be at its key limit). Not retryable: the same key will keep
    /// failing.
    NoSuchKey,
    /// A code this client build does not know (forward compatibility).
    Other(u16),
}

impl ErrCode {
    /// The wire representation.
    #[must_use]
    pub fn as_u16(self) -> u16 {
        match self {
            ErrCode::Oversized => 1,
            ErrCode::UnknownTag => 2,
            ErrCode::Malformed => 3,
            ErrCode::BadHandshake => 4,
            ErrCode::UnknownSession => 5,
            ErrCode::BadInitiator => 6,
            ErrCode::Backend => 7,
            ErrCode::Corrupt => 8,
            ErrCode::NoSuchKey => 9,
            ErrCode::Other(c) => c,
        }
    }

    /// Decodes a wire code, mapping unknown values to
    /// [`ErrCode::Other`].
    #[must_use]
    pub fn from_u16(code: u16) -> Self {
        match code {
            1 => ErrCode::Oversized,
            2 => ErrCode::UnknownTag,
            3 => ErrCode::Malformed,
            4 => ErrCode::BadHandshake,
            5 => ErrCode::UnknownSession,
            6 => ErrCode::BadInitiator,
            7 => ErrCode::Backend,
            8 => ErrCode::Corrupt,
            9 => ErrCode::NoSuchKey,
            other => ErrCode::Other(other),
        }
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrCode::Oversized => write!(f, "frame too large"),
            ErrCode::UnknownTag => write!(f, "unknown frame tag"),
            ErrCode::Malformed => write!(f, "malformed frame"),
            ErrCode::BadHandshake => write!(f, "expected a Hello handshake"),
            ErrCode::UnknownSession => write!(f, "unknown session"),
            ErrCode::BadInitiator => write!(f, "initiator out of range"),
            ErrCode::Backend => write!(f, "backend failure"),
            ErrCode::Corrupt => write!(f, "frame failed its checksum"),
            ErrCode::NoSuchKey => write!(f, "no such counter key"),
            ErrCode::Other(c) => write!(f, "unknown error code {c}"),
        }
    }
}

/// Errors of the server, the [`RemoteCounter`] client and the load
/// generator.
///
/// [`RemoteCounter`]: crate::RemoteCounter
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServerError {
    /// A codec or transport failure.
    Wire(WireError),
    /// The peer reported a failure over the wire.
    Remote(ErrCode),
    /// The peer sent a well-formed frame the protocol does not allow
    /// here (e.g. an `IncOk` answering a `Stats`).
    Protocol(String),
    /// Binding, accepting or configuring sockets failed.
    Io(String),
    /// Constructing the hosted backend failed.
    Backend(String),
    /// The server shed the request or connection under overload; back
    /// off for the carried hint and retry (the request was not applied,
    /// so the retry stays exactly-once). [`crate::RetryPolicy`] honors
    /// the hint automatically.
    Busy {
        /// The server's backoff hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// The retry budget was exhausted without a definitive answer; the
    /// wrapped error is the last attempt's failure. The operation may
    /// or may not have been applied server-side — only a successful
    /// replay of the same request id can tell.
    RetriesExhausted(Box<ServerError>),
    /// The server (or client) was already shut down.
    ShutDown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Wire(e) => write!(f, "wire failure: {e}"),
            ServerError::Remote(code) => write!(f, "server reported: {code}"),
            ServerError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServerError::Io(msg) => write!(f, "socket failure: {msg}"),
            ServerError::Backend(msg) => write!(f, "backend failure: {msg}"),
            ServerError::Busy { retry_after_ms } => {
                write!(f, "server busy, retry after {retry_after_ms} ms")
            }
            ServerError::RetriesExhausted(last) => {
                write!(f, "retry budget exhausted; last failure: {last}")
            }
            ServerError::ShutDown => write!(f, "service has been shut down"),
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Wire(e) => Some(e),
            ServerError::RetriesExhausted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        ServerError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn err_codes_round_trip() {
        for code in [
            ErrCode::Oversized,
            ErrCode::UnknownTag,
            ErrCode::Malformed,
            ErrCode::BadHandshake,
            ErrCode::UnknownSession,
            ErrCode::BadInitiator,
            ErrCode::Backend,
            ErrCode::Corrupt,
            ErrCode::NoSuchKey,
            ErrCode::Other(4242),
        ] {
            assert_eq!(ErrCode::from_u16(code.as_u16()), code);
        }
    }

    #[test]
    fn displays_are_informative() {
        assert!(ServerError::Remote(ErrCode::UnknownSession).to_string().contains("session"));
        assert!(ServerError::Wire(WireError::Closed).to_string().contains("closed"));
        assert!(ServerError::Protocol("surprise".into()).to_string().contains("surprise"));
        assert!(ErrCode::Other(99).to_string().contains("99"));
    }
}
