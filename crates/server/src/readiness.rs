//! The readiness-based async serving core: one reactor thread, every
//! connection.
//!
//! [`CounterServer::serve_async`] replaces the thread-per-connection
//! hot path with a single event loop over a
//! [`distctr_reactor::Poller`]: the listener, the server's wakeup pipe
//! and every client socket are level-triggered registrations, and each
//! connection is a small state machine owning its partial-frame read
//! buffer and its unsent write queue. Where the threaded server spends
//! one OS thread (8 KiB+ of stack, a scheduler slot, a 50 ms poll tick)
//! per connection, the reactor spends one slab slot — which is what
//! lets one process hold 10,000+ concurrent connections (experiment
//! E27).
//!
//! The protocol logic is deliberately **shared, not reimplemented**:
//! dispatch calls the same `establish`/`serve_inc`/`serve_batch_inc`
//! helpers as the threaded path, and flat combining enqueues into the
//! same combiner queue — so every exactly-once property (session dedup
//! tables, backend tickets, reconnect-resume-replay) holds by
//! construction on both paths. The one genuinely new mechanism is
//! reply routing: the combiner thread must never touch a nonblocking
//! socket it does not own, so its replies travel over a channel back
//! to the reactor ([`ReplySink::Queued`]), which queues them behind
//! the connection's write buffer and flushes on writability.
//!
//! Backpressure is interest, not blocking: a reply that does not fit
//! the socket buffer parks in the connection's
//! [`crate::wire::WriteBuffer`] and arms write interest; a connection
//! whose unsent queue passes a high-water mark loses read interest
//! until it drains (a peer that stops reading stops being read from).
//! Descriptor exhaustion follows the accept loop's discipline: count
//! it, answer one waiting client `Busy` through the reserve
//! descriptor, and park the listener for a backoff instead of
//! hot-looping on `EMFILE`.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use distctr_core::{CounterBackend, DEFAULT_KEY};
use distctr_reactor::{is_fd_exhaustion, FdReserve, Interest, Poller, Waker};

use crate::error::{ErrCode, ServerError};
use crate::server::{
    combiner_loop, enqueue_inc, establish, serve_batch_inc, serve_inc, session_processor, snapshot,
    wire_err_code, ActiveGuard, CounterServer, ReplySink, ServerConfig, Shared,
};
use crate::wire::{encode_frame_into, try_decode_frame, WireMsg, WriteBuffer};

/// Reactor token of the listening socket.
const TOKEN_LISTENER: usize = 0;
/// Reactor token of the wakeup pipe.
const TOKEN_WAKER: usize = 1;
/// First connection token; slab slot `i` is token `TOKEN_BASE + i`.
const TOKEN_BASE: usize = 2;

/// Unsent-bytes threshold past which a connection loses read interest:
/// a peer that stops draining replies stops being read from, so its
/// buffered state stays bounded by what it already sent.
const WRITE_HIGH_WATER: usize = 64 * 1024;
/// Read-buffer bound: more unparsed bytes than this parks read
/// interest until dispatch catches up (cannot trigger with legal
/// frames under `WRITE_HIGH_WATER`, but a hostile peer must not grow
/// it unboundedly).
const READ_HIGH_WATER: usize = 64 * 1024;
/// Per-readable-event read budget, so one firehose connection cannot
/// starve the rest of the slab (level triggering re-reports the rest).
const READ_BURST: usize = 16 * 1024;

impl<B: CounterBackend + Send + 'static> CounterServer<B> {
    /// Serves `backend` on an ephemeral loopback port through the
    /// readiness loop — the async counterpart of
    /// [`CounterServer::serve`]. Incs are served inline on the reactor
    /// thread (sequential mode).
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if binding, the poller, or spawning fails.
    pub fn serve_async(backend: B) -> Result<Self, ServerError> {
        Self::serve_async_on_with("127.0.0.1:0", backend, false, ServerConfig::default())
    }

    /// [`CounterServer::serve_async`] with explicit [`ServerConfig`]
    /// knobs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::serve_async`].
    pub fn serve_async_with(backend: B, config: ServerConfig) -> Result<Self, ServerError> {
        Self::serve_async_on_with("127.0.0.1:0", backend, false, config)
    }

    /// The async counterpart of [`CounterServer::serve_combining`]:
    /// the reactor enqueues incs for the shared combiner thread and
    /// the combiner's replies flow back through the reactor's reply
    /// channel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::serve_async`].
    pub fn serve_async_combining(backend: B) -> Result<Self, ServerError> {
        Self::serve_async_on_with("127.0.0.1:0", backend, true, ServerConfig::default())
    }

    /// [`CounterServer::serve_async_combining`] with explicit
    /// [`ServerConfig`] knobs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::serve_async`].
    pub fn serve_async_combining_with(
        backend: B,
        config: ServerConfig,
    ) -> Result<Self, ServerError> {
        Self::serve_async_on_with("127.0.0.1:0", backend, true, config)
    }

    /// Binds `addr` and starts the readiness serving loop, hosting
    /// `backend`; `combining` selects the inc path exactly as it does
    /// for [`CounterServer::serve_on_with`].
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if binding, the poller, or spawning fails.
    pub fn serve_async_on_with(
        addr: impl ToSocketAddrs,
        backend: B,
        combining: bool,
        config: ServerConfig,
    ) -> Result<Self, ServerError> {
        let io = |e: std::io::Error| ServerError::Io(e.to_string());
        let listener = TcpListener::bind(addr).map_err(io)?;
        let addr = listener.local_addr().map_err(io)?;
        listener.set_nonblocking(true).map_err(io)?;
        let shared = Arc::new(Shared::new(backend, config, combining));
        let stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let waker = Arc::new(Waker::new().map_err(io)?);
        // Fail construction, not the serving thread, if no poller can
        // be built or a registration is refused.
        let mut poller = Poller::new().map_err(io)?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ).map_err(io)?;
        poller.register(waker.fd(), TOKEN_WAKER, Interest::READ).map_err(io)?;
        let combiner = if combining {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            Some(
                std::thread::Builder::new()
                    .name("distctr-combiner".into())
                    .spawn(move || combiner_loop(&shared, &stop))
                    .map_err(|e| ServerError::Io(e.to_string()))?,
            )
        } else {
            None
        };
        let reactor_handle = {
            let (reply_tx, reply_rx) = mpsc::channel();
            let mut reactor = Reactor {
                listener,
                poller,
                shared: Arc::clone(&shared),
                stop: Arc::clone(&stop),
                draining: Arc::clone(&draining),
                waker: Arc::clone(&waker),
                conns: Vec::new(),
                free: Vec::new(),
                reply_tx,
                reply_rx,
                reserve: FdReserve::new(),
                paused_until: None,
                scratch: vec![0u8; READ_BURST],
                drained_once: false,
            };
            std::thread::Builder::new()
                .name("distctr-reactor".into())
                .spawn(move || reactor.run())
                .map_err(|e| ServerError::Io(e.to_string()))?
        };
        Ok(CounterServer {
            shared: Some(shared),
            stop,
            draining,
            addr,
            accept: Some(reactor_handle),
            combiner,
            conns: Arc::new(Mutex::new(Vec::new())),
            waker,
        })
    }
}

/// One connection's state machine: the socket, what arrived but has
/// not parsed into a frame yet, what was sent but not yet accepted by
/// the kernel, and where the session stands.
struct Conn {
    stream: TcpStream,
    /// Unparsed inbound bytes (a frame torn across readable events
    /// accumulates here until `try_decode_frame` completes it).
    read_buf: Vec<u8>,
    /// Encoded-but-unsent outbound frames.
    write: WriteBuffer,
    /// `Some((session id, session key))` once the handshake landed.
    session: Option<(u64, u64)>,
    /// Queued combining incs whose replies have not been delivered.
    inflight: Arc<AtomicUsize>,
    /// The interest currently registered with the poller.
    interest: Interest,
    /// The peer closed its write half (no more requests will arrive).
    peer_closed: bool,
    /// Protocol decision to close: serve nothing further, flush what
    /// is queued, then drop.
    closing: bool,
    /// Decrements the server's active-connection count on drop.
    _guard: ActiveGuard,
}

impl Conn {
    /// Whether this connection has nothing left to do: no more reads
    /// will be served, every reply was handed to the kernel, and no
    /// combining reply is still in flight toward it.
    fn finished(&self) -> bool {
        (self.closing || self.peer_closed)
            && self.write.is_empty()
            && self.inflight.load(Ordering::SeqCst) == 0
    }

    /// The interest this state machine wants right now.
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.closing
                && !self.peer_closed
                && self.write.pending() < WRITE_HIGH_WATER
                && self.read_buf.len() < READ_HIGH_WATER,
            writable: !self.write.is_empty(),
        }
    }
}

/// The single-threaded readiness loop; see the module docs.
struct Reactor<B: CounterBackend + Send + 'static> {
    listener: TcpListener,
    poller: Poller,
    shared: Arc<Shared<B>>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    waker: Arc<Waker>,
    /// Connection slab: token `TOKEN_BASE + i` lives in `conns[i]`.
    conns: Vec<Option<Conn>>,
    /// Free slab slots, reused before the slab grows.
    free: Vec<usize>,
    /// Cloned into every [`ReplySink::Queued`] the combiner receives.
    reply_tx: mpsc::Sender<(usize, WireMsg)>,
    /// Combiner replies routed back to their connections' buffers.
    reply_rx: mpsc::Receiver<(usize, WireMsg)>,
    /// Answers `EMFILE` with `Busy` instead of a hung client.
    reserve: FdReserve,
    /// While set, the listener's interest is parked (fd exhaustion
    /// backoff) and the poll carries a matching timeout.
    paused_until: Option<Instant>,
    /// Read scratch, shared across connections (one thread, one
    /// buffer — per-connection scratch would be 10k copies of it).
    scratch: Vec<u8>,
    /// The drain flag has been observed and the final read pass done.
    drained_once: bool,
}

impl<B: CounterBackend + Send + 'static> Reactor<B> {
    fn run(&mut self) {
        let mut events = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            // Fd-exhaustion backoff: re-arm the listener once the pause
            // expires; while paused, bound the wait by what remains.
            if let Some(until) = self.paused_until {
                if Instant::now() >= until
                    && self
                        .poller
                        .modify(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
                        .is_ok()
                {
                    self.paused_until = None;
                }
            }
            let timeout = self.paused_until.map(|t| t.saturating_duration_since(Instant::now()));
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            self.waker.drain();
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKER => {}
                    token => self.conn_event(token - TOKEN_BASE, ev.readable, ev.writable),
                }
            }
            if self.draining.load(Ordering::SeqCst) && !self.drained_once {
                self.drained_once = true;
                // The drain contract mirrors the threaded path: bytes
                // already received are still read and served; after
                // that, each connection closes at its frame boundary.
                for slot in 0..self.conns.len() {
                    self.conn_event(slot, true, false);
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.closing = true;
                    }
                }
            }
            self.route_replies();
            self.close_finished();
        }
        // Hard stop: every connection drops (closing its socket); the
        // guards bring active_conns back to zero.
        self.conns.clear();
    }

    /// Accepts the whole burst behind one listener-readable event.
    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if is_fd_exhaustion(&e) => {
                    self.shared.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    let busy = self.shared.busy();
                    self.reserve.shed_one(&self.listener, |s| {
                        let _ = send_once(s, &busy);
                    });
                    if self
                        .poller
                        .modify(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::NONE)
                        .is_ok()
                    {
                        self.paused_until =
                            Some(Instant::now() + self.shared.config.busy_retry_after);
                    }
                    break;
                }
                Err(_) => {
                    self.shared.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }

    /// Admission control plus registration of one accepted stream.
    fn admit(&mut self, mut stream: TcpStream) {
        let at_cap = self
            .shared
            .config
            .max_conns
            .is_some_and(|cap| self.shared.active_conns.load(Ordering::SeqCst) >= cap);
        if self.draining.load(Ordering::SeqCst) || at_cap {
            let _ = send_once(&mut stream, &self.shared.busy());
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        if self.poller.register(stream.as_raw_fd(), TOKEN_BASE + slot, Interest::READ).is_err() {
            self.free.push(slot);
            return;
        }
        self.shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        self.shared.active_conns.fetch_add(1, Ordering::SeqCst);
        self.conns[slot] = Some(Conn {
            stream,
            read_buf: Vec::new(),
            write: WriteBuffer::new(),
            session: None,
            inflight: Arc::new(AtomicUsize::new(0)),
            interest: Interest::READ,
            peer_closed: false,
            closing: false,
            _guard: ActiveGuard(Arc::clone(&self.shared.active_conns)),
        });
    }

    /// One connection's readiness: read and dispatch what arrived,
    /// flush what is queued, re-arm interest to match the new state.
    fn conn_event(&mut self, slot: usize, readable: bool, writable: bool) {
        let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        if readable && !conn.closing && !conn.peer_closed {
            self.fill_read_buf(&mut conn);
            self.dispatch_frames(slot, &mut conn);
        }
        if writable || !conn.write.is_empty() {
            self.flush(&mut conn);
        }
        self.park(slot, conn);
    }

    /// Reads up to the burst budget into the connection's buffer.
    fn fill_read_buf(&mut self, conn: &mut Conn) {
        let mut taken = 0usize;
        while taken < READ_BURST && conn.read_buf.len() < READ_HIGH_WATER {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&self.scratch[..n]);
                    taken += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transport failure: nothing further to serve and
                    // nothing worth flushing into a broken socket.
                    conn.peer_closed = true;
                    conn.closing = true;
                    break;
                }
            }
        }
    }

    /// Parses and serves every complete frame buffered on `conn`.
    fn dispatch_frames(&mut self, slot: usize, conn: &mut Conn) {
        let mut parsed = 0usize;
        while !conn.closing {
            match try_decode_frame(&conn.read_buf[parsed..]) {
                Ok(None) => break,
                Ok(Some((msg, consumed))) => {
                    parsed += consumed;
                    self.serve_frame(slot, conn, msg);
                }
                Err(e) => {
                    // Same taxonomy as the threaded path: count it,
                    // send the typed code if one maps, drop the
                    // connection — the stream is desynchronized.
                    self.shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                    if let Some(code) = wire_err_code(&e) {
                        conn.write.push(&WireMsg::Err { code });
                    }
                    conn.closing = true;
                }
            }
        }
        if parsed > 0 {
            conn.read_buf.drain(..parsed);
        }
    }

    /// Serves one decoded frame — the readiness mirror of the threaded
    /// session loop, against the same shared protocol helpers.
    fn serve_frame(&mut self, slot: usize, conn: &mut Conn, msg: WireMsg) {
        let Some((session_id, session_key)) = conn.session else {
            // Handshake: the first frame must be a Hello (either
            // version); anything else is a protocol error.
            match msg {
                WireMsg::Hello { resume } => self.handshake(conn, resume, DEFAULT_KEY),
                WireMsg::HelloKeyed { resume, key } => self.handshake(conn, resume, key),
                _ => {
                    self.shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                    conn.write.push(&WireMsg::Err { code: ErrCode::BadHandshake });
                    conn.closing = true;
                }
            }
            return;
        };
        match msg {
            WireMsg::Inc { request_id, initiator } => {
                self.inc(slot, conn, session_id, session_key, request_id, initiator);
            }
            WireMsg::KeyInc { key, request_id, initiator } => {
                self.inc(slot, conn, session_id, key, request_id, initiator);
            }
            WireMsg::BatchInc { request_id, count, initiator } => {
                let reply = serve_batch_inc(
                    &self.shared,
                    session_id,
                    session_key,
                    request_id,
                    count,
                    initiator,
                );
                conn.write.push(&reply);
            }
            WireMsg::KeyBatchInc { key, request_id, count, initiator } => {
                let reply =
                    serve_batch_inc(&self.shared, session_id, key, request_id, count, initiator);
                conn.write.push(&reply);
            }
            WireMsg::Read { key } => {
                let value = self.shared.lock_inner().backend.read_key(key);
                let reply = match value {
                    Some(value) => WireMsg::ReadOk { key, value },
                    None => WireMsg::Err { code: ErrCode::NoSuchKey },
                };
                conn.write.push(&reply);
            }
            WireMsg::Stats => {
                let reply = WireMsg::StatsOk(snapshot(&self.shared));
                conn.write.push(&reply);
            }
            WireMsg::Hello { .. } | WireMsg::HelloKeyed { .. } => {
                self.shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                conn.write.push(&WireMsg::Err { code: ErrCode::BadHandshake });
                conn.closing = true;
            }
            WireMsg::HelloOk { .. }
            | WireMsg::IncOk { .. }
            | WireMsg::BatchOk { .. }
            | WireMsg::StatsOk(_)
            | WireMsg::Busy { .. }
            | WireMsg::ReadOk { .. }
            | WireMsg::Err { .. } => {
                self.shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                conn.write.push(&WireMsg::Err { code: ErrCode::Malformed });
                conn.closing = true;
            }
        }
    }

    /// Resolves a handshake and queues the `HelloOk` (or the error).
    fn handshake(&mut self, conn: &mut Conn, resume: Option<u64>, key: u64) {
        match establish(&self.shared, resume, key) {
            Ok((session_id, session_key)) => {
                conn.session = Some((session_id, session_key));
                let processor = session_processor(&self.shared, session_id);
                conn.write.push(&WireMsg::HelloOk { session: session_id, processor });
            }
            Err(code) => {
                conn.write.push(&WireMsg::Err { code });
                conn.closing = true;
            }
        }
    }

    /// One inc on the selected serving path: combining servers enqueue
    /// (the combiner's reply returns through the reply channel),
    /// sequential servers serve inline on the reactor thread.
    fn inc(
        &mut self,
        slot: usize,
        conn: &mut Conn,
        session_id: u64,
        key: u64,
        request_id: u64,
        initiator: Option<u64>,
    ) {
        match &self.shared.combine {
            Some(combine) => {
                let over_cap = self
                    .shared
                    .config
                    .max_inflight_per_conn
                    .is_some_and(|cap| conn.inflight.load(Ordering::SeqCst) >= cap);
                if over_cap {
                    let busy = self.shared.busy();
                    conn.write.push(&busy);
                    return;
                }
                let sink = ReplySink::Queued {
                    token: slot,
                    replies: self.reply_tx.clone(),
                    waker: Arc::clone(&self.waker),
                };
                enqueue_inc(combine, session_id, key, request_id, initiator, sink, &conn.inflight);
            }
            None => {
                let reply = serve_inc(&self.shared, session_id, key, request_id, initiator);
                conn.write.push(&reply);
            }
        }
    }

    /// Flushes the connection's write queue as far as the kernel takes
    /// it; a short write leaves the tail queued and (via `park`) arms
    /// write interest.
    fn flush(&mut self, conn: &mut Conn) {
        if conn.write.flush_into(&mut conn.stream).is_err() {
            // Broken transport: replies can no longer be delivered.
            conn.closing = true;
            conn.peer_closed = true;
        }
    }

    /// Returns the connection to its slab slot with its interest
    /// matching its state.
    fn park(&mut self, slot: usize, mut conn: Conn) {
        let desired = conn.desired_interest();
        if desired != conn.interest
            && self.poller.modify(conn.stream.as_raw_fd(), TOKEN_BASE + slot, desired).is_ok()
        {
            conn.interest = desired;
        }
        self.conns[slot] = Some(conn);
    }

    /// Moves combiner replies from the channel into their connections'
    /// write buffers and flushes them opportunistically.
    fn route_replies(&mut self) {
        let mut touched: VecDeque<usize> = VecDeque::new();
        while let Ok((slot, msg)) = self.reply_rx.try_recv() {
            if let Some(Some(conn)) = self.conns.get_mut(slot) {
                conn.write.push(&msg);
                if !touched.contains(&slot) {
                    touched.push_back(slot);
                }
            }
            // A reply for a vanished connection is dropped; the value
            // is recorded in the session's answer table, so the
            // client's reconnect-resume-retry is answered exactly-once.
        }
        for slot in touched {
            if let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) {
                self.flush(&mut conn);
                self.park(slot, conn);
            }
        }
    }

    /// Closes every connection with nothing left to do. Two-phase: the
    /// candidate set is snapshotted *before* a final reply sweep, so a
    /// combining reply that raced the in-flight count to zero is
    /// already in the write buffer (making the candidate non-empty and
    /// keeping it alive) by the time the close is committed.
    fn close_finished(&mut self) {
        let candidates: Vec<usize> = (0..self.conns.len())
            .filter(|&i| self.conns[i].as_ref().is_some_and(Conn::finished))
            .collect();
        if candidates.is_empty() {
            return;
        }
        self.route_replies();
        for slot in candidates {
            let still_done = self.conns[slot].as_ref().is_some_and(Conn::finished);
            if still_done {
                if let Some(conn) = self.conns[slot].take() {
                    let _ = self.poller.deregister(conn.stream.as_raw_fd());
                    self.free.push(slot);
                    drop(conn);
                }
            }
        }
    }
}

/// Best-effort single-shot frame send on a socket we are about to
/// drop (admission sheds, the `EMFILE` reserve path): encode, offer
/// the kernel the bytes once, never block the reactor on a peer.
fn send_once(stream: &mut TcpStream, msg: &WireMsg) -> std::io::Result<()> {
    let _ = stream.set_nonblocking(true);
    let mut frame = Vec::with_capacity(24);
    encode_frame_into(msg, &mut frame);
    stream.write_all(&frame)
}
