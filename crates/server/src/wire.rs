//! The length-prefixed binary wire codec.
//!
//! Every frame is a little-endian `u32` payload length, a little-endian
//! `u32` CRC-32 of the payload, then the payload: one tag byte and
//! fixed-width little-endian fields. The format is deliberately
//! minimal — no self-describing envelope, no registry dependencies —
//! but decoding is hardened: a partial read surfaces as
//! [`WireError::Truncated`] (never a panic or a wedged loop), a length
//! prefix beyond [`MAX_FRAME`] is rejected *before* any allocation as
//! [`WireError::Oversized`], a payload whose bytes were damaged in
//! transit fails the checksum as [`WireError::Checksum`] (TCP's own
//! checksum is weak, and the chaos proxy's corrupt toxic flips bits on
//! purpose — exactly-once retry is only sound if corruption is
//! *detected*, never mis-decoded into a different valid frame), an
//! unknown tag or trailing garbage is a typed error, and a peer closing
//! between frames is the distinct [`WireError::Closed`] so servers can
//! tell a clean disconnect from a mid-frame one.

use std::io::{ErrorKind, Read, Write};

use crate::error::ErrCode;

/// Upper bound on a frame's payload length, in bytes. Every legal
/// message fits comfortably; anything larger is an attack or a corrupt
/// prefix and is rejected before allocation.
pub const MAX_FRAME: u32 = 256;

// Payload tags. Client-to-server frames use the low range,
// server-to-client the high range.
const TAG_HELLO: u8 = 0x01;
const TAG_INC: u8 = 0x02;
const TAG_STATS: u8 = 0x03;
const TAG_BATCH_INC: u8 = 0x04;
const TAG_HELLO_KEYED: u8 = 0x05;
const TAG_KEY_INC: u8 = 0x06;
const TAG_KEY_BATCH_INC: u8 = 0x07;
const TAG_READ: u8 = 0x08;
const TAG_HELLO_OK: u8 = 0x81;
const TAG_INC_OK: u8 = 0x82;
const TAG_STATS_OK: u8 = 0x83;
const TAG_BATCH_OK: u8 = 0x84;
const TAG_BUSY: u8 = 0x85;
const TAG_READ_OK: u8 = 0x86;
const TAG_ERR: u8 = 0xEE;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the per-frame
/// integrity check. Table-free bitwise form: frames are at most
/// [`MAX_FRAME`] bytes, so the 8-shifts-per-byte cost is noise next to
/// the syscall that carries the frame.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A server-side statistics snapshot, carried by [`WireMsg::StatsOk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Processors in the hosted network.
    pub processors: u64,
    /// Sessions ever created.
    pub sessions: u64,
    /// Connections accepted (reconnects included).
    pub connections: u64,
    /// Operations applied by the backend.
    pub ops: u64,
    /// Retries answered exactly-once from a reply cache.
    pub deduped: u64,
    /// Frames rejected by the codec (truncated, oversized, garbage).
    pub wire_errors: u64,
    /// Batched traversals driven by the flat-combining front-end
    /// (`ops / combined_traversals` is the realized mean batch size).
    pub combined_traversals: u64,
    /// Requests and connections refused with a [`WireMsg::Busy`] by the
    /// admission/overload controls (shed, not failed: the reply carries
    /// a retry-after hint and a retrying client converges).
    pub shed: u64,
    /// Combiner/backend panics contained by the supervisor: each one is
    /// a round whose waiters were told to retry instead of a dead
    /// server.
    pub panics_contained: u64,
    /// The backend's bottleneck load `max_p m_p`.
    pub bottleneck: u64,
    /// Worker retirements inside the backend.
    pub retirements: u64,
    /// Counters hosted by the backend's keyspace (1 for single-counter
    /// backends).
    pub keys_hosted: u64,
    /// Keys promoted centralized → tree so far.
    pub promotions: u64,
    /// Keys demoted tree → centralized so far.
    pub demotions: u64,
    /// Keys marked for migration that have not yet settled.
    pub migrations_inflight: u64,
    /// `accept(2)` failures absorbed by the accept loop — descriptor
    /// exhaustion (`EMFILE`/`ENFILE`) shed with a [`WireMsg::Busy`] via
    /// the reserve descriptor, plus transient per-connection errors
    /// (`ECONNABORTED` and friends). Counted, answered where possible,
    /// never allowed to wedge the listener.
    pub accept_errors: u64,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// Client handshake: open a fresh session, or resume session
    /// `resume` after a reconnect (keeping its dedup state).
    Hello {
        /// Session id to resume, if any.
        resume: Option<u64>,
    },
    /// One increment request. `request_id` is the client's retry key:
    /// resending the same id after a reconnect must not increment again.
    /// `initiator` optionally charges the operation to an explicit
    /// processor; the default is the session's assigned processor.
    Inc {
        /// Client-chosen retry/dedup key, unique per session.
        request_id: u64,
        /// Explicit initiating processor, if the client wants one.
        initiator: Option<u64>,
    },
    /// A batch of `count` increments as one backend traversal. The reply
    /// ([`WireMsg::BatchOk`]) grants the contiguous range
    /// `[first, first + count)`. `request_id` deduplicates retries like
    /// [`WireMsg::Inc`]: resending the same id (with the same count)
    /// returns the same range without incrementing again.
    BatchInc {
        /// Client-chosen retry/dedup key, unique per session.
        request_id: u64,
        /// Number of increments requested (must be ≥ 1).
        count: u64,
        /// Explicit initiating processor, if the client wants one.
        initiator: Option<u64>,
    },
    /// Request a [`WireMsg::StatsOk`] snapshot.
    Stats,
    /// Versioned client handshake for keyspace-aware clients: like
    /// [`WireMsg::Hello`] plus the **counter key** this session's
    /// unkeyed [`WireMsg::Inc`]/[`WireMsg::BatchInc`] operations are
    /// routed to. Resume keeps the session's dedup state exactly as the
    /// unkeyed handshake does.
    HelloKeyed {
        /// Session id to resume, if any.
        resume: Option<u64>,
        /// The counter this session operates on by default.
        key: u64,
    },
    /// One increment against counter `key` — [`WireMsg::Inc`] with an
    /// explicit key, usable from any session. Replied with
    /// [`WireMsg::IncOk`].
    KeyInc {
        /// The counter to increment.
        key: u64,
        /// Client-chosen retry/dedup key, unique per session.
        request_id: u64,
        /// Explicit initiating processor, if the client wants one.
        initiator: Option<u64>,
    },
    /// A batch of `count` increments against counter `key` — the keyed
    /// [`WireMsg::BatchInc`]. Replied with [`WireMsg::BatchOk`].
    KeyBatchInc {
        /// The counter to increment.
        key: u64,
        /// Client-chosen retry/dedup key, unique per session.
        request_id: u64,
        /// Number of increments requested (must be ≥ 1).
        count: u64,
        /// Explicit initiating processor, if the client wants one.
        initiator: Option<u64>,
    },
    /// Read counter `key`'s current value without incrementing.
    Read {
        /// The counter to read.
        key: u64,
    },
    /// Reply to [`WireMsg::Read`].
    ReadOk {
        /// Echo of the request's key.
        key: u64,
        /// The counter's value (grants so far).
        value: u64,
    },
    /// Server handshake reply.
    HelloOk {
        /// The session id (present this to resume after a reconnect).
        session: u64,
        /// The processor this session's operations are charged to.
        processor: u64,
    },
    /// Reply to [`WireMsg::Inc`].
    IncOk {
        /// Echo of the request's `request_id`.
        request_id: u64,
        /// The counter value handed out.
        value: u64,
    },
    /// Reply to [`WireMsg::BatchInc`]: the batch owns every value in
    /// `[first, first + count)`.
    BatchOk {
        /// Echo of the request's `request_id`.
        request_id: u64,
        /// First value of the granted range.
        first: u64,
        /// Echo of the granted count.
        count: u64,
    },
    /// Reply to [`WireMsg::Stats`].
    StatsOk(StatsSnapshot),
    /// Load-shed reply: the server is over its admission or in-flight
    /// limits (or draining) and refused the request *without* applying
    /// it. The client should back off for `retry_after_ms` and retry
    /// the same request id — nothing was consumed, so the retry is
    /// still exactly-once.
    Busy {
        /// Server's backoff hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// Server-reported failure.
    Err {
        /// What went wrong.
        code: ErrCode,
    },
}

/// Codec and transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The peer closed cleanly between frames (no bytes of a new frame
    /// had arrived). A normal disconnect, not a protocol violation.
    Closed,
    /// The stream ended in the middle of a frame.
    Truncated {
        /// Which part of the frame was cut short.
        context: &'static str,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The advertised payload length.
        len: u32,
        /// The permitted maximum.
        max: u32,
    },
    /// The payload's bytes do not match the frame's CRC-32: damaged in
    /// transit (or by a fault injector). The stream is desynchronized
    /// and must be discarded; a retry on a fresh connection is safe.
    Checksum {
        /// The checksum the frame header promised.
        expected: u32,
        /// The checksum of the bytes that actually arrived.
        found: u32,
    },
    /// The payload's tag byte is not a known message.
    UnknownTag(
        /// The offending tag.
        u8,
    ),
    /// The payload's length does not match its tag's layout, or a field
    /// holds an impossible value.
    Malformed(&'static str),
    /// An underlying I/O failure (connection reset, refused, ...).
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Truncated { context } => {
                write!(f, "stream ended mid-frame while reading {context}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte limit")
            }
            WireError::Checksum { expected, found } => {
                write!(f, "frame checksum mismatch: header says {expected:#010x}, payload hashes to {found:#010x}")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown frame tag 0x{tag:02x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::Io(msg) => write!(f, "i/o failure: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// `read_exact` that distinguishes EOF from transport errors. `at_start`
/// selects between [`WireError::Closed`] (EOF before any byte of the
/// frame) and [`WireError::Truncated`].
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    at_start: bool,
    context: &'static str,
) -> Result<(), WireError> {
    let mut read = 0usize;
    while read < buf.len() {
        match r.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(if at_start && read == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated { context }
                });
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                return Err(if at_start && read == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated { context }
                });
            }
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Reads one frame. See [`WireError`] for the failure taxonomy; in
/// particular a peer that closed between frames yields
/// [`WireError::Closed`], not a truncation.
///
/// # Errors
///
/// Any [`WireError`]; the reader is left mid-stream on error and should
/// be discarded except after [`WireError::Closed`].
pub fn read_frame(r: &mut impl Read) -> Result<WireMsg, WireError> {
    let mut len_buf = [0u8; 4];
    fill(r, &mut len_buf, true, "the length prefix")?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len, max: MAX_FRAME });
    }
    if len == 0 {
        return Err(WireError::Malformed("zero-length payload"));
    }
    let mut crc_buf = [0u8; 4];
    fill(r, &mut crc_buf, false, "the checksum")?;
    let expected = u32::from_le_bytes(crc_buf);
    let mut payload = vec![0u8; len as usize];
    fill(r, &mut payload, false, "the payload")?;
    let found = crc32(&payload);
    if found != expected {
        return Err(WireError::Checksum { expected, found });
    }
    decode(&payload)
}

/// Writes one frame, allocating a scratch buffer per call. Hot paths
/// (the server's per-connection loop, the load generator) should hold a
/// reusable buffer and call [`write_frame_buf`] instead.
///
/// # Errors
///
/// [`WireError::Io`] if the underlying write fails.
pub fn write_frame(w: &mut impl Write, msg: &WireMsg) -> Result<(), WireError> {
    let mut scratch = Vec::with_capacity(40);
    write_frame_buf(w, msg, &mut scratch)
}

/// Writes one frame through a caller-owned scratch buffer: the length
/// prefix, checksum and payload are assembled in `scratch` (cleared,
/// capacity kept) and written with a single `write_all`, so a
/// steady-state connection encodes frames with zero allocations.
///
/// # Errors
///
/// [`WireError::Io`] if the underlying write fails.
pub fn write_frame_buf(
    w: &mut impl Write,
    msg: &WireMsg,
    scratch: &mut Vec<u8>,
) -> Result<(), WireError> {
    scratch.clear();
    // Length-prefix + checksum placeholders, patched once the payload
    // is assembled.
    scratch.extend_from_slice(&[0u8; 8]);
    encode_into(msg, scratch);
    let payload_len = (scratch.len() - 8) as u32;
    debug_assert!(payload_len <= MAX_FRAME);
    let crc = crc32(&scratch[8..]);
    scratch[..4].copy_from_slice(&payload_len.to_le_bytes());
    scratch[4..8].copy_from_slice(&crc.to_le_bytes());
    w.write_all(scratch).map_err(|e| WireError::Io(e.to_string()))?;
    w.flush().map_err(|e| WireError::Io(e.to_string()))
}

/// Frames a raw payload exactly as [`write_frame_buf`] would — length
/// prefix, CRC-32, payload — without requiring it to be a legal
/// message. For tests and fuzzers that need byte-level control over
/// what goes on the wire while keeping the envelope valid.
#[must_use]
pub fn frame_raw(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes `msg` into a fresh payload (tag + fields, no length prefix).
#[must_use]
pub fn encode(msg: &WireMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    encode_into(msg, &mut out);
    out
}

/// Appends `msg`'s payload (tag + fields, no length prefix) to `out`.
fn encode_into(msg: &WireMsg, out: &mut Vec<u8>) {
    match msg {
        WireMsg::Hello { resume } => {
            out.push(TAG_HELLO);
            push_opt_u64(out, *resume);
        }
        WireMsg::Inc { request_id, initiator } => {
            out.push(TAG_INC);
            out.extend_from_slice(&request_id.to_le_bytes());
            push_opt_u64(out, *initiator);
        }
        WireMsg::BatchInc { request_id, count, initiator } => {
            out.push(TAG_BATCH_INC);
            out.extend_from_slice(&request_id.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
            push_opt_u64(out, *initiator);
        }
        WireMsg::Stats => out.push(TAG_STATS),
        WireMsg::HelloKeyed { resume, key } => {
            out.push(TAG_HELLO_KEYED);
            push_opt_u64(out, *resume);
            out.extend_from_slice(&key.to_le_bytes());
        }
        WireMsg::KeyInc { key, request_id, initiator } => {
            out.push(TAG_KEY_INC);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&request_id.to_le_bytes());
            push_opt_u64(out, *initiator);
        }
        WireMsg::KeyBatchInc { key, request_id, count, initiator } => {
            out.push(TAG_KEY_BATCH_INC);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&request_id.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
            push_opt_u64(out, *initiator);
        }
        WireMsg::Read { key } => {
            out.push(TAG_READ);
            out.extend_from_slice(&key.to_le_bytes());
        }
        WireMsg::ReadOk { key, value } => {
            out.push(TAG_READ_OK);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        }
        WireMsg::HelloOk { session, processor } => {
            out.push(TAG_HELLO_OK);
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&processor.to_le_bytes());
        }
        WireMsg::IncOk { request_id, value } => {
            out.push(TAG_INC_OK);
            out.extend_from_slice(&request_id.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        }
        WireMsg::BatchOk { request_id, first, count } => {
            out.push(TAG_BATCH_OK);
            out.extend_from_slice(&request_id.to_le_bytes());
            out.extend_from_slice(&first.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        WireMsg::StatsOk(s) => {
            out.push(TAG_STATS_OK);
            for field in [
                s.processors,
                s.sessions,
                s.connections,
                s.ops,
                s.deduped,
                s.wire_errors,
                s.combined_traversals,
                s.shed,
                s.panics_contained,
                s.bottleneck,
                s.retirements,
                s.keys_hosted,
                s.promotions,
                s.demotions,
                s.migrations_inflight,
                s.accept_errors,
            ] {
                out.extend_from_slice(&field.to_le_bytes());
            }
        }
        WireMsg::Busy { retry_after_ms } => {
            out.push(TAG_BUSY);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        WireMsg::Err { code } => {
            out.push(TAG_ERR);
            out.extend_from_slice(&code.as_u16().to_le_bytes());
        }
    }
}

fn push_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        None => out.push(0),
    }
}

/// Decodes a payload (tag + fields). Exposed for tests; transport code
/// uses [`read_frame`].
///
/// # Errors
///
/// [`WireError::UnknownTag`] or [`WireError::Malformed`].
pub fn decode(payload: &[u8]) -> Result<WireMsg, WireError> {
    let (&tag, body) = payload.split_first().ok_or(WireError::Malformed("empty payload"))?;
    let mut cur = Cursor { body, pos: 0 };
    let msg = match tag {
        TAG_HELLO => WireMsg::Hello { resume: cur.opt_u64()? },
        TAG_INC => WireMsg::Inc { request_id: cur.u64()?, initiator: cur.opt_u64()? },
        TAG_BATCH_INC => WireMsg::BatchInc {
            request_id: cur.u64()?,
            count: cur.u64()?,
            initiator: cur.opt_u64()?,
        },
        TAG_STATS => WireMsg::Stats,
        TAG_HELLO_KEYED => WireMsg::HelloKeyed { resume: cur.opt_u64()?, key: cur.u64()? },
        TAG_KEY_INC => {
            WireMsg::KeyInc { key: cur.u64()?, request_id: cur.u64()?, initiator: cur.opt_u64()? }
        }
        TAG_KEY_BATCH_INC => WireMsg::KeyBatchInc {
            key: cur.u64()?,
            request_id: cur.u64()?,
            count: cur.u64()?,
            initiator: cur.opt_u64()?,
        },
        TAG_READ => WireMsg::Read { key: cur.u64()? },
        TAG_READ_OK => WireMsg::ReadOk { key: cur.u64()?, value: cur.u64()? },
        TAG_HELLO_OK => WireMsg::HelloOk { session: cur.u64()?, processor: cur.u64()? },
        TAG_INC_OK => WireMsg::IncOk { request_id: cur.u64()?, value: cur.u64()? },
        TAG_BATCH_OK => {
            WireMsg::BatchOk { request_id: cur.u64()?, first: cur.u64()?, count: cur.u64()? }
        }
        TAG_STATS_OK => WireMsg::StatsOk(StatsSnapshot {
            processors: cur.u64()?,
            sessions: cur.u64()?,
            connections: cur.u64()?,
            ops: cur.u64()?,
            deduped: cur.u64()?,
            wire_errors: cur.u64()?,
            combined_traversals: cur.u64()?,
            shed: cur.u64()?,
            panics_contained: cur.u64()?,
            bottleneck: cur.u64()?,
            retirements: cur.u64()?,
            keys_hosted: cur.u64()?,
            promotions: cur.u64()?,
            demotions: cur.u64()?,
            migrations_inflight: cur.u64()?,
            accept_errors: cur.u64()?,
        }),
        TAG_BUSY => WireMsg::Busy { retry_after_ms: cur.u64()? },
        TAG_ERR => WireMsg::Err { code: ErrCode::from_u16(cur.u16()?) },
        other => return Err(WireError::UnknownTag(other)),
    };
    cur.finish()?;
    Ok(msg)
}

/// Bounds-checked field reader over a payload body.
struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.body.len());
        let end = end.ok_or(WireError::Malformed("payload shorter than its tag's layout"))?;
        let slice = &self.body[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("take(8) returns 8 bytes")))
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let bytes = self.take(2)?;
        Ok(u16::from_le_bytes(bytes.try_into().expect("take(2) returns 2 bytes")))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(WireError::Malformed("option flag must be 0 or 1")),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.body.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after the message"))
        }
    }
}

// --- sans-io framing for nonblocking transports -----------------------
//
// `read_frame`/`write_frame_buf` above assume a blocking stream: they
// loop until the frame is complete. A readiness loop cannot — a frame
// routinely arrives torn across several readable events, and a write
// routinely lands short when the peer's receive window is full. The
// pair below separates framing from I/O entirely: `try_decode_frame`
// consumes a byte buffer and says "not yet" without losing its place,
// and `WriteBuffer` owns the unsent tail so a short write resumes at
// the exact offset the kernel stopped at.

/// Appends one complete frame (length prefix, CRC-32, payload) for
/// `msg` to `out` without clearing it — the buffered-write counterpart
/// of [`write_frame_buf`], producing byte-identical frames.
pub fn encode_frame_into(msg: &WireMsg, out: &mut Vec<u8>) {
    let header_at = out.len();
    // Length-prefix + checksum placeholders, patched once the payload
    // is assembled.
    out.extend_from_slice(&[0u8; 8]);
    encode_into(msg, out);
    let payload_len = (out.len() - header_at - 8) as u32;
    debug_assert!(payload_len <= MAX_FRAME);
    let crc = crc32(&out[header_at + 8..]);
    out[header_at..header_at + 4].copy_from_slice(&payload_len.to_le_bytes());
    out[header_at + 4..header_at + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a prefix of a frame (the
/// caller keeps the bytes and retries after the next readable event),
/// or `Ok(Some((msg, consumed)))` where `consumed` is the number of
/// bytes the frame occupied — the caller drains exactly that many and
/// calls again, because one readable event often delivers several
/// frames.
///
/// # Errors
///
/// The same taxonomy as [`read_frame`] for bytes that can never become
/// a legal frame: [`WireError::Oversized`] and zero-length are rejected
/// from the 4-byte prefix alone (no need to wait for a payload that
/// should not exist), [`WireError::Checksum`], [`WireError::UnknownTag`]
/// and [`WireError::Malformed`] once the payload is complete. Errors
/// desynchronize the stream; the connection should be dropped.
pub fn try_decode_frame(buf: &[u8]) -> Result<Option<(WireMsg, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4-byte slice"));
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len, max: MAX_FRAME });
    }
    if len == 0 {
        return Err(WireError::Malformed("zero-length payload"));
    }
    let total = 8 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let expected = u32::from_le_bytes(buf[4..8].try_into().expect("4-byte slice"));
    let payload = &buf[8..total];
    let found = crc32(payload);
    if found != expected {
        return Err(WireError::Checksum { expected, found });
    }
    decode(payload).map(|msg| Some((msg, total)))
}

/// An outbound frame queue for a nonblocking stream: encoded frames
/// accumulate here, and [`WriteBuffer::flush_into`] pushes them to the
/// socket as far as the kernel will take them, remembering the offset
/// of the first unsent byte so the next writable event resumes exactly
/// where the short write stopped — never re-sending, never skipping.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    /// Bytes of `buf` already accepted by the kernel.
    sent: usize,
}

impl WriteBuffer {
    /// An empty queue.
    #[must_use]
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Whether every queued byte has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sent == self.buf.len()
    }

    /// Unsent bytes currently queued — the backpressure signal: a
    /// connection whose peer stops reading grows this, and the serving
    /// loop stops reading *from* that peer once it passes a high-water
    /// mark.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.sent
    }

    /// Queues one frame behind whatever is already pending.
    pub fn push(&mut self, msg: &WireMsg) {
        if self.sent == self.buf.len() {
            // Fully drained: recycle the allocation.
            self.buf.clear();
            self.sent = 0;
        } else if self.sent > 4096 {
            // Large consumed prefix: compact so the buffer does not
            // grow without bound on a slow-reading peer.
            self.buf.drain(..self.sent);
            self.sent = 0;
        }
        encode_frame_into(msg, &mut self.buf);
    }

    /// Writes as much of the queue as the stream will take right now.
    /// Returns `true` when the queue drained completely (the caller
    /// drops write interest), `false` on a short write or `WouldBlock`
    /// (the caller keeps write interest and waits for the next writable
    /// event).
    ///
    /// # Errors
    ///
    /// Any I/O error other than `WouldBlock`/`Interrupted` — the
    /// connection is broken and should be closed. A `write` returning
    /// `Ok(0)` is reported as [`ErrorKind::WriteZero`].
    pub fn flush_into(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while self.sent < self.buf.len() {
            match w.write(&self.buf[self.sent..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "stream accepted zero bytes",
                    ));
                }
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.sent = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor as IoCursor;

    fn round_trip(msg: WireMsg) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).expect("write");
        let mut r = IoCursor::new(buf);
        assert_eq!(read_frame(&mut r).expect("read"), msg);
    }

    #[test]
    fn all_messages_round_trip() {
        round_trip(WireMsg::Hello { resume: None });
        round_trip(WireMsg::Hello { resume: Some(42) });
        round_trip(WireMsg::Inc { request_id: 7, initiator: None });
        round_trip(WireMsg::Inc { request_id: u64::MAX, initiator: Some(80) });
        round_trip(WireMsg::BatchInc { request_id: 11, count: 64, initiator: None });
        round_trip(WireMsg::BatchInc { request_id: 12, count: 1, initiator: Some(3) });
        round_trip(WireMsg::BatchOk { request_id: 11, first: 512, count: 64 });
        round_trip(WireMsg::Stats);
        round_trip(WireMsg::HelloKeyed { resume: None, key: 0 });
        round_trip(WireMsg::HelloKeyed { resume: Some(42), key: u64::MAX });
        round_trip(WireMsg::KeyInc { key: 7, request_id: 1, initiator: None });
        round_trip(WireMsg::KeyInc { key: u64::MAX, request_id: 2, initiator: Some(80) });
        round_trip(WireMsg::KeyBatchInc { key: 9, request_id: 3, count: 64, initiator: None });
        round_trip(WireMsg::KeyBatchInc { key: 0, request_id: 4, count: 1, initiator: Some(3) });
        round_trip(WireMsg::Read { key: 12 });
        round_trip(WireMsg::ReadOk { key: 12, value: 512 });
        round_trip(WireMsg::HelloOk { session: 3, processor: 17 });
        round_trip(WireMsg::IncOk { request_id: 9, value: 1234 });
        round_trip(WireMsg::StatsOk(StatsSnapshot {
            processors: 81,
            sessions: 16,
            connections: 18,
            ops: 2000,
            deduped: 2,
            wire_errors: 1,
            combined_traversals: 12,
            shed: 5,
            panics_contained: 1,
            bottleneck: 55,
            retirements: 40,
            keys_hosted: 12,
            promotions: 3,
            demotions: 1,
            migrations_inflight: 2,
            accept_errors: 4,
        }));
        round_trip(WireMsg::Busy { retry_after_ms: 50 });
        round_trip(WireMsg::Err { code: ErrCode::UnknownTag });
        round_trip(WireMsg::Err { code: ErrCode::Other(999) });
    }

    #[test]
    fn a_reused_scratch_buffer_produces_identical_frames() {
        let msgs = [
            WireMsg::Inc { request_id: 1, initiator: Some(9) },
            WireMsg::BatchInc { request_id: 2, count: 32, initiator: None },
            WireMsg::StatsOk(StatsSnapshot::default()),
            WireMsg::Hello { resume: None },
        ];
        let mut scratch = Vec::new();
        for msg in &msgs {
            let mut via_buf = Vec::new();
            write_frame_buf(&mut via_buf, msg, &mut scratch).expect("write");
            let mut via_alloc = Vec::new();
            write_frame(&mut via_alloc, msg).expect("write");
            assert_eq!(via_buf, via_alloc, "scratch path must match the allocating path");
            let mut r = IoCursor::new(via_buf);
            assert_eq!(&read_frame(&mut r).expect("read"), msg);
        }
    }

    #[test]
    fn clean_eof_is_closed_not_truncated() {
        let mut r = IoCursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut r), Err(WireError::Closed));
    }

    #[test]
    fn partial_length_prefix_is_truncated() {
        let mut r = IoCursor::new(vec![5u8, 0]);
        assert_eq!(read_frame(&mut r), Err(WireError::Truncated { context: "the length prefix" }));
    }

    #[test]
    fn partial_payload_is_truncated() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireMsg::Inc { request_id: 1, initiator: None }).expect("write");
        buf.truncate(buf.len() - 3);
        let mut r = IoCursor::new(buf);
        assert_eq!(read_frame(&mut r), Err(WireError::Truncated { context: "the payload" }));
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut r = IoCursor::new(buf);
        assert_eq!(read_frame(&mut r), Err(WireError::Oversized { len: u32::MAX, max: MAX_FRAME }));
    }

    #[test]
    fn garbage_tag_rejected() {
        let mut r = IoCursor::new(frame_raw(&[0x7F]));
        assert_eq!(read_frame(&mut r), Err(WireError::UnknownTag(0x7F)));
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireMsg::IncOk { request_id: 7, value: 1234 }).expect("write");
        // Flip one bit in the value field: without the checksum this
        // would decode as a *different valid frame* — the exact failure
        // mode that breaks exactly-once under corruption.
        let last = buf.len() - 1;
        buf[last] ^= 0x10;
        let mut r = IoCursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(WireError::Checksum { .. })));
    }

    #[test]
    fn checksum_is_the_reference_crc32() {
        // IEEE CRC-32 of "123456789" is the standard check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn zero_length_frame_rejected() {
        let mut r = IoCursor::new(0u32.to_le_bytes().to_vec());
        assert_eq!(read_frame(&mut r), Err(WireError::Malformed("zero-length payload")));
    }

    #[test]
    fn short_and_long_payloads_rejected() {
        // Inc with a missing initiator flag byte.
        let mut payload = vec![0x02u8];
        payload.extend_from_slice(&[0u8; 8]);
        let mut r = IoCursor::new(frame_raw(&payload));
        assert!(matches!(read_frame(&mut r), Err(WireError::Malformed(_))));
        // Stats with trailing garbage.
        let mut r = IoCursor::new(frame_raw(&[0x03, 0, 0]));
        assert_eq!(
            read_frame(&mut r),
            Err(WireError::Malformed("trailing bytes after the message"))
        );
    }

    #[test]
    fn truncated_counter_id_fields_rejected() {
        // KeyInc with only half of its key field.
        let mut payload = vec![0x06u8];
        payload.extend_from_slice(&[0u8; 4]);
        let mut r = IoCursor::new(frame_raw(&payload));
        assert!(matches!(read_frame(&mut r), Err(WireError::Malformed(_))));
        // HelloKeyed whose key field is missing entirely after the
        // resume option — the unkeyed Hello layout sent under the keyed
        // tag.
        let mut r = IoCursor::new(frame_raw(&[0x05, 0]));
        assert!(matches!(read_frame(&mut r), Err(WireError::Malformed(_))));
        // Read with a truncated key.
        let mut payload = vec![0x08u8];
        payload.extend_from_slice(&[0u8; 7]);
        let mut r = IoCursor::new(frame_raw(&payload));
        assert!(matches!(read_frame(&mut r), Err(WireError::Malformed(_))));
        // KeyBatchInc cut off inside its count field.
        let mut payload = vec![0x07u8];
        payload.extend_from_slice(&[0u8; 18]);
        let mut r = IoCursor::new(frame_raw(&payload));
        assert!(matches!(read_frame(&mut r), Err(WireError::Malformed(_))));
    }

    #[test]
    fn bad_option_flag_rejected() {
        let mut r = IoCursor::new(frame_raw(&[0x01, 7]));
        assert_eq!(read_frame(&mut r), Err(WireError::Malformed("option flag must be 0 or 1")));
    }

    #[test]
    fn torn_frames_decode_incrementally_at_every_split_point() {
        // The readiness loop's contract: a frame arriving one byte per
        // readable event must decode to the same message as the frame
        // arriving whole, with `Ok(None)` (keep waiting) at every
        // intermediate prefix.
        let msg = WireMsg::KeyBatchInc { key: 7, request_id: 11, count: 64, initiator: Some(3) };
        let mut frame = Vec::new();
        encode_frame_into(&msg, &mut frame);
        for split in 0..frame.len() {
            assert_eq!(
                try_decode_frame(&frame[..split]).expect("prefix is not an error"),
                None,
                "prefix of {split} bytes must ask for more"
            );
        }
        let (decoded, consumed) = try_decode_frame(&frame).expect("whole frame").expect("complete");
        assert_eq!(decoded, msg);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn one_readable_event_can_carry_many_frames() {
        let msgs = [
            WireMsg::Inc { request_id: 1, initiator: None },
            WireMsg::Stats,
            WireMsg::IncOk { request_id: 1, value: 99 },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            encode_frame_into(m, &mut buf);
        }
        // Plus a torn prefix of a fourth frame.
        let mut fourth = Vec::new();
        encode_frame_into(&WireMsg::Read { key: 5 }, &mut fourth);
        buf.extend_from_slice(&fourth[..5]);

        let mut at = 0usize;
        for expected in &msgs {
            let (msg, consumed) =
                try_decode_frame(&buf[at..]).expect("decode").expect("complete frame");
            assert_eq!(&msg, expected);
            at += consumed;
        }
        assert_eq!(try_decode_frame(&buf[at..]).expect("torn tail"), None);
    }

    #[test]
    fn try_decode_rejects_what_read_frame_rejects() {
        // Oversized and zero-length are decided from the prefix alone.
        let mut oversized = u32::MAX.to_le_bytes().to_vec();
        oversized.extend_from_slice(&[0u8; 12]);
        assert_eq!(
            try_decode_frame(&oversized),
            Err(WireError::Oversized { len: u32::MAX, max: MAX_FRAME })
        );
        assert_eq!(
            try_decode_frame(&0u32.to_le_bytes()),
            Err(WireError::Malformed("zero-length payload"))
        );
        // Corruption fails the checksum once the payload is complete.
        let mut frame = Vec::new();
        encode_frame_into(&WireMsg::IncOk { request_id: 7, value: 1234 }, &mut frame);
        let last = frame.len() - 1;
        frame[last] ^= 0x10;
        assert!(matches!(try_decode_frame(&frame), Err(WireError::Checksum { .. })));
        // Unknown tags survive the checksum and fail decode.
        assert_eq!(try_decode_frame(&frame_raw(&[0x7F])), Err(WireError::UnknownTag(0x7F)));
    }

    #[test]
    fn encode_frame_into_matches_the_blocking_writer() {
        let msgs = [
            WireMsg::Hello { resume: Some(4) },
            WireMsg::StatsOk(StatsSnapshot::default()),
            WireMsg::Busy { retry_after_ms: 25 },
        ];
        let mut appended = Vec::new();
        for m in &msgs {
            encode_frame_into(m, &mut appended);
        }
        let mut blocking = Vec::new();
        for m in &msgs {
            write_frame(&mut blocking, m).expect("write");
        }
        assert_eq!(appended, blocking, "both writers must produce identical bytes");
    }

    /// A `Write` that accepts at most `cap` bytes per call and yields
    /// `WouldBlock` every other call — the unflattering model of a
    /// nonblocking socket under a full send buffer.
    struct Trickle {
        out: Vec<u8>,
        cap: usize,
        starve: bool,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.starve = !self.starve;
            if self.starve {
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "send buffer full"));
            }
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_resume_at_the_exact_offset() {
        let msgs = [
            WireMsg::IncOk { request_id: 1, value: 10 },
            WireMsg::BatchOk { request_id: 2, first: 11, count: 8 },
            WireMsg::StatsOk(StatsSnapshot::default()),
        ];
        let mut wb = WriteBuffer::new();
        let mut expected = Vec::new();
        for m in &msgs {
            wb.push(m);
            encode_frame_into(m, &mut expected);
        }
        assert_eq!(wb.pending(), expected.len());

        // 3 bytes per successful write, WouldBlock in between: the kind
        // of stream that tears every frame many times over.
        let mut sink = Trickle { out: Vec::new(), cap: 3, starve: false };
        let mut flushes = 0usize;
        loop {
            flushes += 1;
            assert!(flushes < 10_000, "flush loop must terminate");
            if wb.flush_into(&mut sink).expect("no real I/O errors here") {
                break;
            }
        }
        assert!(wb.is_empty());
        assert_eq!(sink.out, expected, "bytes must arrive exactly once, in order");
        assert!(flushes > 1, "the trickle sink must actually have torn the writes");

        // A queue that drained fully starts clean for the next frame.
        wb.push(&WireMsg::Busy { retry_after_ms: 5 });
        let mut fast = Vec::new();
        assert!(wb.flush_into(&mut fast).expect("plain vec write"));
        let mut one = Vec::new();
        encode_frame_into(&WireMsg::Busy { retry_after_ms: 5 }, &mut one);
        assert_eq!(fast, one);
    }

    #[test]
    fn pushing_behind_a_partial_write_keeps_byte_order() {
        let mut wb = WriteBuffer::new();
        wb.push(&WireMsg::IncOk { request_id: 1, value: 10 });
        // Take a few bytes, then queue more behind the unsent tail.
        let mut sink = Trickle { out: Vec::new(), cap: 5, starve: true };
        let _ = wb.flush_into(&mut sink).expect("wouldblock or short");
        let _ = wb.flush_into(&mut sink).expect("wouldblock or short");
        wb.push(&WireMsg::IncOk { request_id: 2, value: 11 });
        while !wb.flush_into(&mut sink).expect("no real errors") {}
        let mut expected = Vec::new();
        encode_frame_into(&WireMsg::IncOk { request_id: 1, value: 10 }, &mut expected);
        encode_frame_into(&WireMsg::IncOk { request_id: 2, value: 11 }, &mut expected);
        assert_eq!(sink.out, expected);
    }

    #[test]
    fn write_buffer_compacts_its_consumed_prefix() {
        let mut wb = WriteBuffer::new();
        // Enough traffic to cross the 4096-byte compaction threshold
        // many times; `pending` must track only unsent bytes throughout.
        let mut sink = Trickle { out: Vec::new(), cap: 64, starve: false };
        let mut expected = Vec::new();
        for i in 0..2_000u64 {
            let m = WireMsg::IncOk { request_id: i, value: i * 3 };
            wb.push(&m);
            encode_frame_into(&m, &mut expected);
            let _ = wb.flush_into(&mut sink).expect("no real errors");
        }
        while !wb.flush_into(&mut sink).expect("no real errors") {}
        assert_eq!(sink.out, expected);
    }

    #[test]
    fn errors_display() {
        assert!(WireError::Oversized { len: 500, max: 256 }.to_string().contains("500"));
        assert!(WireError::UnknownTag(0xAB).to_string().contains("0xab"));
        assert!(WireError::Truncated { context: "the payload" }.to_string().contains("payload"));
        assert!(WireError::Closed.to_string().contains("closed"));
        assert!(WireError::Checksum { expected: 1, found: 2 }.to_string().contains("checksum"));
    }
}
