//! The multiplexed load driver: C10k's *client* half.
//!
//! Driving 10,000 connections through [`crate::run_load`] would cost
//! 10,000 loadgen threads — at that point the harness, not the server,
//! is the experiment. [`run_mux`] keeps the open-loop discipline
//! (operations injected on a fixed schedule, latency measured from the
//! *scheduled* injection time) but multiplexes every connection over
//! one thread and one [`distctr_reactor::Poller`], mirroring the
//! server's readiness loop from the other side of the socket.
//!
//! Allocation discipline matters at this scale: each connection owns a
//! reusable read buffer and a [`crate::wire::WriteBuffer`] whose
//! storage is recycled across operations, so the steady state injects
//! and collects with **zero per-operation allocation** — the latency
//! tail measures the server, not the driver's allocator.
//!
//! The run has two phases. First a **ramp**: connections are opened on
//! an even schedule across [`MuxConfig::ramp`] and handshaken
//! (`Hello`/`HelloOk`), so the server absorbs admission gradually
//! instead of as one thundering herd. Then **injection**: operations
//! fire at [`MuxConfig::rate`] total, round-robin over the surviving
//! connections, and replies are matched back to their scheduled times
//! by echoed request id. A connection the server sheds (`Busy`) or
//! fails (`Err`, transport error) stops being scheduled; its
//! operations count as failed rather than silently vanishing.

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use distctr_reactor::{Interest, Poller};

use crate::error::ServerError;
use crate::load::{ConnReport, LoadReport};
use crate::wire::{try_decode_frame, WireMsg, WriteBuffer};

/// Per-event read budget per connection, so one chatty connection
/// cannot starve the rest of a wait's batch.
const READ_CHUNK: usize = 16 * 1024;

/// A multiplexed open-loop run description.
#[derive(Debug, Clone, PartialEq)]
pub struct MuxConfig {
    /// Concurrent client connections.
    pub conns: usize,
    /// Total operations across all connections.
    pub ops: usize,
    /// Total injection rate, operations per second.
    pub rate: f64,
    /// The window across which connections are opened and handshaken
    /// (evenly spaced). Zero connects as fast as the loop can.
    pub ramp: Duration,
    /// How long to wait for straggling replies after the last
    /// operation is injected before counting them failed.
    pub grace: Duration,
}

impl MuxConfig {
    /// A run of `ops` operations at `rate` ops/s over `conns`
    /// connections, with a ramp that admits roughly 2000
    /// connections/second and a 30 s straggler grace.
    #[must_use]
    pub fn open(conns: usize, ops: usize, rate: f64) -> Self {
        MuxConfig {
            conns,
            ops,
            rate,
            ramp: Duration::from_millis(conns as u64 / 2),
            grace: Duration::from_secs(30),
        }
    }

    /// The same run with an explicit ramp window.
    #[must_use]
    pub fn with_ramp(mut self, ramp: Duration) -> Self {
        self.ramp = ramp;
        self
    }
}

/// Where one multiplexed connection stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MuxState {
    /// `Hello` sent, `HelloOk` not yet received.
    Greeting,
    /// Handshaken; operations may be scheduled onto it.
    Running,
    /// Shed, failed, or hung up; skipped by the scheduler.
    Dead,
}

/// One connection's slot in the driver.
struct MuxConn {
    stream: TcpStream,
    /// Unparsed inbound bytes (reused across frames).
    read_buf: Vec<u8>,
    /// Encoded-but-unsent outbound frames (storage recycled).
    write: WriteBuffer,
    /// The interest currently registered with the poller.
    interest: Interest,
    state: MuxState,
    /// The next request id this connection will send.
    next_request: u64,
    /// In-flight request id -> its *scheduled* injection time.
    pending: HashMap<u64, Instant>,
    /// In-flight ids in schedule order, so an unmatched `Busy` (the
    /// shed frame carries no request id) retires the oldest.
    order: VecDeque<u64>,
    /// Operations acked on this connection.
    acked: usize,
    /// Largest latency observed on this connection, in microseconds.
    max_us: u64,
}

/// The single-threaded driver state.
struct Mux {
    poller: Poller,
    conns: Vec<MuxConn>,
    /// Read scratch shared across connections.
    scratch: Vec<u8>,
    latencies: Vec<u64>,
    values: Vec<u64>,
    failed: usize,
}

impl Mux {
    /// Registers interest matching the connection's buffered state.
    fn arm(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if conn.state == MuxState::Dead {
            return;
        }
        let want = Interest { readable: true, writable: !conn.write.is_empty() };
        if want != conn.interest && self.poller.modify(conn.stream.as_raw_fd(), idx, want).is_ok() {
            conn.interest = want;
        }
    }

    /// Flushes the connection's write queue as far as the kernel takes
    /// it and re-arms interest.
    fn flush(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if conn.state == MuxState::Dead {
            return;
        }
        if conn.write.flush_into(&mut conn.stream).is_err() {
            self.kill(idx);
            return;
        }
        self.arm(idx);
    }

    /// Marks a connection dead: its in-flight operations fail, its fd
    /// leaves the poll set, and the scheduler skips it from now on.
    fn kill(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if conn.state == MuxState::Dead {
            return;
        }
        conn.state = MuxState::Dead;
        self.failed += conn.pending.len();
        conn.pending.clear();
        conn.order.clear();
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
    }

    /// Reads what arrived on `idx` and dispatches every complete frame.
    fn drain_readable(&mut self, idx: usize) {
        if self.conns[idx].state == MuxState::Dead {
            return;
        }
        let mut eof = false;
        let mut taken = 0usize;
        loop {
            let conn = &mut self.conns[idx];
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&self.scratch[..n]);
                    taken += n;
                    if taken >= READ_CHUNK {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        let mut parsed = 0usize;
        loop {
            let frame = try_decode_frame(&self.conns[idx].read_buf[parsed..]);
            match frame {
                Ok(Some((msg, consumed))) => {
                    parsed += consumed;
                    self.on_frame(idx, msg);
                    if self.conns[idx].state == MuxState::Dead {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.kill(idx);
                    return;
                }
            }
        }
        if parsed > 0 {
            self.conns[idx].read_buf.drain(..parsed);
        }
        if eof {
            self.kill(idx);
        }
    }

    /// One reply frame from the server.
    fn on_frame(&mut self, idx: usize, msg: WireMsg) {
        let conn = &mut self.conns[idx];
        match (conn.state, msg) {
            (MuxState::Greeting, WireMsg::HelloOk { .. }) => {
                conn.state = MuxState::Running;
            }
            (MuxState::Running, WireMsg::IncOk { request_id, value }) => {
                let Some(scheduled) = conn.pending.remove(&request_id) else {
                    // A reply we never asked for: protocol violation.
                    self.kill(idx);
                    return;
                };
                conn.order.retain(|&id| id != request_id);
                let lat = Instant::now().saturating_duration_since(scheduled);
                let lat_us = lat.as_micros() as u64;
                conn.acked += 1;
                conn.max_us = conn.max_us.max(lat_us);
                self.latencies.push(lat_us);
                self.values.push(value);
            }
            (MuxState::Running, WireMsg::Busy { .. }) => {
                // The shed frame names no request id; schedule order is
                // the server's service order, so the oldest in-flight
                // operation is the one that was refused.
                if let Some(oldest) = conn.order.pop_front() {
                    conn.pending.remove(&oldest);
                }
                self.failed += 1;
            }
            // Busy during the handshake (draining / at the connection
            // cap), an Err on either path, or any unexpected frame:
            // this connection is out of the run.
            _ => self.kill(idx),
        }
    }
}

/// Runs `cfg` against the server at `addr`, multiplexing every
/// connection over one reactor thread, and aggregates the result. The
/// report's wall clock covers the injection phase (the ramp is warmup,
/// not measurement).
///
/// # Errors
///
/// [`ServerError::Io`] if the poller cannot be built or *no*
/// connection survives the ramp — individual connection failures are
/// counted, not fatal.
///
/// # Panics
///
/// Panics if `cfg.conns`, `cfg.ops` or `cfg.rate` is not positive.
pub fn run_mux(addr: SocketAddr, cfg: &MuxConfig) -> Result<LoadReport, ServerError> {
    assert!(cfg.conns > 0, "need at least one connection");
    assert!(cfg.ops > 0, "need at least one operation");
    assert!(cfg.rate > 0.0, "open-loop rate must be positive");
    let io = |e: std::io::Error| ServerError::Io(e.to_string());
    let mut mux = Mux {
        poller: Poller::new().map_err(io)?,
        conns: Vec::with_capacity(cfg.conns),
        scratch: vec![0u8; READ_CHUNK],
        latencies: Vec::with_capacity(cfg.ops),
        values: Vec::with_capacity(cfg.ops),
        failed: 0,
    };
    let mut events = Vec::new();

    // --- Phase 1: ramp — connect and handshake on an even schedule.
    let ramp_start = Instant::now();
    let spacing = cfg.ramp.div_f64(cfg.conns as f64);
    let ramp_deadline = ramp_start + cfg.ramp + cfg.grace;
    let mut opened = 0usize;
    loop {
        while opened < cfg.conns
            && Instant::now() >= ramp_start + spacing.mul_f64(opened as f64)
            && Instant::now() < ramp_deadline
        {
            let idx = mux.conns.len();
            match connect_one(addr) {
                Ok(stream) => {
                    let mut conn = MuxConn {
                        stream,
                        read_buf: Vec::new(),
                        write: WriteBuffer::new(),
                        interest: Interest::READ,
                        state: MuxState::Greeting,
                        next_request: 0,
                        pending: HashMap::new(),
                        order: VecDeque::new(),
                        acked: 0,
                        max_us: 0,
                    };
                    conn.write.push(&WireMsg::Hello { resume: None });
                    if mux.poller.register(conn.stream.as_raw_fd(), idx, Interest::READ).is_ok() {
                        mux.conns.push(conn);
                        mux.flush(idx);
                    } else {
                        mux.conns.push(conn);
                        mux.conns[idx].state = MuxState::Dead;
                    }
                }
                // Nothing ever connected: the address is wrong or the
                // server is down — that is a harness error, not a
                // capacity verdict.
                Err(e) if mux.conns.is_empty() => {
                    return Err(ServerError::Io(format!(
                        "connect {idx} of {} failed during ramp: {e}",
                        cfg.conns
                    )));
                }
                // A later connect timing out means the server stopped
                // absorbing the ramp. Stop opening and drive whatever
                // got established; the report's connection count
                // records the shortfall.
                Err(_) => {
                    opened = cfg.conns;
                    break;
                }
            }
            opened += 1;
        }
        let greeting = mux.conns.iter().filter(|c| c.state == MuxState::Greeting).count();
        if opened == cfg.conns && greeting == 0 {
            break;
        }
        if Instant::now() >= ramp_deadline {
            let stuck: Vec<usize> = (0..mux.conns.len())
                .filter(|&i| mux.conns[i].state == MuxState::Greeting)
                .collect();
            for idx in stuck {
                mux.kill(idx);
            }
            break;
        }
        let next_connect = (opened < cfg.conns).then(|| {
            (ramp_start + spacing.mul_f64(opened as f64)).saturating_duration_since(Instant::now())
        });
        let timeout =
            next_connect.unwrap_or(Duration::from_millis(20)).min(Duration::from_millis(20));
        mux.poller.wait(&mut events, Some(timeout)).map_err(io)?;
        for ev in events.iter().copied() {
            mux.drain_readable(ev.token);
            if ev.writable {
                mux.flush(ev.token);
            }
        }
    }
    let alive: Vec<usize> =
        (0..mux.conns.len()).filter(|&i| mux.conns[i].state == MuxState::Running).collect();
    if alive.is_empty() {
        return Err(ServerError::Io("no connection survived the ramp".into()));
    }

    // --- Phase 2: injection at `rate`, round-robin over survivors.
    let interval = Duration::from_secs_f64(1.0 / cfg.rate);
    let start = Instant::now();
    let mut injected = 0usize;
    let mut alive_cursor = 0usize;
    loop {
        // Inject everything that is due.
        while injected < cfg.ops {
            let due = start + interval.mul_f64(injected as f64);
            if Instant::now() < due {
                break;
            }
            // Round-robin over connections that are still running (a
            // dead one fails its share instead of stalling the
            // schedule).
            let mut placed = false;
            for _ in 0..alive.len() {
                let idx = alive[alive_cursor % alive.len()];
                alive_cursor += 1;
                if mux.conns[idx].state != MuxState::Running {
                    continue;
                }
                let conn = &mut mux.conns[idx];
                let request_id = conn.next_request;
                conn.next_request += 1;
                conn.pending.insert(request_id, due);
                conn.order.push_back(request_id);
                conn.write.push(&WireMsg::Inc { request_id, initiator: None });
                mux.flush(idx);
                placed = true;
                break;
            }
            if !placed {
                mux.failed += 1;
            }
            injected += 1;
        }
        let outstanding: usize = mux.conns.iter().map(|c| c.pending.len()).sum();
        if injected == cfg.ops && outstanding == 0 {
            break;
        }
        let last_due = start + interval.mul_f64(cfg.ops.saturating_sub(1) as f64);
        if injected == cfg.ops && Instant::now() >= last_due + cfg.grace {
            // Stragglers past the grace window: count them failed.
            mux.failed += outstanding;
            break;
        }
        let timeout = if injected < cfg.ops {
            (start + interval.mul_f64(injected as f64)).saturating_duration_since(Instant::now())
        } else {
            Duration::from_millis(20)
        }
        .min(Duration::from_millis(20))
        .max(Duration::from_micros(100));
        mux.poller.wait(&mut events, Some(timeout)).map_err(io)?;
        for ev in events.iter().copied() {
            mux.drain_readable(ev.token);
            if ev.writable {
                mux.flush(ev.token);
            }
        }
    }
    let wall = start.elapsed();

    let per_conn =
        mux.conns.iter().map(|c| ConnReport { ops: c.acked, max_us: c.max_us }).collect();
    mux.latencies.sort_unstable();
    mux.values.sort_unstable();
    Ok(LoadReport {
        ops: mux.values.len(),
        failed: mux.failed,
        wall,
        offered_rate: Some(cfg.rate),
        latencies_us: mux.latencies,
        values: mux.values,
        per_conn,
        per_key: Vec::new(),
    })
}

/// One blocking loopback connect, made nonblocking before it joins the
/// poll set. Blocking is deliberate: loopback connects complete in
/// microseconds when the server's accept path keeps up, and a connect
/// that *does* block measures exactly the admission stall the ramp
/// exists to observe.
/// One blocking loopback connect, bounded so a saturated server (SYN
/// backlog full, kernel retransmitting) stalls the ramp for at most a
/// second instead of minutes of serialized TCP backoff.
fn connect_one(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
    stream.set_nonblocking(true)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CounterServer;
    use distctr_core::TreeCounter;

    fn tree(n: usize) -> TreeCounter {
        TreeCounter::new(n).expect("tree")
    }

    #[test]
    fn mux_drives_a_threaded_server_exactly_once() {
        let mut server = CounterServer::serve(tree(8)).expect("serve");
        let cfg = MuxConfig::open(4, 64, 2000.0).with_ramp(Duration::from_millis(10));
        let report = run_mux(server.local_addr(), &cfg).expect("mux run");
        assert_eq!(report.failed, 0, "no shed ops at this load");
        assert!(report.values_are_sequential_from(0), "exactly-once over the mux driver");
        assert_eq!(report.per_conn.len(), 4);
        assert!(report.per_conn.iter().all(|c| c.ops > 0), "round-robin reached every conn");
        server.shutdown().expect("shutdown");
    }

    #[test]
    fn mux_drives_an_async_combining_server() {
        let mut server = CounterServer::serve_async_combining(tree(8)).expect("serve");
        let cfg = MuxConfig::open(8, 200, 4000.0).with_ramp(Duration::from_millis(20));
        let report = run_mux(server.local_addr(), &cfg).expect("mux run");
        assert_eq!(report.failed, 0);
        assert!(report.values_are_sequential_from(0));
        assert_eq!(report.ops, 200);
        server.shutdown().expect("shutdown");
    }

    #[test]
    fn open_config_scales_the_ramp_with_the_connection_count() {
        let small = MuxConfig::open(100, 10, 1.0);
        let big = MuxConfig::open(10_000, 10, 1.0);
        assert!(big.ramp > small.ramp);
        assert_eq!(big.with_ramp(Duration::ZERO).ramp, Duration::ZERO);
    }
}
