//! The thread-per-connection TCP server.
//!
//! A [`CounterServer`] hosts any [`CounterBackend`] behind the wire
//! protocol of [`crate::wire`]. Connections are mapped to **sessions**:
//! the handshake either opens a fresh session (assigned a processor
//! round-robin, so independent clients spread over the tree's leaves
//! like the paper's initiators) or resumes an existing one after a
//! reconnect. A session keeps the dedup state that makes
//! reconnect-and-retry exactly-once: for backends with a reply cache
//! (the threaded tree), each request id is pinned to a backend **ticket**
//! — re-driving the same ticket is answered from the root's migrating
//! reply cache; for backends without one, the session's own answer table
//! serves the retry.
//!
//! Operations are serialized through one mutex around the backend,
//! matching the paper's sequential-driving model ("enough time elapses
//! between any two inc requests"): with many concurrent clients the
//! *server* stays correct and the contention becomes client-observed
//! queueing latency — which is exactly what the load generator measures.
//!
//! A server started with [`CounterServer::serve_combining`] replaces
//! that hot path with pipelined **flat combining**: connection threads
//! only *enqueue* their pending incs and return to the socket, and a
//! dedicated combiner thread drains everything queued into one
//! [`CounterBackend::inc_batch_ticketed`] traversal per round, writing
//! each waiter's slice of the granted range straight to its connection.
//! Coalesced batches are charged to a rotating origin processor (an
//! `Inc` naming an explicit initiator still climbs from that leaf), so
//! new requests accumulate while the previous round's traversal is in
//! flight — the batch size adapts to the backlog instead of a timer.
//! The counter stays exact — values are a contiguous range partitioned
//! in queue order — while the backend sees one traversal where the
//! sequential path saw `m`.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use distctr_core::CounterBackend;
use distctr_sim::ProcessorId;

use crate::error::{ErrCode, ServerError};
use crate::wire::{read_frame, write_frame, write_frame_buf, StatsSnapshot, WireError, WireMsg};

/// Per-session dedup window: how many recent request ids a session
/// remembers for exactly-once retries.
pub const DEDUP_WINDOW: usize = 256;

/// How often blocked reads poll the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// How long the idle combiner thread parks between shutdown-flag
/// checks when no increments are queued.
const COMBINE_IDLE: Duration = Duration::from_millis(25);

/// Dedup state and accounting of one client session.
#[derive(Debug, Default)]
struct Session {
    /// The processor this session's operations are charged to (unless
    /// an `Inc` names an explicit initiator).
    processor: u64,
    /// request id -> backend ticket (ticketed backends).
    tickets: HashMap<u64, u64>,
    /// request id -> value already handed out (non-ticketed backends).
    answered: HashMap<u64, u64>,
    /// Insertion order of request ids, for pruning to [`DEDUP_WINDOW`].
    seen: VecDeque<u64>,
    /// Operations this session completed.
    ops: u64,
}

impl Session {
    fn remember(&mut self, request_id: u64) {
        self.seen.push_back(request_id);
        while self.seen.len() > DEDUP_WINDOW {
            if let Some(old) = self.seen.pop_front() {
                self.tickets.remove(&old);
                self.answered.remove(&old);
            }
        }
    }
}

/// Mutex-guarded server state: the backend plus the session table.
struct Inner<B> {
    backend: B,
    sessions: HashMap<u64, Session>,
    next_session: u64,
    /// Round-robin origin for combined batches without an explicit
    /// initiator: each coalesced traversal is charged to the next
    /// processor in turn.
    combine_origin: u64,
}

/// Lock-free counters, updated by connection threads.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    ops: AtomicU64,
    deduped: AtomicU64,
    wire_errors: AtomicU64,
    combined_traversals: AtomicU64,
}

/// The write half of one connection: the stream plus its reusable
/// encode scratch. Shared between the connection's reader thread
/// (handshake, stats, explicit-batch and error replies) and the
/// combiner thread (combined inc replies), each writing whole frames
/// under the mutex.
struct ConnWriter {
    stream: TcpStream,
    scratch: Vec<u8>,
}

impl ConnWriter {
    fn send(&mut self, msg: &WireMsg) -> Result<(), WireError> {
        write_frame_buf(&mut self.stream, msg, &mut self.scratch)
    }
}

/// One enqueued increment awaiting a combining round. Validation
/// (session lookup, initiator bounds, retry dedup) happens in the
/// round, under the backend lock the combiner holds, so the enqueue
/// itself touches nothing but the queue mutex — the reader thread goes
/// straight back to its socket and the connection stays pipelined.
struct PendingInc {
    session_id: u64,
    request_id: u64,
    initiator: Option<u64>,
    /// The connection the combiner writes this waiter's reply to.
    writer: Arc<Mutex<ConnWriter>>,
}

/// Work queue and wakeup for the dedicated combiner thread.
struct CombineState {
    queue: Mutex<Vec<PendingInc>>,
    wake: Condvar,
}

struct Shared<B> {
    inner: Mutex<Inner<B>>,
    stats: Counters,
    /// `Some` iff this server serves incs through flat combining.
    combine: Option<CombineState>,
}

/// A TCP stream whose reads poll the server's stop flag: a blocked
/// connection thread observes shutdown as EOF instead of wedging in
/// `read` forever.
struct PollRead {
    inner: TcpStream,
    stop: Arc<AtomicBool>,
}

impl Read for PollRead {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(0);
            }
            match self.inner.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                other => return other,
            }
        }
    }
}

/// A TCP service hosting a [`CounterBackend`].
///
/// # Examples
///
/// ```
/// use distctr_core::TreeCounter;
/// use distctr_server::{CounterServer, RemoteCounter};
///
/// # fn main() -> Result<(), distctr_server::ServerError> {
/// let backend = TreeCounter::new(8).map_err(|e| distctr_server::ServerError::Backend(e.to_string()))?;
/// let mut server = CounterServer::serve(backend)?;
/// let mut client = RemoteCounter::connect(server.local_addr())?;
/// assert_eq!(client.inc()?, 0);
/// assert_eq!(client.inc()?, 1);
/// server.shutdown()?;
/// # Ok(())
/// # }
/// ```
pub struct CounterServer<B: CounterBackend + Send + 'static> {
    shared: Option<Arc<Shared<B>>>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    combiner: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<B: CounterBackend + Send + 'static> CounterServer<B> {
    /// Serves `backend` on an ephemeral loopback port; see
    /// [`CounterServer::serve_on`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::serve_on`].
    pub fn serve(backend: B) -> Result<Self, ServerError> {
        Self::serve_on("127.0.0.1:0", backend)
    }

    /// Serves `backend` on an ephemeral loopback port with the
    /// flat-combining inc path enabled; see [`CounterServer::serve_on`]
    /// and the module docs for what combining changes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::serve_on`].
    pub fn serve_combining(backend: B) -> Result<Self, ServerError> {
        Self::serve_combining_on("127.0.0.1:0", backend)
    }

    /// Binds `addr` and starts the accept loop, hosting `backend`.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if binding or spawning fails.
    pub fn serve_on(addr: impl ToSocketAddrs, backend: B) -> Result<Self, ServerError> {
        Self::serve_inner(addr, backend, false)
    }

    /// [`CounterServer::serve_on`] with the flat-combining inc path
    /// enabled.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if binding or spawning fails.
    pub fn serve_combining_on(addr: impl ToSocketAddrs, backend: B) -> Result<Self, ServerError> {
        Self::serve_inner(addr, backend, true)
    }

    fn serve_inner(
        addr: impl ToSocketAddrs,
        backend: B,
        combining: bool,
    ) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServerError::Io(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| ServerError::Io(e.to_string()))?;
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                backend,
                sessions: HashMap::new(),
                next_session: 0,
                combine_origin: 0,
            }),
            stats: Counters::default(),
            combine: combining
                .then(|| CombineState { queue: Mutex::new(Vec::new()), wake: Condvar::new() }),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let combiner = if combining {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            Some(
                std::thread::Builder::new()
                    .name("distctr-combiner".into())
                    .spawn(move || combiner_loop(&shared, &stop))
                    .map_err(|e| ServerError::Io(e.to_string()))?,
            )
        } else {
            None
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("distctr-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &stop, &conns))
                .map_err(|e| ServerError::Io(e.to_string()))?
        };
        Ok(CounterServer {
            shared: Some(shared),
            stop,
            addr,
            accept: Some(accept),
            combiner,
            conns,
        })
    }

    /// The bound address (connect [`crate::RemoteCounter`] here).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A statistics snapshot, identical to what [`WireMsg::Stats`]
    /// returns over the wire.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        match &self.shared {
            Some(shared) => snapshot(shared),
            None => StatsSnapshot::default(),
        }
    }

    /// Per-session operation counts `(session id, ops)`, ordered by
    /// session id — the server-side per-connection counters.
    #[must_use]
    pub fn session_ops(&self) -> Vec<(u64, u64)> {
        let Some(shared) = &self.shared else { return Vec::new() };
        let Ok(inner) = shared.inner.lock() else { return Vec::new() };
        let mut out: Vec<(u64, u64)> = inner.sessions.iter().map(|(&id, s)| (id, s.ops)).collect();
        out.sort_unstable();
        out
    }

    /// Stops accepting, disconnects every client, and joins all threads.
    /// The hosted backend stays alive until the server is dropped (or
    /// reclaimed via [`CounterServer::into_backend`]).
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if a service thread panicked.
    pub fn shutdown(&mut self) -> Result<(), ServerError> {
        if self.stop.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let mut panicked = false;
        if let Some(handle) = self.accept.take() {
            panicked |= handle.join().is_err();
        }
        if let Some(handle) = self.combiner.take() {
            if let Some(combine) = self.shared.as_ref().and_then(|s| s.combine.as_ref()) {
                combine.wake.notify_all();
            }
            panicked |= handle.join().is_err();
        }
        let handles = match self.conns.lock() {
            Ok(mut conns) => conns.drain(..).collect::<Vec<_>>(),
            Err(_) => Vec::new(),
        };
        for handle in handles {
            panicked |= handle.join().is_err();
        }
        if panicked {
            return Err(ServerError::Io("a service thread panicked".into()));
        }
        Ok(())
    }

    /// Shuts down and hands back the hosted backend for direct
    /// inspection (loads, audits).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::shutdown`].
    pub fn into_backend(mut self) -> Result<B, ServerError> {
        self.shutdown()?;
        let shared = self.shared.take().ok_or(ServerError::ShutDown)?;
        let shared = Arc::try_unwrap(shared)
            .map_err(|_| ServerError::Io("a connection still holds the server state".into()))?;
        let inner = shared.inner.into_inner().map_err(|_| {
            ServerError::Io("server state poisoned by a panicked connection".into())
        })?;
        Ok(inner.backend)
    }
}

impl<B: CounterBackend + Send + 'static> Drop for CounterServer<B> {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

fn accept_loop<B: CounterBackend + Send + 'static>(
    listener: &TcpListener,
    shared: &Arc<Shared<B>>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let stop_flag = Arc::clone(stop);
        let spawned = std::thread::Builder::new()
            .name("distctr-conn".into())
            .spawn(move || handle_conn(stream, &shared, &stop_flag));
        if let (Ok(handle), Ok(mut conns)) = (spawned, conns.lock()) {
            // Opportunistically reap finished connections so long-lived
            // servers don't accumulate dead handles.
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
}

/// Serves one connection to completion. Never panics on client input:
/// every codec failure becomes a typed `Err` frame (best-effort) and a
/// closed connection, with the session state kept for a resume.
fn handle_conn<B: CounterBackend + Send + 'static>(
    stream: TcpStream,
    shared: &Arc<Shared<B>>,
    stop: &Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = PollRead { inner: read_half, stop: Arc::clone(stop) };
    let mut writer = stream;

    // --- handshake: the first frame must be a Hello ------------------
    let session_id = match read_frame(&mut reader) {
        Ok(WireMsg::Hello { resume }) => {
            let Ok(mut inner) = shared.inner.lock() else { return };
            match resume {
                Some(id) => {
                    if inner.sessions.contains_key(&id) {
                        id
                    } else {
                        let _ = write_frame(
                            &mut writer,
                            &WireMsg::Err { code: ErrCode::UnknownSession },
                        );
                        return;
                    }
                }
                None => {
                    let id = inner.next_session;
                    inner.next_session += 1;
                    let processor = id % inner.backend.processors() as u64;
                    inner.sessions.insert(id, Session { processor, ..Session::default() });
                    id
                }
            }
        }
        Ok(_) => {
            shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(&mut writer, &WireMsg::Err { code: ErrCode::BadHandshake });
            return;
        }
        Err(e) => {
            report_wire_error(&mut writer, shared, &e);
            return;
        }
    };
    let processor = {
        let Ok(inner) = shared.inner.lock() else { return };
        inner.sessions.get(&session_id).map_or(0, |s| s.processor)
    };
    if write_frame(&mut writer, &WireMsg::HelloOk { session: session_id, processor }).is_err() {
        return;
    }

    // --- session loop -------------------------------------------------
    // The write half moves behind a mutex shared with the combiner
    // thread, with one scratch buffer per connection: every reply frame
    // on the hot path is encoded into it and written with a single
    // syscall, with no per-message allocation.
    let writer =
        Arc::new(Mutex::new(ConnWriter { stream: writer, scratch: Vec::with_capacity(64) }));
    loop {
        match read_frame(&mut reader) {
            Ok(WireMsg::Inc { request_id, initiator }) => match &shared.combine {
                // Pipelined: enqueue for the combiner and go straight
                // back to the socket; the combiner writes the reply.
                Some(combine) => {
                    if !enqueue_inc(combine, session_id, request_id, initiator, &writer) {
                        break;
                    }
                }
                None => {
                    let reply = serve_inc(shared, session_id, request_id, initiator);
                    if send_reply(&writer, &reply).is_err() {
                        break;
                    }
                }
            },
            Ok(WireMsg::BatchInc { request_id, count, initiator }) => {
                let reply = serve_batch_inc(shared, session_id, request_id, count, initiator);
                if send_reply(&writer, &reply).is_err() {
                    break;
                }
            }
            Ok(WireMsg::Stats) => {
                let reply = WireMsg::StatsOk(snapshot(shared));
                if send_reply(&writer, &reply).is_err() {
                    break;
                }
            }
            Ok(WireMsg::Hello { .. }) => {
                shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send_reply(&writer, &WireMsg::Err { code: ErrCode::BadHandshake });
                break;
            }
            Ok(
                WireMsg::HelloOk { .. }
                | WireMsg::IncOk { .. }
                | WireMsg::BatchOk { .. }
                | WireMsg::StatsOk(_)
                | WireMsg::Err { .. },
            ) => {
                shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send_reply(&writer, &WireMsg::Err { code: ErrCode::Malformed });
                break;
            }
            Err(WireError::Closed) => break,
            Err(e) => {
                shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                if let Some(code) = wire_err_code(&e) {
                    let _ = send_reply(&writer, &WireMsg::Err { code });
                }
                break;
            }
        }
    }
}

/// Writes one reply frame under the connection's writer mutex.
fn send_reply(writer: &Arc<Mutex<ConnWriter>>, msg: &WireMsg) -> Result<(), WireError> {
    match writer.lock() {
        Ok(mut w) => w.send(msg),
        Err(_) => Err(WireError::Io("connection writer poisoned".into())),
    }
}

/// Enqueues one inc for the combiner thread and returns to the socket
/// without waiting — a connection can have many incs in flight at once.
/// Returns `false` only if the queue mutex is poisoned.
fn enqueue_inc(
    combine: &CombineState,
    session_id: u64,
    request_id: u64,
    initiator: Option<u64>,
    writer: &Arc<Mutex<ConnWriter>>,
) -> bool {
    let Ok(mut q) = combine.queue.lock() else { return false };
    let was_empty = q.is_empty();
    q.push(PendingInc { session_id, request_id, initiator, writer: Arc::clone(writer) });
    drop(q);
    // The combiner only parks after observing an empty queue under this
    // mutex, so only the empty -> non-empty transition can have a parked
    // waiter; pushes onto a backlog skip the futex wake.
    if was_empty {
        combine.wake.notify_one();
    }
    true
}

/// The client-visible code for a decode failure, if the transport is
/// still there to send it on.
fn wire_err_code(e: &WireError) -> Option<ErrCode> {
    match e {
        WireError::Oversized { .. } => Some(ErrCode::Oversized),
        WireError::UnknownTag(_) => Some(ErrCode::UnknownTag),
        WireError::Malformed(_) => Some(ErrCode::Malformed),
        // Truncated / Io: the transport is gone; nothing to send on.
        _ => None,
    }
}

/// Maps a decode failure to its wire code, counts it, and makes a
/// best-effort attempt to tell the client before the connection closes.
fn report_wire_error<B: CounterBackend + Send + 'static>(
    writer: &mut TcpStream,
    shared: &Arc<Shared<B>>,
    e: &WireError,
) {
    shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
    if let Some(code) = wire_err_code(e) {
        let _ = write_frame(writer, &WireMsg::Err { code });
    }
}

/// One increment, with exactly-once retry semantics. See the module doc
/// for the two dedup paths (backend tickets vs the session answer
/// table).
fn serve_inc<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    session_id: u64,
    request_id: u64,
    initiator: Option<u64>,
) -> WireMsg {
    let Ok(mut guard) = shared.inner.lock() else {
        return WireMsg::Err { code: ErrCode::Backend };
    };
    let inner = &mut *guard;
    let Some(session) = inner.sessions.get_mut(&session_id) else {
        return WireMsg::Err { code: ErrCode::UnknownSession };
    };
    let charged = match initiator {
        Some(i) if i < inner.backend.processors() as u64 => i,
        Some(_) => return WireMsg::Err { code: ErrCode::BadInitiator },
        None => session.processor,
    };
    let p = ProcessorId::new(charged as usize);

    // Retry of a request a non-ticketed backend already answered: the
    // session's own table is the reply cache.
    if let Some(&value) = session.answered.get(&request_id) {
        shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
        return WireMsg::IncOk { request_id, value };
    }
    // Ticketed path: the first sighting of a request id reserves a
    // backend ticket; a retry re-drives the *same* ticket, which the
    // backend's reply cache answers without incrementing again.
    let (ticket, is_retry) = match session.tickets.get(&request_id) {
        Some(&t) => (Some(t), true),
        None => match inner.backend.reserve() {
            Some(t) => {
                session.tickets.insert(request_id, t);
                session.remember(request_id);
                (Some(t), false)
            }
            None => (None, false),
        },
    };
    let result = match ticket {
        Some(t) => inner.backend.inc_ticketed(p, t),
        None => inner.backend.inc(p),
    };
    match result {
        Ok(value) => {
            session.ops += 1;
            if is_retry {
                shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.ops.fetch_add(1, Ordering::Relaxed);
                if ticket.is_none() {
                    session.answered.insert(request_id, value);
                    session.remember(request_id);
                }
            }
            WireMsg::IncOk { request_id, value }
        }
        // The ticket (if any) stays pinned to the request id, so the
        // client's retry converges on exactly-once.
        Err(_) => WireMsg::Err { code: ErrCode::Backend },
    }
}

/// The dedicated combiner: parks until incs are queued, then drains and
/// serves rounds until the queue is empty again. Everything that
/// accumulates while one round's traversals are in flight becomes the
/// next round's batch — backpressure, not a timer, sets the batch size.
/// Replies are written straight to each waiter's connection, so the
/// per-inc hot path costs one enqueue and an amortized share of one
/// traversal, with no per-reply thread handoff.
fn combiner_loop<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    stop: &Arc<AtomicBool>,
) {
    let Some(combine) = &shared.combine else { return };
    loop {
        let drained = {
            let Ok(mut q) = combine.queue.lock() else { return };
            loop {
                if !q.is_empty() {
                    // Serve what's queued even mid-shutdown; the final
                    // empty drain observes `stop` and exits.
                    break std::mem::take(&mut *q);
                }
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok((guard, _)) = combine.wake.wait_timeout(q, COMBINE_IDLE) else { return };
                q = guard;
            }
        };
        let Ok(mut inner) = shared.inner.lock() else { return };
        combine_round(shared, &mut inner, drained);
    }
}

/// One combining round: answer retries from the session tables, then
/// drive **one** batched traversal per initiating processor, slicing
/// each granted range `[first, first + m)` over its waiters in queue
/// order. Each slice is recorded in its session's answer table before
/// the reply is sent, so a reconnect-and-retry of any combined request
/// is answered exactly-once without a traversal.
fn combine_round<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    inner: &mut Inner<B>,
    drained: Vec<PendingInc>,
) {
    // A retry racing its original into the same round must share one
    // slice, not claim two: dedupe by (session, request id) and park
    // the duplicates' connections until the key is answered.
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut dup: HashMap<(u64, u64), Vec<Arc<Mutex<ConnWriter>>>> = HashMap::new();
    let mut unique: Vec<PendingInc> = Vec::new();
    for p in drained {
        if seen.insert((p.session_id, p.request_id)) {
            unique.push(p);
        } else {
            shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
            dup.entry((p.session_id, p.request_id)).or_default().push(p.writer);
        }
    }
    let deliver = |dup: &mut HashMap<(u64, u64), Vec<Arc<Mutex<ConnWriter>>>>,
                   p: &PendingInc,
                   reply: WireMsg| {
        for writer in dup.remove(&(p.session_id, p.request_id)).unwrap_or_default() {
            if let Ok(mut w) = writer.lock() {
                let _ = w.send(&reply);
            }
        }
        if let Ok(mut w) = p.writer.lock() {
            let _ = w.send(&reply);
        }
    };
    // Validate each waiter and split answered retries from fresh work.
    // A batch traversal has exactly one origin, so requests with an
    // explicit initiator group by it; everything else — the common
    // "don't care" traffic — coalesces into ONE batch per round (the
    // `None` bucket), charged to a round-robin rotating processor so no
    // single initiator becomes an artificial hot spot.
    let mut fresh: BTreeMap<Option<u64>, Vec<PendingInc>> = BTreeMap::new();
    for p in unique {
        let Some(session) = inner.sessions.get(&p.session_id) else {
            deliver(&mut dup, &p, WireMsg::Err { code: ErrCode::UnknownSession });
            continue;
        };
        match p.initiator {
            Some(i) if i < inner.backend.processors() as u64 => {}
            Some(_) => {
                deliver(&mut dup, &p, WireMsg::Err { code: ErrCode::BadInitiator });
                continue;
            }
            None => {}
        }
        if let Some(&value) = session.answered.get(&p.request_id) {
            shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
            deliver(&mut dup, &p, WireMsg::IncOk { request_id: p.request_id, value });
            continue;
        }
        fresh.entry(p.initiator).or_default().push(p);
    }
    for (explicit, waiters) in fresh {
        let m = waiters.len() as u64;
        let charged = explicit.unwrap_or_else(|| {
            let p = inner.combine_origin;
            inner.combine_origin = (inner.combine_origin + 1) % inner.backend.processors() as u64;
            p
        });
        let initiator = ProcessorId::new(charged as usize);
        shared.stats.combined_traversals.fetch_add(1, Ordering::Relaxed);
        let result = match inner.backend.reserve() {
            Some(t) => inner.backend.inc_batch_ticketed(initiator, t, m),
            None => inner.backend.inc_batch(initiator, m),
        };
        match result {
            Ok(first) => {
                for (i, p) in waiters.into_iter().enumerate() {
                    let value = first + i as u64;
                    if let Some(session) = inner.sessions.get_mut(&p.session_id) {
                        session.answered.insert(p.request_id, value);
                        session.remember(p.request_id);
                        session.ops += 1;
                    }
                    shared.stats.ops.fetch_add(1, Ordering::Relaxed);
                    deliver(&mut dup, &p, WireMsg::IncOk { request_id: p.request_id, value });
                }
            }
            // The batch's composition is not reproducible, so nothing
            // is pinned: the clients' retries re-enter a later round
            // (the same guarantee as a non-ticketed sequential inc).
            Err(_) => {
                for p in waiters {
                    deliver(&mut dup, &p, WireMsg::Err { code: ErrCode::Backend });
                }
            }
        }
    }
}

/// One explicit `BatchInc`: a single traversal granting the contiguous
/// range `[first, first + count)`, with the same two exactly-once paths
/// as [`serve_inc`] — a backend ticket pinned to the request id where
/// available, the session answer table otherwise. Retries must repeat
/// the same `count`; the reply echoes it.
fn serve_batch_inc<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    session_id: u64,
    request_id: u64,
    count: u64,
    initiator: Option<u64>,
) -> WireMsg {
    if count == 0 {
        return WireMsg::Err { code: ErrCode::Malformed };
    }
    let Ok(mut guard) = shared.inner.lock() else {
        return WireMsg::Err { code: ErrCode::Backend };
    };
    let inner = &mut *guard;
    let Some(session) = inner.sessions.get_mut(&session_id) else {
        return WireMsg::Err { code: ErrCode::UnknownSession };
    };
    let charged = match initiator {
        Some(i) if i < inner.backend.processors() as u64 => i,
        Some(_) => return WireMsg::Err { code: ErrCode::BadInitiator },
        None => session.processor,
    };
    let p = ProcessorId::new(charged as usize);

    if let Some(&first) = session.answered.get(&request_id) {
        shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
        return WireMsg::BatchOk { request_id, first, count };
    }
    let (ticket, is_retry) = match session.tickets.get(&request_id) {
        Some(&t) => (Some(t), true),
        None => match inner.backend.reserve() {
            Some(t) => {
                session.tickets.insert(request_id, t);
                session.remember(request_id);
                (Some(t), false)
            }
            None => (None, false),
        },
    };
    let result = match ticket {
        Some(t) => inner.backend.inc_batch_ticketed(p, t, count),
        None => inner.backend.inc_batch(p, count),
    };
    match result {
        Ok(first) => {
            session.ops += count;
            if is_retry {
                shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.ops.fetch_add(count, Ordering::Relaxed);
                if ticket.is_none() {
                    session.answered.insert(request_id, first);
                    session.remember(request_id);
                }
            }
            WireMsg::BatchOk { request_id, first, count }
        }
        Err(_) => WireMsg::Err { code: ErrCode::Backend },
    }
}

fn snapshot<B: CounterBackend + Send + 'static>(shared: &Arc<Shared<B>>) -> StatsSnapshot {
    let (processors, sessions, bottleneck, retirements) = match shared.inner.lock() {
        Ok(inner) => (
            inner.backend.processors() as u64,
            inner.next_session,
            inner.backend.bottleneck(),
            inner.backend.retirements(),
        ),
        Err(_) => (0, 0, 0, 0),
    };
    StatsSnapshot {
        processors,
        sessions,
        connections: shared.stats.connections.load(Ordering::Relaxed),
        ops: shared.stats.ops.load(Ordering::Relaxed),
        deduped: shared.stats.deduped.load(Ordering::Relaxed),
        wire_errors: shared.stats.wire_errors.load(Ordering::Relaxed),
        combined_traversals: shared.stats.combined_traversals.load(Ordering::Relaxed),
        bottleneck,
        retirements,
    }
}
