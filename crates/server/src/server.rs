//! The thread-per-connection TCP server.
//!
//! A [`CounterServer`] hosts any [`CounterBackend`] behind the wire
//! protocol of [`crate::wire`]. Connections are mapped to **sessions**:
//! the handshake either opens a fresh session (assigned a processor
//! round-robin, so independent clients spread over the tree's leaves
//! like the paper's initiators) or resumes an existing one after a
//! reconnect. A session keeps the dedup state that makes
//! reconnect-and-retry exactly-once: for backends with a reply cache
//! (the threaded tree), each request id is pinned to a backend **ticket**
//! — re-driving the same ticket is answered from the root's migrating
//! reply cache; for backends without one, the session's own answer table
//! serves the retry.
//!
//! Operations are serialized through one mutex around the backend,
//! matching the paper's sequential-driving model ("enough time elapses
//! between any two inc requests"): with many concurrent clients the
//! *server* stays correct and the contention becomes client-observed
//! queueing latency — which is exactly what the load generator measures.
//!
//! A server started with [`CounterServer::serve_combining`] replaces
//! that hot path with pipelined **flat combining**: connection threads
//! only *enqueue* their pending incs and return to the socket, and a
//! dedicated combiner thread drains everything queued into one
//! [`CounterBackend::inc_batch_ticketed`] traversal per round, writing
//! each waiter's slice of the granted range straight to its connection.
//! Coalesced batches are charged to a rotating origin processor (an
//! `Inc` naming an explicit initiator still climbs from that leaf), so
//! new requests accumulate while the previous round's traversal is in
//! flight — the batch size adapts to the backlog instead of a timer.
//! The counter stays exact — values are a contiguous range partitioned
//! in queue order — while the backend sees one traversal where the
//! sequential path saw `m`.
//!
//! # Overload and failure containment
//!
//! [`ServerConfig`] adds the controls a server needs once the network
//! in front of it turns adversarial (see `distctr-chaos`):
//!
//! * **admission control** — past [`ServerConfig::max_conns`] active
//!   connections, or past [`ServerConfig::max_inflight_per_conn`]
//!   queued incs on one connection, the server *sheds*: it answers
//!   [`WireMsg::Busy`] with a retry-after hint instead of queueing
//!   without bound. Nothing shed is applied, so a retry of the same
//!   request id stays exactly-once.
//! * **per-request deadlines** — a queued inc older than
//!   [`ServerConfig::request_deadline`] is shed rather than served into
//!   a reply the client has long stopped waiting for.
//! * **graceful drain** — [`CounterServer::drain`] stops admitting,
//!   lets every in-flight request finish and flushes its reply, then
//!   closes. An acked operation is never lost; a never-received one was
//!   never acked, so the client's replay on another server stays sound.
//! * **panic containment** — a panicking backend call (combining round
//!   or sequential) is caught, counted in
//!   [`crate::StatsSnapshot::panics_contained`], and turned into
//!   `Err { Backend }` replies that make the clients retry; the mutex
//!   poisoning that used to kill every later request is recovered.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use distctr_core::{CounterBackend, KeyedReply, DEFAULT_KEY};
use distctr_reactor::{is_fd_exhaustion, FdReserve, Interest, Poller, Waker};
use distctr_sim::ProcessorId;

use crate::error::{ErrCode, ServerError};
use crate::wire::{read_frame, write_frame, write_frame_buf, StatsSnapshot, WireError, WireMsg};

/// Per-session dedup window: how many recent request ids a session
/// remembers for exactly-once retries.
pub const DEDUP_WINDOW: usize = 256;

/// Tunable knobs of a [`CounterServer`]. [`ServerConfig::default`]
/// reproduces the historical behavior exactly (no admission limits, no
/// deadlines); chaos tests and operators override what they need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// How often a *threaded* connection's blocked read polls the
    /// shutdown/drain flags (the read timeout on its socket). The
    /// accept loop and the async serving path are readiness-driven and
    /// never sleep on this; it only bounds how long an idle threaded
    /// connection takes to observe shutdown.
    pub poll: Duration,
    /// Historical knob, retired: the combiner used to park for this
    /// long between shutdown-flag checks when idle. It now parks on a
    /// plain condvar wait (zero idle wakeups) and is woken explicitly
    /// by enqueues, drain and shutdown; the field remains so existing
    /// configs keep compiling.
    pub combine_idle: Duration,
    /// Active-connection cap; connections beyond it are answered
    /// [`WireMsg::Busy`] and closed. `None` admits everything.
    pub max_conns: Option<usize>,
    /// Combining mode: the most incs one connection may have queued
    /// before further ones are shed with [`WireMsg::Busy`]. `None`
    /// queues without bound.
    pub max_inflight_per_conn: Option<usize>,
    /// Combining mode: a queued inc older than this is shed with
    /// [`WireMsg::Busy`] instead of served. `None` disables deadlines.
    pub request_deadline: Option<Duration>,
    /// The backoff hint carried by every [`WireMsg::Busy`] this server
    /// sends.
    pub busy_retry_after: Duration,
    /// How long [`CounterServer::drain`] waits for connections to go
    /// idle before falling back to a hard stop.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            poll: Duration::from_millis(50),
            combine_idle: Duration::from_millis(25),
            max_conns: None,
            max_inflight_per_conn: None,
            request_deadline: None,
            busy_retry_after: Duration::from_millis(50),
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Dedup state and accounting of one client session.
#[derive(Debug, Default)]
struct Session {
    /// The processor this session's operations are charged to (unless
    /// an `Inc` names an explicit initiator).
    processor: u64,
    /// The counter key this session's unkeyed `Inc`/`BatchInc` route to
    /// ([`DEFAULT_KEY`] for sessions opened with the unkeyed `Hello`).
    key: u64,
    /// request id -> backend ticket (ticketed backends).
    tickets: HashMap<u64, u64>,
    /// request id -> value already handed out (non-ticketed backends).
    answered: HashMap<u64, u64>,
    /// Insertion order of request ids, for pruning to [`DEDUP_WINDOW`].
    seen: VecDeque<u64>,
    /// Operations this session completed.
    ops: u64,
}

impl Session {
    fn remember(&mut self, request_id: u64) {
        self.seen.push_back(request_id);
        while self.seen.len() > DEDUP_WINDOW {
            if let Some(old) = self.seen.pop_front() {
                self.tickets.remove(&old);
                self.answered.remove(&old);
            }
        }
    }
}

/// Mutex-guarded server state: the backend plus the session table.
pub(crate) struct Inner<B> {
    pub(crate) backend: B,
    sessions: HashMap<u64, Session>,
    next_session: u64,
    /// Round-robin origin for combined batches without an explicit
    /// initiator: each coalesced traversal is charged to the next
    /// processor in turn.
    combine_origin: u64,
}

/// Lock-free counters, updated by connection threads.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) connections: AtomicU64,
    pub(crate) ops: AtomicU64,
    pub(crate) deduped: AtomicU64,
    pub(crate) wire_errors: AtomicU64,
    pub(crate) combined_traversals: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) panics_contained: AtomicU64,
    pub(crate) accept_errors: AtomicU64,
}

/// The write half of one connection: the stream plus its reusable
/// encode scratch. Shared between the connection's reader thread
/// (handshake, stats, explicit-batch and error replies) and the
/// combiner thread (combined inc replies), each writing whole frames
/// under the mutex.
pub(crate) struct ConnWriter {
    stream: TcpStream,
    scratch: Vec<u8>,
}

impl ConnWriter {
    fn send(&mut self, msg: &WireMsg) -> Result<(), WireError> {
        write_frame_buf(&mut self.stream, msg, &mut self.scratch)
    }
}

/// Where the combiner delivers one waiter's reply. The threaded path
/// writes whole frames straight to the connection's stream under its
/// mutex; the readiness path cannot (only the reactor thread touches a
/// nonblocking socket), so its replies travel over a channel back to
/// the reactor, which queues them behind the connection's write buffer
/// and is woken to flush.
pub(crate) enum ReplySink {
    /// A thread-per-connection waiter: write the frame directly.
    Threaded {
        /// The connection the combiner writes this waiter's reply to.
        writer: Arc<Mutex<ConnWriter>>,
    },
    /// A readiness-loop waiter: hand the frame to the reactor thread.
    Queued {
        /// The reactor-side connection token the reply belongs to.
        token: usize,
        /// The reactor's reply channel.
        replies: mpsc::Sender<(usize, WireMsg)>,
        /// Wakes the reactor out of its poll to flush the reply.
        waker: Arc<Waker>,
    },
}

impl ReplySink {
    /// Best-effort delivery; a dead connection just drops the frame
    /// (the client's reconnect-and-retry path recovers the value).
    fn deliver(&self, msg: &WireMsg) {
        match self {
            ReplySink::Threaded { writer } => {
                if let Ok(mut w) = writer.lock() {
                    let _ = w.send(msg);
                }
            }
            ReplySink::Queued { token, replies, waker } => {
                if replies.send((*token, msg.clone())).is_ok() {
                    waker.wake();
                }
            }
        }
    }
}

/// One enqueued increment awaiting a combining round. Validation
/// (session lookup, initiator bounds, retry dedup) happens in the
/// round, under the backend lock the combiner holds, so the enqueue
/// itself touches nothing but the queue mutex — the reader thread goes
/// straight back to its socket and the connection stays pipelined.
pub(crate) struct PendingInc {
    session_id: u64,
    /// The counter this inc targets (the session's key, or an explicit
    /// one from `KeyInc`). Combining rounds batch per key.
    key: u64,
    request_id: u64,
    initiator: Option<u64>,
    /// When the reader enqueued it, for [`ServerConfig::request_deadline`].
    enqueued_at: Instant,
    /// Where this waiter's reply goes.
    sink: ReplySink,
    /// The connection's in-flight count, decremented when the reply is
    /// delivered (backs [`ServerConfig::max_inflight_per_conn`]).
    inflight: Arc<AtomicUsize>,
}

/// Work queue and wakeup for the dedicated combiner thread.
pub(crate) struct CombineState {
    queue: Mutex<Vec<PendingInc>>,
    wake: Condvar,
}

pub(crate) struct Shared<B> {
    inner: Mutex<Inner<B>>,
    pub(crate) stats: Counters,
    pub(crate) config: ServerConfig,
    /// Active (not yet closed) connections, for admission control
    /// (shared with each connection thread's exit guard).
    pub(crate) active_conns: Arc<AtomicUsize>,
    /// `Some` iff this server serves incs through flat combining.
    pub(crate) combine: Option<CombineState>,
}

impl<B> Shared<B> {
    /// Fresh server state hosting `backend`; `combining` arms the
    /// combiner queue. Both serving paths (threaded and readiness)
    /// start from this.
    pub(crate) fn new(backend: B, config: ServerConfig, combining: bool) -> Shared<B> {
        Shared {
            inner: Mutex::new(Inner {
                backend,
                sessions: HashMap::new(),
                next_session: 0,
                combine_origin: 0,
            }),
            stats: Counters::default(),
            config,
            active_conns: Arc::new(AtomicUsize::new(0)),
            combine: combining
                .then(|| CombineState { queue: Mutex::new(Vec::new()), wake: Condvar::new() }),
        }
    }

    /// Locks the server state, recovering from poisoning: a panicked
    /// request (already counted and contained) must not condemn every
    /// later request to `Err { Backend }`.
    pub(crate) fn lock_inner(&self) -> MutexGuard<'_, Inner<B>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn busy(&self) -> WireMsg {
        self.stats.shed.fetch_add(1, Ordering::Relaxed);
        WireMsg::Busy { retry_after_ms: self.config.busy_retry_after.as_millis() as u64 }
    }
}

/// Decrements the active-connection count when a connection thread
/// exits, however it exits.
pub(crate) struct ActiveGuard(pub(crate) Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A TCP stream whose reads poll the server's stop flag: a blocked
/// connection thread observes shutdown as EOF instead of wedging in
/// `read` forever. During a drain, reads that would block also return
/// EOF — at a frame boundary that is a clean `Closed`; data already
/// buffered is still read and served first.
struct PollRead {
    inner: TcpStream,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
}

impl Read for PollRead {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(0);
            }
            match self.inner.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.draining.load(Ordering::SeqCst) {
                        return Ok(0);
                    }
                }
                other => return other,
            }
        }
    }
}

/// A TCP service hosting a [`CounterBackend`].
///
/// # Examples
///
/// ```
/// use distctr_core::TreeCounter;
/// use distctr_server::{CounterServer, RemoteCounter};
///
/// # fn main() -> Result<(), distctr_server::ServerError> {
/// let backend = TreeCounter::new(8).map_err(|e| distctr_server::ServerError::Backend(e.to_string()))?;
/// let mut server = CounterServer::serve(backend)?;
/// let mut client = RemoteCounter::connect(server.local_addr())?;
/// assert_eq!(client.inc()?, 0);
/// assert_eq!(client.inc()?, 1);
/// server.shutdown()?;
/// # Ok(())
/// # }
/// ```
pub struct CounterServer<B: CounterBackend + Send + 'static> {
    pub(crate) shared: Option<Arc<Shared<B>>>,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) draining: Arc<AtomicBool>,
    pub(crate) addr: SocketAddr,
    pub(crate) accept: Option<JoinHandle<()>>,
    pub(crate) combiner: Option<JoinHandle<()>>,
    pub(crate) conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Wakes the accept/reactor thread out of its readiness wait so
    /// shutdown and drain are observed immediately instead of at the
    /// next connection event.
    pub(crate) waker: Arc<Waker>,
}

impl<B: CounterBackend + Send + 'static> CounterServer<B> {
    /// Serves `backend` on an ephemeral loopback port; see
    /// [`CounterServer::serve_on`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::serve_on`].
    pub fn serve(backend: B) -> Result<Self, ServerError> {
        Self::serve_on("127.0.0.1:0", backend)
    }

    /// [`CounterServer::serve`] with explicit [`ServerConfig`] knobs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::serve_on`].
    pub fn serve_with(backend: B, config: ServerConfig) -> Result<Self, ServerError> {
        Self::serve_inner("127.0.0.1:0", backend, false, config)
    }

    /// Serves `backend` on an ephemeral loopback port with the
    /// flat-combining inc path enabled; see [`CounterServer::serve_on`]
    /// and the module docs for what combining changes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::serve_on`].
    pub fn serve_combining(backend: B) -> Result<Self, ServerError> {
        Self::serve_combining_on("127.0.0.1:0", backend)
    }

    /// [`CounterServer::serve_combining`] with explicit [`ServerConfig`]
    /// knobs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::serve_on`].
    pub fn serve_combining_with(backend: B, config: ServerConfig) -> Result<Self, ServerError> {
        Self::serve_inner("127.0.0.1:0", backend, true, config)
    }

    /// Binds `addr` and starts the accept loop, hosting `backend`.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if binding or spawning fails.
    pub fn serve_on(addr: impl ToSocketAddrs, backend: B) -> Result<Self, ServerError> {
        Self::serve_inner(addr, backend, false, ServerConfig::default())
    }

    /// [`CounterServer::serve_on`] with the flat-combining inc path
    /// enabled.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if binding or spawning fails.
    pub fn serve_combining_on(addr: impl ToSocketAddrs, backend: B) -> Result<Self, ServerError> {
        Self::serve_inner(addr, backend, true, ServerConfig::default())
    }

    /// [`CounterServer::serve_on`] with explicit [`ServerConfig`] knobs
    /// and the serving path selected by `combining`.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if binding or spawning fails.
    pub fn serve_on_with(
        addr: impl ToSocketAddrs,
        backend: B,
        combining: bool,
        config: ServerConfig,
    ) -> Result<Self, ServerError> {
        Self::serve_inner(addr, backend, combining, config)
    }

    fn serve_inner(
        addr: impl ToSocketAddrs,
        backend: B,
        combining: bool,
        config: ServerConfig,
    ) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServerError::Io(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| ServerError::Io(e.to_string()))?;
        // Nonblocking, so the accept loop doubles as the reap tick and
        // observes shutdown without a wakeup connection.
        listener.set_nonblocking(true).map_err(|e| ServerError::Io(e.to_string()))?;
        let shared = Arc::new(Shared::new(backend, config, combining));
        let stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let waker = Arc::new(Waker::new().map_err(|e| ServerError::Io(e.to_string()))?);
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let combiner = if combining {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            Some(
                std::thread::Builder::new()
                    .name("distctr-combiner".into())
                    .spawn(move || combiner_loop(&shared, &stop))
                    .map_err(|e| ServerError::Io(e.to_string()))?,
            )
        } else {
            None
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let draining = Arc::clone(&draining);
            let conns = Arc::clone(&conns);
            let waker = Arc::clone(&waker);
            std::thread::Builder::new()
                .name("distctr-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &stop, &draining, &conns, &waker))
                .map_err(|e| ServerError::Io(e.to_string()))?
        };
        Ok(CounterServer {
            shared: Some(shared),
            stop,
            draining,
            addr,
            accept: Some(accept),
            combiner,
            conns,
            waker,
        })
    }

    /// The bound address (connect [`crate::RemoteCounter`] here).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A statistics snapshot, identical to what [`WireMsg::Stats`]
    /// returns over the wire.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        match &self.shared {
            Some(shared) => snapshot(shared),
            None => StatsSnapshot::default(),
        }
    }

    /// Per-session operation counts `(session id, ops)`, ordered by
    /// session id — the server-side per-connection counters.
    #[must_use]
    pub fn session_ops(&self) -> Vec<(u64, u64)> {
        let Some(shared) = &self.shared else { return Vec::new() };
        let inner = shared.lock_inner();
        let mut out: Vec<(u64, u64)> = inner.sessions.iter().map(|(&id, s)| (id, s.ops)).collect();
        out.sort_unstable();
        out
    }

    /// Gracefully drains the server: stops admitting (new connections
    /// are answered [`WireMsg::Busy`]), lets every connection finish
    /// the request it is serving, flushes all queued combining replies,
    /// then closes and joins every thread. In-flight requests get their
    /// reply or a clean close — an acked operation is never lost.
    /// Connections still busy after [`ServerConfig::drain_grace`] are
    /// cut by a hard stop.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if a service thread panicked.
    pub fn drain(&mut self) -> Result<(), ServerError> {
        if self.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        self.draining.store(true, Ordering::SeqCst);
        self.waker.wake();
        let grace = self
            .shared
            .as_ref()
            .map_or_else(|| ServerConfig::default().drain_grace, |s| s.config.drain_grace);
        let deadline = Instant::now() + grace;
        // Wait for connections to run dry. Threaded: each connection
        // thread exits once its socket idles at a frame boundary
        // (PollRead reports EOF under drain) or after serving its
        // current request. Readiness: the reactor closes each
        // connection once its buffered requests are served and its
        // replies flushed; `active_conns` reaching zero covers both.
        let all_conns_done = |server: &Self| {
            let threads_done =
                server.conns.lock().map_or(true, |c| c.iter().all(JoinHandle::is_finished));
            let active =
                server.shared.as_ref().map_or(0, |s| s.active_conns.load(Ordering::SeqCst));
            threads_done && active == 0
        };
        while !all_conns_done(self) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Let the combiner flush every queued reply before stopping it.
        if let Some(combine) = self.shared.as_ref().and_then(|s| s.combine.as_ref()) {
            loop {
                let empty = combine.queue.lock().map_or(true, |q| q.is_empty());
                if empty || Instant::now() >= deadline {
                    break;
                }
                combine.wake.notify_one();
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // From here it is the ordinary teardown: stragglers past the
        // grace period observe the hard stop.
        self.stop.store(true, Ordering::SeqCst);
        self.join_all()
    }

    /// Stops accepting, disconnects every client, and joins all threads.
    /// The hosted backend stays alive until the server is dropped (or
    /// reclaimed via [`CounterServer::into_backend`]). For a shutdown
    /// that lets in-flight requests finish first, see
    /// [`CounterServer::drain`].
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if a service thread panicked.
    pub fn shutdown(&mut self) -> Result<(), ServerError> {
        if self.stop.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        self.join_all()
    }

    /// Joins the accept loop, the combiner and every connection thread
    /// (the stop flag must already be set).
    fn join_all(&mut self) -> Result<(), ServerError> {
        let mut panicked = false;
        // The accept/reactor thread may be parked in a readiness wait
        // with no timeout; the stop flag alone cannot reach it.
        self.waker.wake();
        if let Some(handle) = self.accept.take() {
            panicked |= handle.join().is_err();
        }
        if let Some(handle) = self.combiner.take() {
            if let Some(combine) = self.shared.as_ref().and_then(|s| s.combine.as_ref()) {
                combine.wake.notify_all();
            }
            panicked |= handle.join().is_err();
        }
        let handles = match self.conns.lock() {
            Ok(mut conns) => conns.drain(..).collect::<Vec<_>>(),
            Err(_) => Vec::new(),
        };
        for handle in handles {
            panicked |= handle.join().is_err();
        }
        if panicked {
            return Err(ServerError::Io("a service thread panicked".into()));
        }
        Ok(())
    }

    /// Shuts down and hands back the hosted backend for direct
    /// inspection (loads, audits).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterServer::shutdown`].
    pub fn into_backend(mut self) -> Result<B, ServerError> {
        self.shutdown()?;
        let shared = self.shared.take().ok_or(ServerError::ShutDown)?;
        let shared = Arc::try_unwrap(shared)
            .map_err(|_| ServerError::Io("a connection still holds the server state".into()))?;
        let inner = shared.inner.into_inner().unwrap_or_else(PoisonError::into_inner);
        Ok(inner.backend)
    }
}

impl<B: CounterBackend + Send + 'static> Drop for CounterServer<B> {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Tokens of the accept loop's two registrations.
const ACCEPT_TOKEN_LISTENER: usize = 0;
const ACCEPT_TOKEN_WAKER: usize = 1;

/// The thread-per-connection accept loop, readiness-driven: it parks in
/// a [`Poller`] wait over the listener and the server's [`Waker`], so a
/// new connection is accepted the instant it arrives (the historical
/// version napped [`ServerConfig::poll`] between nonblocking accept
/// attempts — a 50ms admission-latency floor) and shutdown/drain are
/// observed via a wakeup instead of the next flag poll.
fn accept_loop<B: CounterBackend + Send + 'static>(
    listener: &TcpListener,
    shared: &Arc<Shared<B>>,
    stop: &Arc<AtomicBool>,
    draining: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    waker: &Arc<Waker>,
) {
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => return accept_loop_sleeping(listener, shared, stop, draining, conns),
    };
    if poller.register(listener.as_raw_fd(), ACCEPT_TOKEN_LISTENER, Interest::READ).is_err()
        || poller.register(waker.fd(), ACCEPT_TOKEN_WAKER, Interest::READ).is_err()
    {
        return accept_loop_sleeping(listener, shared, stop, draining, conns);
    }
    // The reserve descriptor that lets EMFILE be *answered*; see
    // `FdReserve`. While exhausted, the listener's interest is parked
    // for a backoff period so the loop does not spin on a condition
    // only the kernel can clear.
    let mut reserve = FdReserve::new();
    let mut paused_until: Option<Instant> = None;
    let mut events = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // While fd-exhausted, sleep out the rest of the backoff (the
        // waker still interrupts for shutdown); afterwards re-arm.
        let timeout = paused_until.map(|t| t.saturating_duration_since(Instant::now()));
        if let Some(until) = paused_until {
            if Instant::now() >= until
                && poller
                    .modify(listener.as_raw_fd(), ACCEPT_TOKEN_LISTENER, Interest::READ)
                    .is_ok()
            {
                paused_until = None;
            }
        }
        if poller.wait(&mut events, timeout).is_err() {
            break;
        }
        waker.drain();
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Accept the whole burst the wakeup announced.
        loop {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    // Admission control: draining servers and servers at
                    // their connection cap shed with a Busy hint instead
                    // of accepting work they will not finish.
                    let at_cap = shared
                        .config
                        .max_conns
                        .is_some_and(|cap| shared.active_conns.load(Ordering::SeqCst) >= cap);
                    if draining.load(Ordering::SeqCst) || at_cap {
                        let _ = write_frame(&mut stream, &shared.busy());
                        continue;
                    }
                    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                    shared.active_conns.fetch_add(1, Ordering::SeqCst);
                    let guard = ActiveGuard(Arc::clone(&shared.active_conns));
                    let shared_conn = Arc::clone(shared);
                    let stop_flag = Arc::clone(stop);
                    let drain_flag = Arc::clone(draining);
                    let spawned =
                        std::thread::Builder::new().name("distctr-conn".into()).spawn(move || {
                            let _guard = guard;
                            handle_conn(stream, &shared_conn, &stop_flag, &drain_flag);
                        });
                    if let (Ok(handle), Ok(mut conns)) = (spawned, conns.lock()) {
                        // Reap finished handles while we are here, so an
                        // active server never accumulates them.
                        conns.retain(|h| !h.is_finished());
                        conns.push(handle);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if is_fd_exhaustion(&e) => {
                    // Out of descriptors: answer what we can through the
                    // reserve fd, then back off instead of hot-looping
                    // on an accept that can only fail again.
                    shared.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    reserve.shed_one(listener, |s| {
                        let _ = write_frame(s, &shared.busy());
                    });
                    if poller
                        .modify(listener.as_raw_fd(), ACCEPT_TOKEN_LISTENER, Interest::NONE)
                        .is_ok()
                    {
                        paused_until = Some(Instant::now() + shared.config.busy_retry_after);
                    }
                    break;
                }
                Err(_) => {
                    // Transient per-connection failure (ECONNABORTED and
                    // friends): count it and take the next one.
                    shared.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }
}

/// Fallback accept loop for the (never expected) case where no poller
/// can be built: the historical nonblocking-accept-then-nap loop.
fn accept_loop_sleeping<B: CounterBackend + Send + 'static>(
    listener: &TcpListener,
    shared: &Arc<Shared<B>>,
    stop: &Arc<AtomicBool>,
    draining: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let at_cap = shared
                    .config
                    .max_conns
                    .is_some_and(|cap| shared.active_conns.load(Ordering::SeqCst) >= cap);
                if draining.load(Ordering::SeqCst) || at_cap {
                    let _ = write_frame(&mut stream, &shared.busy());
                    continue;
                }
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let guard = ActiveGuard(Arc::clone(&shared.active_conns));
                let shared_conn = Arc::clone(shared);
                let stop_flag = Arc::clone(stop);
                let drain_flag = Arc::clone(draining);
                let spawned =
                    std::thread::Builder::new().name("distctr-conn".into()).spawn(move || {
                        let _guard = guard;
                        handle_conn(stream, &shared_conn, &stop_flag, &drain_flag);
                    });
                if let (Ok(handle), Ok(mut conns)) = (spawned, conns.lock()) {
                    conns.retain(|h| !h.is_finished());
                    conns.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if let Ok(mut conns) = conns.lock() {
                    conns.retain(|h| !h.is_finished());
                }
                std::thread::sleep(shared.config.poll);
            }
            Err(_) => {
                shared.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(shared.config.poll);
            }
        }
    }
}

/// Serves one connection to completion. Never panics on client input:
/// every codec failure becomes a typed `Err` frame (best-effort) and a
/// closed connection, with the session state kept for a resume.
fn handle_conn<B: CounterBackend + Send + 'static>(
    stream: TcpStream,
    shared: &Arc<Shared<B>>,
    stop: &Arc<AtomicBool>,
    draining: &Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader =
        PollRead { inner: read_half, stop: Arc::clone(stop), draining: Arc::clone(draining) };
    let mut writer = stream;

    // --- handshake: the first frame must be a Hello (either version) --
    let established = match read_frame(&mut reader) {
        Ok(WireMsg::Hello { resume }) => establish(shared, resume, DEFAULT_KEY),
        Ok(WireMsg::HelloKeyed { resume, key }) => establish(shared, resume, key),
        Ok(_) => {
            shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(&mut writer, &WireMsg::Err { code: ErrCode::BadHandshake });
            return;
        }
        Err(e) => {
            report_wire_error(&mut writer, shared, &e);
            return;
        }
    };
    let (session_id, session_key) = match established {
        Ok(pair) => pair,
        Err(code) => {
            let _ = write_frame(&mut writer, &WireMsg::Err { code });
            return;
        }
    };
    let processor = shared.lock_inner().sessions.get(&session_id).map_or(0, |s| s.processor);
    if write_frame(&mut writer, &WireMsg::HelloOk { session: session_id, processor }).is_err() {
        return;
    }

    // --- session loop -------------------------------------------------
    // The write half moves behind a mutex shared with the combiner
    // thread, with one scratch buffer per connection: every reply frame
    // on the hot path is encoded into it and written with a single
    // syscall, with no per-message allocation.
    let writer =
        Arc::new(Mutex::new(ConnWriter { stream: writer, scratch: Vec::with_capacity(64) }));
    let inflight = Arc::new(AtomicUsize::new(0));
    loop {
        // A draining server closes at the next frame boundary; the
        // request just served (if any) already has its reply written,
        // and queued combining replies are flushed by the combiner.
        if draining.load(Ordering::SeqCst) {
            break;
        }
        match read_frame(&mut reader) {
            // An unkeyed Inc routes to the session's key; KeyInc names
            // its counter explicitly. Both take the same two serving
            // paths (combining enqueue vs sequential).
            Ok(WireMsg::Inc { request_id, initiator }) => {
                if !route_inc(
                    shared,
                    session_id,
                    session_key,
                    request_id,
                    initiator,
                    &writer,
                    &inflight,
                ) {
                    break;
                }
            }
            Ok(WireMsg::KeyInc { key, request_id, initiator }) => {
                if !route_inc(shared, session_id, key, request_id, initiator, &writer, &inflight) {
                    break;
                }
            }
            Ok(WireMsg::BatchInc { request_id, count, initiator }) => {
                let reply =
                    serve_batch_inc(shared, session_id, session_key, request_id, count, initiator);
                if send_reply(&writer, &reply).is_err() {
                    break;
                }
            }
            Ok(WireMsg::KeyBatchInc { key, request_id, count, initiator }) => {
                let reply = serve_batch_inc(shared, session_id, key, request_id, count, initiator);
                if send_reply(&writer, &reply).is_err() {
                    break;
                }
            }
            Ok(WireMsg::Read { key }) => {
                let value = shared.lock_inner().backend.read_key(key);
                let reply = match value {
                    Some(value) => WireMsg::ReadOk { key, value },
                    None => WireMsg::Err { code: ErrCode::NoSuchKey },
                };
                if send_reply(&writer, &reply).is_err() {
                    break;
                }
            }
            Ok(WireMsg::Stats) => {
                let reply = WireMsg::StatsOk(snapshot(shared));
                if send_reply(&writer, &reply).is_err() {
                    break;
                }
            }
            Ok(WireMsg::Hello { .. } | WireMsg::HelloKeyed { .. }) => {
                shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send_reply(&writer, &WireMsg::Err { code: ErrCode::BadHandshake });
                break;
            }
            Ok(
                WireMsg::HelloOk { .. }
                | WireMsg::IncOk { .. }
                | WireMsg::BatchOk { .. }
                | WireMsg::StatsOk(_)
                | WireMsg::Busy { .. }
                | WireMsg::ReadOk { .. }
                | WireMsg::Err { .. },
            ) => {
                shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send_reply(&writer, &WireMsg::Err { code: ErrCode::Malformed });
                break;
            }
            Err(WireError::Closed) => break,
            Err(e) => {
                shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                if let Some(code) = wire_err_code(&e) {
                    let _ = send_reply(&writer, &WireMsg::Err { code });
                }
                break;
            }
        }
    }
}

/// Resolves a handshake into `(session id, session key)`: resume an
/// existing session (keeping its key and dedup state) or open a fresh
/// one bound to `key`.
pub(crate) fn establish<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    resume: Option<u64>,
    key: u64,
) -> Result<(u64, u64), ErrCode> {
    let mut inner = shared.lock_inner();
    match resume {
        Some(id) => match inner.sessions.get(&id) {
            // The session's original key wins: resuming re-attaches to
            // the same counter the acked operations went to.
            Some(session) => Ok((id, session.key)),
            None => Err(ErrCode::UnknownSession),
        },
        None => {
            let id = inner.next_session;
            inner.next_session += 1;
            let processor = id % inner.backend.processors() as u64;
            inner.sessions.insert(id, Session { processor, key, ..Session::default() });
            Ok((id, key))
        }
    }
}

/// The processor a session's operations are charged to (0 when the
/// session vanished — the reply is heading into a dead connection
/// anyway).
pub(crate) fn session_processor<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    session_id: u64,
) -> u64 {
    shared.lock_inner().sessions.get(&session_id).map_or(0, |s| s.processor)
}

/// Writes one reply frame under the connection's writer mutex.
fn send_reply(writer: &Arc<Mutex<ConnWriter>>, msg: &WireMsg) -> Result<(), WireError> {
    match writer.lock() {
        Ok(mut w) => w.send(msg),
        Err(_) => Err(WireError::Io("connection writer poisoned".into())),
    }
}

/// Dispatches one inc — unkeyed (carrying its session's key) or an
/// explicit `KeyInc` — onto the serving path: combining servers enqueue
/// and return to the socket, sequential servers serve inline. Returns
/// `false` when the connection must close.
fn route_inc<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    session_id: u64,
    key: u64,
    request_id: u64,
    initiator: Option<u64>,
    writer: &Arc<Mutex<ConnWriter>>,
    inflight: &Arc<AtomicUsize>,
) -> bool {
    match &shared.combine {
        // Pipelined: enqueue for the combiner and go straight back to
        // the socket; the combiner writes the reply.
        Some(combine) => {
            let over_cap = shared
                .config
                .max_inflight_per_conn
                .is_some_and(|cap| inflight.load(Ordering::SeqCst) >= cap);
            if over_cap {
                // Shed instead of queueing without bound; the request
                // was not applied, so the client's retry of the same id
                // stays exactly-once.
                send_reply(writer, &shared.busy()).is_ok()
            } else {
                let sink = ReplySink::Threaded { writer: Arc::clone(writer) };
                enqueue_inc(combine, session_id, key, request_id, initiator, sink, inflight)
            }
        }
        None => {
            let reply = serve_inc(shared, session_id, key, request_id, initiator);
            send_reply(writer, &reply).is_ok()
        }
    }
}

/// Enqueues one inc for the combiner thread and returns to the socket
/// without waiting — a connection can have many incs in flight at once.
/// Returns `false` only if the queue mutex is poisoned.
pub(crate) fn enqueue_inc(
    combine: &CombineState,
    session_id: u64,
    key: u64,
    request_id: u64,
    initiator: Option<u64>,
    sink: ReplySink,
    inflight: &Arc<AtomicUsize>,
) -> bool {
    let Ok(mut q) = combine.queue.lock() else { return false };
    let was_empty = q.is_empty();
    inflight.fetch_add(1, Ordering::SeqCst);
    q.push(PendingInc {
        session_id,
        key,
        request_id,
        initiator,
        enqueued_at: Instant::now(),
        sink,
        inflight: Arc::clone(inflight),
    });
    drop(q);
    // The combiner only parks after observing an empty queue under this
    // mutex, so only the empty -> non-empty transition can have a parked
    // waiter; pushes onto a backlog skip the futex wake.
    if was_empty {
        combine.wake.notify_one();
    }
    true
}

/// The client-visible code for a decode failure, if the transport is
/// still there to send it on.
pub(crate) fn wire_err_code(e: &WireError) -> Option<ErrCode> {
    match e {
        WireError::Oversized { .. } => Some(ErrCode::Oversized),
        WireError::UnknownTag(_) => Some(ErrCode::UnknownTag),
        WireError::Malformed(_) => Some(ErrCode::Malformed),
        WireError::Checksum { .. } => Some(ErrCode::Corrupt),
        // Truncated / Io: the transport is gone; nothing to send on.
        _ => None,
    }
}

/// Maps a decode failure to its wire code, counts it, and makes a
/// best-effort attempt to tell the client before the connection closes.
fn report_wire_error<B: CounterBackend + Send + 'static>(
    writer: &mut TcpStream,
    shared: &Arc<Shared<B>>,
    e: &WireError,
) {
    shared.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
    if let Some(code) = wire_err_code(e) {
        let _ = write_frame(writer, &WireMsg::Err { code });
    }
}

/// Runs one backend operation with panic containment: a panicking
/// backend (or a bug in the serving path) is caught, counted, and
/// reported as a `Backend` error the client will retry — instead of a
/// dead thread and a poisoned lock.
fn contained<T>(stats: &Counters, f: impl FnOnce() -> Result<T, ()>) -> Result<T, ErrCode> {
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(())) => Err(ErrCode::Backend),
        Err(_panic) => {
            stats.panics_contained.fetch_add(1, Ordering::Relaxed);
            Err(ErrCode::Backend)
        }
    }
}

/// One increment, with exactly-once retry semantics. See the module doc
/// for the two dedup paths (backend tickets vs the session answer
/// table). A non-default `key` takes the keyed backend path instead:
/// the backend routes the key and keeps its own migrating reply cache,
/// with the session answer table in front as the first dedup line.
pub(crate) fn serve_inc<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    session_id: u64,
    key: u64,
    request_id: u64,
    initiator: Option<u64>,
) -> WireMsg {
    let mut guard = shared.lock_inner();
    let inner = &mut *guard;
    let Some(session) = inner.sessions.get_mut(&session_id) else {
        return WireMsg::Err { code: ErrCode::UnknownSession };
    };
    let charged = match initiator {
        Some(i) if i < inner.backend.processors() as u64 => i,
        Some(_) => return WireMsg::Err { code: ErrCode::BadInitiator },
        None => session.processor,
    };
    let p = ProcessorId::new(charged as usize);

    // Retry of a request a non-ticketed backend already answered: the
    // session's own table is the reply cache.
    if let Some(&value) = session.answered.get(&request_id) {
        shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
        return WireMsg::IncOk { request_id, value };
    }
    if key != DEFAULT_KEY {
        return match serve_keyed(shared, inner, session_id, key, p, request_id, 1) {
            Ok(value) => WireMsg::IncOk { request_id, value },
            Err(code) => WireMsg::Err { code },
        };
    }
    // Ticketed path: the first sighting of a request id reserves a
    // backend ticket; a retry re-drives the *same* ticket, which the
    // backend's reply cache answers without incrementing again.
    let backend = &mut inner.backend;
    let (ticket, is_retry) = match session.tickets.get(&request_id) {
        Some(&t) => (Some(t), true),
        None => match contained(&shared.stats, || Ok(backend.reserve())) {
            Ok(Some(t)) => {
                session.tickets.insert(request_id, t);
                session.remember(request_id);
                (Some(t), false)
            }
            Ok(None) => (None, false),
            Err(code) => return WireMsg::Err { code },
        },
    };
    let result = contained(&shared.stats, || {
        match ticket {
            Some(t) => backend.inc_ticketed(p, t),
            None => backend.inc(p),
        }
        .map_err(|_| ())
    });
    match result {
        Ok(value) => {
            session.ops += 1;
            if is_retry {
                shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.ops.fetch_add(1, Ordering::Relaxed);
                if ticket.is_none() {
                    session.answered.insert(request_id, value);
                    session.remember(request_id);
                }
            }
            WireMsg::IncOk { request_id, value }
        }
        // The ticket (if any) stays pinned to the request id, so the
        // client's retry converges on exactly-once.
        Err(code) => WireMsg::Err { code },
    }
}

/// The keyed serving path shared by [`serve_inc`] and
/// [`serve_batch_inc`]: drives the backend's keyed batch op under a
/// `(session, request)` dedup token — the backend's keyed reply cache
/// is what survives a key migrating between placements — and mirrors
/// the grant into the session answer table so later retries are
/// answered without touching the backend at all.
fn serve_keyed<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    inner: &mut Inner<B>,
    session_id: u64,
    key: u64,
    p: ProcessorId,
    request_id: u64,
    count: u64,
) -> Result<u64, ErrCode> {
    let backend = &mut inner.backend;
    let reply = contained(&shared.stats, || {
        backend.inc_batch_key(key, p, count, Some((session_id, request_id))).map_err(|_| ())
    })?;
    let (first, fresh) = match reply {
        KeyedReply::Fresh(first) => (first, true),
        KeyedReply::Replay(first) => (first, false),
        KeyedReply::Unrouted => return Err(ErrCode::NoSuchKey),
    };
    if let Some(session) = inner.sessions.get_mut(&session_id) {
        session.answered.insert(request_id, first);
        session.remember(request_id);
        session.ops += count;
    }
    if fresh {
        shared.stats.ops.fetch_add(count, Ordering::Relaxed);
    } else {
        shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
    }
    Ok(first)
}

/// The dedicated combiner: parks until incs are queued, then drains and
/// serves rounds until the queue is empty again. Everything that
/// accumulates while one round's traversals are in flight becomes the
/// next round's batch — backpressure, not a timer, sets the batch size.
/// Replies are written straight to each waiter's connection, so the
/// per-inc hot path costs one enqueue and an amortized share of one
/// traversal, with no per-reply thread handoff.
pub(crate) fn combiner_loop<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    stop: &Arc<AtomicBool>,
) {
    let Some(combine) = &shared.combine else { return };
    loop {
        let drained = {
            let Ok(mut q) = combine.queue.lock() else { return };
            loop {
                if !q.is_empty() {
                    // Serve what's queued even mid-shutdown; the final
                    // empty drain observes `stop` and exits.
                    break std::mem::take(&mut *q);
                }
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // A plain wait, not a timed one: every transition that
                // matters is paired with a notify (enqueue on the
                // empty -> non-empty edge, drain's flush loop, and
                // `join_all` after setting `stop`), so an idle combiner
                // costs zero wakeups — the historical `combine_idle`
                // tick burned a futex wake every 25ms per idle server.
                let Ok(guard) = combine.wake.wait(q) else {
                    return;
                };
                q = guard;
            }
        };
        let mut inner = shared.lock_inner();
        combine_round(shared, &mut inner, drained);
    }
}

/// One combining round: answer retries from the session tables, then
/// drive **one** batched traversal per initiating processor, slicing
/// each granted range `[first, first + m)` over its waiters in queue
/// order. Each slice is recorded in its session's answer table before
/// the reply is sent, so a reconnect-and-retry of any combined request
/// is answered exactly-once without a traversal.
fn combine_round<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    inner: &mut Inner<B>,
    drained: Vec<PendingInc>,
) {
    // A retry racing its original into the same round must share one
    // slice, not claim two: dedupe by (session, request id) and park
    // the duplicates' connections until the key is answered.
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut dup: HashMap<(u64, u64), Vec<PendingInc>> = HashMap::new();
    let mut unique: Vec<PendingInc> = Vec::new();
    for p in drained {
        if seen.insert((p.session_id, p.request_id)) {
            unique.push(p);
        } else {
            shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
            dup.entry((p.session_id, p.request_id)).or_default().push(p);
        }
    }
    // Sends `reply` to a waiter (and any same-key duplicates), then
    // releases the waiters' in-flight slots.
    let deliver =
        |dup: &mut HashMap<(u64, u64), Vec<PendingInc>>, p: &PendingInc, reply: WireMsg| {
            for d in dup.remove(&(p.session_id, p.request_id)).unwrap_or_default() {
                d.sink.deliver(&reply);
                d.inflight.fetch_sub(1, Ordering::SeqCst);
            }
            p.sink.deliver(&reply);
            p.inflight.fetch_sub(1, Ordering::SeqCst);
        };
    // Validate each waiter and split answered retries from fresh work.
    // A batch traversal targets exactly one counter and has exactly one
    // origin, so waiters group by **(key, initiator)**: per key,
    // requests with an explicit initiator group by it and everything
    // else — the common "don't care" traffic — coalesces into ONE batch
    // per round (the `None` bucket), charged to a round-robin rotating
    // processor so no single initiator becomes an artificial hot spot.
    let mut fresh: BTreeMap<(u64, Option<u64>), Vec<PendingInc>> = BTreeMap::new();
    for p in unique {
        let Some(session) = inner.sessions.get(&p.session_id) else {
            deliver(&mut dup, &p, WireMsg::Err { code: ErrCode::UnknownSession });
            continue;
        };
        match p.initiator {
            Some(i) if i < inner.backend.processors() as u64 => {}
            Some(_) => {
                deliver(&mut dup, &p, WireMsg::Err { code: ErrCode::BadInitiator });
                continue;
            }
            None => {}
        }
        if let Some(&value) = session.answered.get(&p.request_id) {
            shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
            deliver(&mut dup, &p, WireMsg::IncOk { request_id: p.request_id, value });
            continue;
        }
        // A waiter past its deadline is shed, not served: the client
        // stopped waiting long ago, and serving it would consume a
        // value whose ack nobody collects.
        if shared.config.request_deadline.is_some_and(|d| p.enqueued_at.elapsed() > d) {
            deliver(&mut dup, &p, shared.busy());
            continue;
        }
        fresh.entry((p.key, p.initiator)).or_default().push(p);
    }
    for ((key, explicit), waiters) in fresh {
        let m = waiters.len() as u64;
        let charged = explicit.unwrap_or_else(|| {
            let p = inner.combine_origin;
            inner.combine_origin = (inner.combine_origin + 1) % inner.backend.processors() as u64;
            p
        });
        let initiator = ProcessorId::new(charged as usize);
        shared.stats.combined_traversals.fetch_add(1, Ordering::Relaxed);
        // The whole traversal runs contained: a panicking backend round
        // is caught here, its waiters are told to retry, and the
        // combiner (and the server with it) survives.
        let backend = &mut inner.backend;
        let result = contained(&shared.stats, || {
            if key == DEFAULT_KEY {
                // The legacy single-counter path, tickets and all.
                match backend.reserve() {
                    Some(t) => backend.inc_batch_ticketed(initiator, t, m),
                    None => backend.inc_batch(initiator, m),
                }
                .map(KeyedReply::Fresh)
            } else {
                // Keyed rounds carry no token: the batch is an
                // aggregate of many requests, so per-request dedup
                // lives in the session answer tables (filled below) and
                // the keyspace's own cache — a token here could only
                // alias distinct batches.
                backend.inc_batch_key(key, initiator, m, None)
            }
            .map_err(|_| ())
        });
        match result {
            Ok(KeyedReply::Fresh(first) | KeyedReply::Replay(first)) => {
                for (i, p) in waiters.into_iter().enumerate() {
                    let value = first + i as u64;
                    if let Some(session) = inner.sessions.get_mut(&p.session_id) {
                        session.answered.insert(p.request_id, value);
                        session.remember(p.request_id);
                        session.ops += 1;
                    }
                    shared.stats.ops.fetch_add(1, Ordering::Relaxed);
                    deliver(&mut dup, &p, WireMsg::IncOk { request_id: p.request_id, value });
                }
            }
            Ok(KeyedReply::Unrouted) => {
                for p in waiters {
                    deliver(&mut dup, &p, WireMsg::Err { code: ErrCode::NoSuchKey });
                }
            }
            // The batch's composition is not reproducible, so nothing
            // is pinned: the clients' retries re-enter a later round
            // (the same guarantee as a non-ticketed sequential inc).
            Err(code) => {
                for p in waiters {
                    deliver(&mut dup, &p, WireMsg::Err { code });
                }
            }
        }
    }
}

/// One explicit `BatchInc`: a single traversal granting the contiguous
/// range `[first, first + count)`, with the same two exactly-once paths
/// as [`serve_inc`] — a backend ticket pinned to the request id where
/// available, the session answer table otherwise. Retries must repeat
/// the same `count`; the reply echoes it.
pub(crate) fn serve_batch_inc<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
    session_id: u64,
    key: u64,
    request_id: u64,
    count: u64,
    initiator: Option<u64>,
) -> WireMsg {
    if count == 0 {
        return WireMsg::Err { code: ErrCode::Malformed };
    }
    let mut guard = shared.lock_inner();
    let inner = &mut *guard;
    let Some(session) = inner.sessions.get_mut(&session_id) else {
        return WireMsg::Err { code: ErrCode::UnknownSession };
    };
    let charged = match initiator {
        Some(i) if i < inner.backend.processors() as u64 => i,
        Some(_) => return WireMsg::Err { code: ErrCode::BadInitiator },
        None => session.processor,
    };
    let p = ProcessorId::new(charged as usize);

    if let Some(&first) = session.answered.get(&request_id) {
        shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
        return WireMsg::BatchOk { request_id, first, count };
    }
    if key != DEFAULT_KEY {
        return match serve_keyed(shared, inner, session_id, key, p, request_id, count) {
            Ok(first) => WireMsg::BatchOk { request_id, first, count },
            Err(code) => WireMsg::Err { code },
        };
    }
    let backend = &mut inner.backend;
    let (ticket, is_retry) = match session.tickets.get(&request_id) {
        Some(&t) => (Some(t), true),
        None => match contained(&shared.stats, || Ok(backend.reserve())) {
            Ok(Some(t)) => {
                session.tickets.insert(request_id, t);
                session.remember(request_id);
                (Some(t), false)
            }
            Ok(None) => (None, false),
            Err(code) => return WireMsg::Err { code },
        },
    };
    let result = contained(&shared.stats, || {
        match ticket {
            Some(t) => backend.inc_batch_ticketed(p, t, count),
            None => backend.inc_batch(p, count),
        }
        .map_err(|_| ())
    });
    match result {
        Ok(first) => {
            session.ops += count;
            if is_retry {
                shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.ops.fetch_add(count, Ordering::Relaxed);
                if ticket.is_none() {
                    session.answered.insert(request_id, first);
                    session.remember(request_id);
                }
            }
            WireMsg::BatchOk { request_id, first, count }
        }
        Err(code) => WireMsg::Err { code },
    }
}

pub(crate) fn snapshot<B: CounterBackend + Send + 'static>(
    shared: &Arc<Shared<B>>,
) -> StatsSnapshot {
    let (processors, sessions, bottleneck, retirements, keyspace) = {
        let inner = shared.lock_inner();
        (
            inner.backend.processors() as u64,
            inner.next_session,
            inner.backend.bottleneck(),
            inner.backend.retirements(),
            inner.backend.keyspace_stats(),
        )
    };
    StatsSnapshot {
        processors,
        sessions,
        connections: shared.stats.connections.load(Ordering::Relaxed),
        ops: shared.stats.ops.load(Ordering::Relaxed),
        deduped: shared.stats.deduped.load(Ordering::Relaxed),
        wire_errors: shared.stats.wire_errors.load(Ordering::Relaxed),
        combined_traversals: shared.stats.combined_traversals.load(Ordering::Relaxed),
        shed: shared.stats.shed.load(Ordering::Relaxed),
        panics_contained: shared.stats.panics_contained.load(Ordering::Relaxed),
        bottleneck,
        retirements,
        keys_hosted: keyspace.keys_hosted,
        promotions: keyspace.promotions,
        demotions: keyspace.demotions,
        migrations_inflight: keyspace.migrations_inflight,
        accept_errors: shared.stats.accept_errors.load(Ordering::Relaxed),
    }
}
