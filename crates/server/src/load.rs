//! The load-generation harness: N concurrent client connections in
//! front of one server, with client-observed latency accounting.
//!
//! Two driving disciplines:
//!
//! * **closed loop** — every connection keeps exactly one operation in
//!   flight (send, wait, repeat). Throughput is limited by the server's
//!   serialized backend; latency measures service time plus queueing
//!   behind the other connections.
//! * **open loop** — operations are injected on a fixed schedule
//!   regardless of completions, and latency is measured from the
//!   *scheduled* injection time. Past the saturation rate the queue
//!   grows without bound and the tail explodes — the classic
//!   contention-vs-throughput picture (cf. Lenzen–Rybicki's counting
//!   regimes), retold as what a client actually experiences in front of
//!   the paper's bottleneck.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use distctr_analysis::{percentile, Histogram, Table};
use distctr_sim::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::client::{ClientConfig, RemoteCounter};
use crate::error::ServerError;
use crate::wire::{read_frame, write_frame, write_frame_buf, WireMsg};

/// The driving discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// One in-flight operation per connection.
    Closed,
    /// Fixed-schedule injection at `rate` operations/second in total
    /// (split evenly over the connections), latency measured from the
    /// scheduled injection time.
    Open {
        /// Total target rate, operations per second.
        rate: f64,
    },
}

/// A keyed traffic mix: every operation targets a counter key drawn
/// from a Zipf distribution over ranks `0..keys` — the multi-counter
/// analogue of [`distctr_sim::Workload::Zipf`]. Low ranks are hot,
/// high ranks are cold; a keyspace backend should promote the former
/// and leave the latter centralized.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyMix {
    /// Number of distinct counter keys.
    pub keys: usize,
    /// Zipf skew exponent (`0` = uniform-with-replacement).
    pub s: f64,
    /// Sampling seed (varied per connection).
    pub seed: u64,
}

/// A load-generation run description.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub conns: usize,
    /// Total operations across all connections.
    pub ops: usize,
    /// Driving discipline.
    pub mode: LoadMode,
    /// Knobs (timeout, retry policy) for the closed-loop clients —
    /// chaos runs shrink the budget so a dead path gives up quickly.
    pub client: ClientConfig,
    /// When set, operations carry counter keys (`KeyInc` frames) drawn
    /// from this mix instead of driving the server's single default
    /// counter.
    pub key_mix: Option<KeyMix>,
}

impl LoadConfig {
    /// A closed-loop run.
    #[must_use]
    pub fn closed(conns: usize, ops: usize) -> Self {
        LoadConfig {
            conns,
            ops,
            mode: LoadMode::Closed,
            client: ClientConfig::default(),
            key_mix: None,
        }
    }

    /// An open-loop run at `rate` total operations/second.
    #[must_use]
    pub fn open(conns: usize, ops: usize, rate: f64) -> Self {
        LoadConfig {
            conns,
            ops,
            mode: LoadMode::Open { rate },
            client: ClientConfig::default(),
            key_mix: None,
        }
    }

    /// The same run with explicit client knobs.
    #[must_use]
    pub fn with_client(mut self, client: ClientConfig) -> Self {
        self.client = client;
        self
    }

    /// The same run over `keys` counters with Zipf skew `s`.
    #[must_use]
    pub fn with_keys(mut self, keys: usize, s: f64, seed: u64) -> Self {
        self.key_mix = Some(KeyMix { keys, s, seed });
        self
    }
}

/// Per-connection client-side accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnReport {
    /// Operations this connection completed.
    pub ops: usize,
    /// Largest latency this connection observed, in microseconds.
    pub max_us: u64,
}

/// The aggregated result of a load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Operations completed.
    pub ops: usize,
    /// Operations that failed for good — the client's whole retry
    /// budget was spent without an ack (closed loop only; an open-loop
    /// run aborts on its first failure instead).
    pub failed: usize,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// The rate the run *asked* for (open-loop injection schedule), in
    /// operations/second; `None` for closed-loop runs, which have no
    /// schedule. Compare against [`LoadReport::achieved_rate`]: past
    /// saturation the two diverge and the difference is queueing.
    pub offered_rate: Option<f64>,
    /// All observed latencies in microseconds, ascending.
    pub latencies_us: Vec<u64>,
    /// All counter values handed out, ascending. In a keyed run each
    /// key counts independently, so values repeat across keys here —
    /// use [`LoadReport::per_key`] for correctness checks there.
    pub values: Vec<u64>,
    /// Per-connection accounting, by connection index.
    pub per_conn: Vec<ConnReport>,
    /// Per-key accounting, ascending by key — empty unless the run had
    /// a [`KeyMix`].
    pub per_key: Vec<KeyLoad>,
}

/// Per-key accounting of a keyed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyLoad {
    /// The counter key.
    pub key: u64,
    /// Operations acked on this key.
    pub ops: usize,
    /// Counter values acked on this key, ascending.
    pub values: Vec<u64>,
}

impl LoadReport {
    /// Completed operations per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.ops as f64 / self.wall.as_secs_f64()
    }

    /// Completed operations per second — what the run actually
    /// sustained, as opposed to what [`LoadReport::offered_rate`] asked
    /// for. Identical to [`LoadReport::throughput`]; the alias makes
    /// offered-vs-achieved comparisons read naturally.
    #[must_use]
    pub fn achieved_rate(&self) -> f64 {
        self.throughput()
    }

    /// The `q`-th latency percentile in microseconds (0–100).
    #[must_use]
    pub fn latency_percentile_us(&self, q: f64) -> u64 {
        let as_f64: Vec<f64> = self.latencies_us.iter().map(|&v| v as f64).collect();
        percentile(&as_f64, q).map_or(0, |v| v.round() as u64)
    }

    /// The largest observed latency in microseconds.
    #[must_use]
    pub fn max_latency_us(&self) -> u64 {
        self.latencies_us.last().copied().unwrap_or(0)
    }

    /// The fraction of attempted operations that were acked:
    /// `ops / (ops + failed)`, `1.0` for an empty run. Under chaos this
    /// is the availability headline; correctness of what *was* acked is
    /// [`LoadReport::values_are_distinct`].
    #[must_use]
    pub fn availability(&self) -> f64 {
        let attempted = self.ops + self.failed;
        if attempted == 0 {
            return 1.0;
        }
        self.ops as f64 / attempted as f64
    }

    /// Whether the values handed out across *all* connections are
    /// exactly `start..start + ops` — the distributed counter's
    /// correctness condition, observed from outside the service
    /// boundary.
    #[must_use]
    pub fn values_are_sequential_from(&self, start: u64) -> bool {
        self.values.len() == self.ops
            && self.values.iter().enumerate().all(|(i, &v)| v == start + i as u64)
    }

    /// Whether every key's acked values are exactly `0..ops_k` — the
    /// distributed counter's correctness condition, independently per
    /// counter. Vacuously true for runs without a [`KeyMix`]; a live
    /// promotion or demotion that lost or duplicated a grant shows up
    /// here as a gap or a repeat on that key.
    #[must_use]
    pub fn values_are_sequential_per_key(&self) -> bool {
        self.per_key.iter().all(|k| {
            k.values.len() == k.ops && k.values.iter().enumerate().all(|(i, &v)| v == i as u64)
        })
    }

    /// Whether no counter value was acked twice — the exactly-once
    /// half that must survive even runs where some operations failed
    /// (shed or timed out), when the acked set is no longer contiguous.
    #[must_use]
    pub fn values_are_distinct(&self) -> bool {
        // `values` is sorted ascending, so duplicates are adjacent.
        self.values.windows(2).all(|w| w[0] != w[1])
    }

    /// Renders the throughput summary and the latency histogram.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut t = Table::new(vec!["metric", "value"]);
        t.row(vec!["operations".into(), self.ops.to_string()]);
        if self.failed > 0 {
            t.row(vec!["failed".into(), self.failed.to_string()]);
            t.row(vec!["availability".into(), format!("{:.4}", self.availability())]);
        }
        t.row(vec!["wall time".into(), format!("{:.3} s", self.wall.as_secs_f64())]);
        if let Some(offered) = self.offered_rate {
            t.row(vec!["offered rate".into(), format!("{offered:.0} ops/s")]);
            t.row(vec!["achieved rate".into(), format!("{:.0} ops/s", self.achieved_rate())]);
        } else {
            t.row(vec!["throughput".into(), format!("{:.0} ops/s", self.throughput())]);
        }
        t.row(vec!["p50 latency".into(), format!("{} us", self.latency_percentile_us(50.0))]);
        t.row(vec!["p99 latency".into(), format!("{} us", self.latency_percentile_us(99.0))]);
        t.row(vec!["max latency".into(), format!("{} us", self.max_latency_us())]);
        out.push_str(&t.render());
        if !self.per_key.is_empty() {
            out.push_str("\nper-key goodput:\n");
            let mut kt = Table::new(vec!["key", "ops", "rate", "sequential"]);
            let wall = self.wall.as_secs_f64();
            for k in &self.per_key {
                let rate = if wall > 0.0 { k.ops as f64 / wall } else { 0.0 };
                let sequential = k.values.iter().enumerate().all(|(i, &v)| v == i as u64)
                    && k.values.len() == k.ops;
                kt.row(vec![
                    k.key.to_string(),
                    k.ops.to_string(),
                    format!("{rate:.0} ops/s"),
                    if sequential { "yes".into() } else { "NO".into() },
                ]);
            }
            out.push_str(&kt.render());
        }
        out.push_str("\nlatency distribution (us):\n");
        let h = Histogram::from_samples(&self.latencies_us, 10);
        out.push_str(&h.render(40));
        out
    }
}

/// Runs `cfg` against the server at `addr` and aggregates the result.
///
/// # Errors
///
/// Propagates the first connection-level [`ServerError`]; a failed
/// connection aborts the run.
///
/// # Panics
///
/// Panics if `cfg.conns` or `cfg.ops` is zero.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> Result<LoadReport, ServerError> {
    assert!(cfg.conns > 0, "need at least one connection");
    assert!(cfg.ops > 0, "need at least one operation");
    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.conns);
    for conn in 0..cfg.conns {
        // Spread the remainder over the first `ops % conns` connections.
        let ops = cfg.ops / cfg.conns + usize::from(conn < cfg.ops % cfg.conns);
        let mode = cfg.mode;
        let conns = cfg.conns;
        let client = cfg.client.clone();
        let key_mix = cfg.key_mix.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-c{conn}"))
                .spawn(move || match mode {
                    LoadMode::Closed => drive_closed(addr, conn, ops, &client, key_mix.as_ref()),
                    LoadMode::Open { rate } => {
                        drive_open(addr, conn, ops, rate / conns as f64, key_mix.as_ref())
                    }
                })
                .map_err(|e| ServerError::Io(e.to_string()))?,
        );
    }
    let mut latencies = Vec::with_capacity(cfg.ops);
    let mut values = Vec::with_capacity(cfg.ops);
    let mut per_conn = Vec::with_capacity(cfg.conns);
    let mut by_key: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let keyed = cfg.key_mix.is_some();
    let mut failed = 0;
    let mut first_error = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(conn_result)) => {
                per_conn.push(ConnReport {
                    ops: conn_result.acked.len(),
                    max_us: conn_result.acked.iter().map(|&(_, _, lat)| lat).max().unwrap_or(0),
                });
                failed += conn_result.failed;
                for (key, value, lat_us) in conn_result.acked {
                    values.push(value);
                    latencies.push(lat_us);
                    if keyed {
                        by_key.entry(key).or_default().push(value);
                    }
                }
            }
            Ok(Err(e)) => first_error = first_error.or(Some(e)),
            Err(_) => {
                first_error =
                    first_error.or(Some(ServerError::Io("a loadgen thread panicked".into())));
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let wall = started.elapsed();
    latencies.sort_unstable();
    values.sort_unstable();
    let per_key = by_key
        .into_iter()
        .map(|(key, mut vals)| {
            vals.sort_unstable();
            KeyLoad { key, ops: vals.len(), values: vals }
        })
        .collect();
    let offered_rate = match cfg.mode {
        LoadMode::Closed => None,
        LoadMode::Open { rate } => Some(rate),
    };
    Ok(LoadReport {
        ops: values.len(),
        failed,
        wall,
        offered_rate,
        latencies_us: latencies,
        values,
        per_conn,
        per_key,
    })
}

/// One connection's outcome: acked `(key, value, latency_us)` triples
/// plus the count of operations whose retry budget ran dry. Unkeyed
/// runs report everything on key 0.
struct ConnOutcome {
    acked: Vec<(u64, u64, u64)>,
    failed: usize,
}

/// A per-connection key sequence: each connection samples its own
/// stream from the mix, seeded by connection index so the run is
/// reproducible without coordination.
fn key_stream(mix: &KeyMix, conn: usize, ops: usize) -> Vec<u64> {
    let sampler = ZipfSampler::new(mix.keys, mix.s);
    let mut rng = StdRng::seed_from_u64(mix.seed.wrapping_add(conn as u64));
    (0..ops).map(|_| sampler.sample(&mut rng) as u64).collect()
}

/// One closed-loop connection. Operation failures (retry budget spent)
/// are *counted*, not fatal: under chaos a connection keeps driving the
/// ops that remain, and availability is reported from the split. Only a
/// failed initial connect aborts the run.
fn drive_closed(
    addr: SocketAddr,
    conn: usize,
    ops: usize,
    config: &ClientConfig,
    key_mix: Option<&KeyMix>,
) -> Result<ConnOutcome, ServerError> {
    let mut client = RemoteCounter::connect_with(addr, config.clone())?;
    let keys = key_mix.map(|mix| key_stream(mix, conn, ops));
    let mut out = ConnOutcome { acked: Vec::with_capacity(ops), failed: 0 };
    for i in 0..ops {
        let t0 = Instant::now();
        let (key, result) = match &keys {
            Some(keys) => (keys[i], client.inc_key(keys[i])),
            None => (0, client.inc()),
        };
        match result {
            Ok(value) => out.acked.push((key, value, t0.elapsed().as_micros() as u64)),
            Err(_) => out.failed += 1,
        }
    }
    Ok(out)
}

/// One open-loop connection at `rate` operations/second: requests go out
/// on schedule over a pipelined socket while a reader half collects the
/// replies; latency is completion minus *scheduled* injection.
fn drive_open(
    addr: SocketAddr,
    conn: usize,
    ops: usize,
    rate: f64,
    key_mix: Option<&KeyMix>,
) -> Result<ConnOutcome, ServerError> {
    assert!(rate > 0.0, "open-loop rate must be positive");
    let keys = key_mix.map(|mix| key_stream(mix, conn, ops));
    let stream = TcpStream::connect(addr).map_err(|e| ServerError::Io(e.to_string()))?;
    stream.set_nodelay(true).map_err(|e| ServerError::Io(e.to_string()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| ServerError::Io(e.to_string()))?;
    let mut writer = stream.try_clone().map_err(|e| ServerError::Io(e.to_string()))?;
    write_frame(&mut writer, &WireMsg::Hello { resume: None })?;
    let mut reader = stream;
    match read_frame(&mut reader)? {
        WireMsg::HelloOk { .. } => {}
        WireMsg::Err { code } => return Err(ServerError::Remote(code)),
        other => return Err(ServerError::Protocol(format!("unexpected frame {other:?}"))),
    }

    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    // The reader indexes acked replies back into the key stream by
    // request id, so the two halves need no shared mutable state.
    let reader_keys = keys.clone();
    let collector = std::thread::Builder::new()
        .name("loadgen-read".into())
        .spawn(move || -> Result<Vec<(u64, u64, u64)>, ServerError> {
            let mut out = Vec::with_capacity(ops);
            for _ in 0..ops {
                match read_frame(&mut reader)? {
                    WireMsg::IncOk { request_id, value } => {
                        let scheduled = start + interval.mul_f64(request_id as f64);
                        let lat = Instant::now().saturating_duration_since(scheduled);
                        let key = reader_keys.as_ref().map_or(0, |keys| keys[request_id as usize]);
                        out.push((key, value, lat.as_micros() as u64));
                    }
                    WireMsg::Err { code } => return Err(ServerError::Remote(code)),
                    other => {
                        return Err(ServerError::Protocol(format!("unexpected frame {other:?}")))
                    }
                }
            }
            Ok(out)
        })
        .map_err(|e| ServerError::Io(e.to_string()))?;

    let mut scratch = Vec::with_capacity(64);
    for i in 0..ops {
        let due = start + interval.mul_f64(i as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let msg = match &keys {
            Some(keys) => WireMsg::KeyInc { key: keys[i], request_id: i as u64, initiator: None },
            None => WireMsg::Inc { request_id: i as u64, initiator: None },
        };
        write_frame_buf(&mut writer, &msg, &mut scratch)?;
    }
    let acked =
        collector.join().map_err(|_| ServerError::Io("the reader thread panicked".into()))??;
    Ok(ConnOutcome { acked, failed: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: Vec<u64>, values: Vec<u64>) -> LoadReport {
        let ops = values.len();
        LoadReport {
            ops,
            failed: 0,
            wall: Duration::from_millis(100),
            offered_rate: None,
            latencies_us: latencies,
            values,
            per_conn: vec![ConnReport { ops, max_us: 0 }],
            per_key: Vec::new(),
        }
    }

    #[test]
    fn sequential_check_catches_gaps_and_dups() {
        assert!(report(vec![1, 2, 3], vec![0, 1, 2]).values_are_sequential_from(0));
        assert!(report(vec![1, 2, 3], vec![5, 6, 7]).values_are_sequential_from(5));
        assert!(!report(vec![1, 2, 3], vec![0, 2, 3]).values_are_sequential_from(0));
        assert!(!report(vec![1, 2, 3], vec![0, 1, 1]).values_are_sequential_from(0));
    }

    #[test]
    fn percentiles_and_throughput() {
        let r = report((1..=100).collect(), (0..100).collect());
        assert_eq!(r.latency_percentile_us(50.0), 51);
        assert_eq!(r.latency_percentile_us(99.0), 99);
        assert_eq!(r.max_latency_us(), 100);
        assert!((r.throughput() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn render_contains_the_headlines() {
        let r = report(vec![10, 20, 30, 1000], vec![0, 1, 2, 3]);
        let s = r.render();
        assert!(s.contains("throughput"));
        assert!(s.contains("p99 latency"));
        assert!(s.contains('#'), "histogram bars present");
    }

    #[test]
    fn availability_and_distinctness_track_partial_runs() {
        let mut r = report(vec![1, 2, 3], vec![0, 4, 9]);
        assert!(r.values_are_distinct(), "gaps are fine, duplicates are not");
        assert!(!r.values_are_sequential_from(0), "a gappy run is not sequential");
        assert!((r.availability() - 1.0).abs() < 1e-9);
        r.failed = 1;
        assert!((r.availability() - 0.75).abs() < 1e-9, "3 acked of 4 attempted");
        assert!(r.render().contains("availability"));
        let dup = report(vec![1, 2, 3], vec![0, 4, 4]);
        assert!(!dup.values_are_distinct(), "an acked value handed out twice");
        assert!((report(Vec::new(), Vec::new()).availability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_key_sequentiality_catches_gaps_dups_and_renders() {
        let mut r = report(vec![1, 2, 3, 4, 5], vec![0, 0, 1, 1, 2]);
        assert!(r.values_are_sequential_per_key(), "vacuously true without a mix");
        r.per_key = vec![
            KeyLoad { key: 0, ops: 3, values: vec![0, 1, 2] },
            KeyLoad { key: 7, ops: 2, values: vec![0, 1] },
        ];
        assert!(r.values_are_sequential_per_key());
        let s = r.render();
        assert!(s.contains("per-key goodput"));
        assert!(s.contains("yes"));
        r.per_key[1].values = vec![0, 2];
        assert!(!r.values_are_sequential_per_key(), "a gap on one key fails the run");
        assert!(r.render().contains("NO"));
        r.per_key[1].values = vec![0, 0];
        assert!(!r.values_are_sequential_per_key(), "a duplicate on one key fails the run");
    }

    #[test]
    fn key_streams_are_reproducible_and_skewed() {
        let mix = KeyMix { keys: 8, s: 1.5, seed: 42 };
        let a = key_stream(&mix, 0, 500);
        let b = key_stream(&mix, 0, 500);
        let c = key_stream(&mix, 1, 500);
        assert_eq!(a, b, "same conn, same stream");
        assert_ne!(a, c, "different conns sample independently");
        assert!(a.iter().all(|&k| k < 8));
        let hot = a.iter().filter(|&&k| k == 0).count();
        assert!(hot > 100, "rank 0 dominates a 1.5-skewed stream: {hot}/500");
    }

    #[test]
    fn open_loop_reports_offered_and_achieved_separately() {
        let mut r = report(vec![10, 20], vec![0, 1]);
        r.offered_rate = Some(5000.0);
        assert!((r.achieved_rate() - 20.0).abs() < 1e-6, "2 ops in 100 ms");
        let s = r.render();
        assert!(s.contains("offered rate"));
        assert!(s.contains("achieved rate"));
        assert!(!s.contains("throughput"), "replaced by the offered/achieved pair");
    }
}
