//! End-to-end chaos suite: a real `CounterServer` behind a
//! [`ChaosProxy`], real clients in front, one scenario per toxic. The
//! invariant under every fault is the paper's exactly-once story made
//! observable over the wire: with a sufficient retry budget every
//! operation is acked (`failed == 0`) and the acked values are exactly
//! `0..ops` — nothing lost, nothing double-counted, no matter how the
//! network tears, delays, stalls, or mangles the bytes in between.

use std::time::Duration;

use distctr_chaos::{ChaosPlan, ChaosProxy};
use distctr_core::TreeCounter;
use distctr_server::{run_load, ClientConfig, CounterServer, LoadConfig, LoadReport, RetryPolicy};

/// A combining server over the deterministic in-process tree — the
/// dedup path under test here is the session answered-table (no backend
/// tickets), the harder of the two replay stories.
fn serve() -> CounterServer<TreeCounter> {
    CounterServer::serve_combining(TreeCounter::new(8).expect("backend")).expect("serve")
}

/// The same combining server on the readiness serving core: one
/// reactor thread, combiner replies routed through the reply channel.
/// Every toxic the threaded path survives must hold here too.
fn serve_async() -> CounterServer<TreeCounter> {
    CounterServer::serve_async_combining(TreeCounter::new(8).expect("backend")).expect("serve")
}

/// [`run_through`] against the readiness server.
fn run_through_async(
    plan: ChaosPlan,
    conns: usize,
    ops: usize,
    client: ClientConfig,
) -> (LoadReport, ChaosProxy) {
    let mut server = serve_async();
    let proxy = ChaosProxy::start(server.local_addr(), plan).expect("proxy");
    let report = run_load(proxy.local_addr(), &LoadConfig::closed(conns, ops).with_client(client))
        .expect("load");
    server.shutdown().expect("shutdown");
    (report, proxy)
}

/// A client hardened for a hostile network: a snappy reply timeout (so
/// blackholes cost milliseconds, not the 10 s default) and a deep,
/// fast-cycling retry budget.
fn hardened(reply_timeout: Duration, budget: u32) -> ClientConfig {
    ClientConfig {
        reply_timeout,
        retry: RetryPolicy {
            max_retries: budget,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            seed: 0xC0FFEE,
        },
    }
}

/// Runs `ops` closed-loop operations over `conns` connections through
/// a proxy applying `plan`, and returns `(report, proxy)` with the
/// server already shut down.
fn run_through(
    plan: ChaosPlan,
    conns: usize,
    ops: usize,
    client: ClientConfig,
) -> (LoadReport, ChaosProxy) {
    let mut server = serve();
    let proxy = ChaosProxy::start(server.local_addr(), plan).expect("proxy");
    let report = run_load(proxy.local_addr(), &LoadConfig::closed(conns, ops).with_client(client))
        .expect("load");
    server.shutdown().expect("shutdown");
    (report, proxy)
}

/// The one assertion that matters: every op acked, values exactly
/// `0..ops`.
fn assert_exactly_once(report: &LoadReport, ops: usize) {
    assert_eq!(report.failed, 0, "ops failed despite the retry budget");
    assert_eq!(report.ops, ops, "not every op completed");
    assert!((report.availability() - 1.0).abs() < f64::EPSILON);
    assert!(report.values_are_distinct(), "a value was handed out twice");
    assert!(
        report.values_are_sequential_from(0),
        "values are not exactly 0..{ops}: {:?}",
        report.values
    );
}

#[test]
fn a_faithful_proxy_is_transparent() {
    let (report, proxy) =
        run_through(ChaosPlan::new(1), 2, 24, hardened(Duration::from_secs(5), 4));
    assert_exactly_once(&report, 24);
    let stats = proxy.stats();
    assert!(stats.connections >= 2);
    assert_eq!(stats.resets + stats.blackholed + stats.corrupted_bytes, 0);
}

#[test]
fn latency_and_jitter_slow_every_op_but_lose_none() {
    let plan = ChaosPlan::new(2).latency(Duration::from_millis(2), Duration::from_millis(3));
    let (report, _proxy) = run_through(plan, 2, 30, hardened(Duration::from_secs(5), 4));
    assert_exactly_once(&report, 30);
    // Each op crosses the proxy twice; the fixed component alone is
    // 2 ms per crossing, so the observed floor is ~4 ms.
    assert!(
        report.latency_percentile_us(50.0) >= 4_000,
        "p50 {} us is below the injected latency floor",
        report.latency_percentile_us(50.0)
    );
}

#[test]
fn a_bandwidth_throttle_preserves_exactly_once() {
    let plan = ChaosPlan::new(3).throttle(4096);
    let (report, _proxy) = run_through(plan, 2, 20, hardened(Duration::from_secs(5), 4));
    assert_exactly_once(&report, 20);
}

#[test]
fn frames_sliced_to_single_bytes_reassemble_exactly_once() {
    let plan = ChaosPlan::new(4).slice(3, Duration::from_micros(200));
    let (report, _proxy) = run_through(plan, 2, 24, hardened(Duration::from_secs(5), 8));
    assert_exactly_once(&report, 24);
}

#[test]
fn byte_corruption_is_caught_by_checksums_and_retried_exactly_once() {
    // ~0.2% of bytes flip; every mangled frame fails its CRC on one
    // side or the other, the connection resynchronizes by reconnect,
    // and the session replay dedups anything already applied.
    let plan = ChaosPlan::new(5).corrupt(0.002);
    let (report, _proxy) = run_through(plan, 2, 40, hardened(Duration::from_secs(5), 30));
    assert_exactly_once(&report, 40);
}

#[test]
fn connection_resets_force_resume_and_replay_exactly_once() {
    // Cut every connection after 600 forwarded bytes per direction —
    // a handful of ops per connection life, dozens of cuts per run.
    let plan = ChaosPlan::new(6).reset_after(600);
    let (report, proxy) = run_through(plan, 2, 40, hardened(Duration::from_secs(5), 30));
    assert_exactly_once(&report, 40);
    let stats = proxy.stats();
    assert!(stats.resets >= 1, "the reset toxic never fired");
    assert!(stats.connections > 2, "no reconnect ever happened");
}

#[test]
fn a_blackhole_partition_is_survived_by_timeout_and_reconnect() {
    // The stall is silent — no FIN, no RST — so only the client's
    // reply deadline gets it moving again.
    let plan = ChaosPlan::new(7).blackhole_after(300);
    let (report, proxy) = run_through(plan, 1, 12, hardened(Duration::from_millis(300), 30));
    assert_exactly_once(&report, 12);
    assert!(proxy.stats().blackholed >= 1, "the blackhole toxic never fired");
}

#[test]
fn a_composed_storm_of_toxics_still_counts_exactly_once() {
    let plan = ChaosPlan::new(8)
        .latency(Duration::from_millis(1), Duration::from_millis(1))
        .slice(5, Duration::from_micros(100))
        .corrupt(0.001)
        .reset_after(900);
    let (report, proxy) = run_through(plan, 2, 30, hardened(Duration::from_millis(500), 40));
    assert_exactly_once(&report, 30);
    assert!(proxy.stats().connections >= 2);
}

#[test]
fn a_promotion_mid_storm_keeps_every_key_exactly_once() {
    // The hardest composition in the suite: a keyspace whose policy
    // promotes hot keys on the faintest contention signal, driven with
    // a Zipf-skewed keyed load *through* a proxy that slices frames to
    // shreds and resets every connection after a few ops. Promotions
    // and demotion-free migrations race reconnect replays; the reply
    // caches the migration carries across must keep every key's values
    // exactly `0..ops_k` regardless.
    use distctr_keyspace::{Keyspace, KeyspaceConfig, PromotionPolicy};

    let policy = PromotionPolicy {
        window: Duration::from_millis(50),
        promote_rate: 1.0,
        promote_depth: 1,
        demote_rate: 0.0,
        cooldown: Duration::from_secs(3600),
        ..PromotionPolicy::default()
    };
    let backend = Keyspace::sim(KeyspaceConfig { policy, ..KeyspaceConfig::new(8) });
    let mut server = CounterServer::serve_combining(backend).expect("serve");
    let plan = ChaosPlan::new(24).slice(5, Duration::from_micros(100)).reset_after(900);
    let proxy = ChaosProxy::start(server.local_addr(), plan).expect("proxy");
    let cfg = LoadConfig::closed(4, 120)
        .with_client(hardened(Duration::from_secs(5), 30))
        .with_keys(4, 1.4, 0x5707);
    let report = run_load(proxy.local_addr(), &cfg).expect("load");
    let stats = server.stats();
    server.shutdown().expect("shutdown");

    assert_eq!(report.failed, 0, "ops failed despite the retry budget");
    assert_eq!(report.ops, 120, "not every op completed");
    assert!(
        report.values_are_sequential_per_key(),
        "a key lost or double-counted a grant across a mid-storm migration: {:?}",
        report.per_key
    );
    assert!(stats.promotions >= 1, "the storm never tripped a promotion: {stats:?}");
    assert!(proxy.stats().resets >= 1, "the reset toxic never fired");
    assert!(proxy.stats().connections > 4, "no reconnect ever happened");
}

#[test]
fn the_async_server_reassembles_sliced_frames_exactly_once() {
    // Frames shredded to 3-byte segments with delays: each one crosses
    // the reactor as many separate readable events, and the partial
    // prefixes buffer in the per-connection state machine.
    let plan = ChaosPlan::new(31).slice(3, Duration::from_micros(200));
    let (report, _proxy) = run_through_async(plan, 2, 24, hardened(Duration::from_secs(5), 8));
    assert_exactly_once(&report, 24);
}

#[test]
fn the_async_server_survives_latency_and_jitter_exactly_once() {
    let plan = ChaosPlan::new(32).latency(Duration::from_millis(2), Duration::from_millis(3));
    let (report, _proxy) = run_through_async(plan, 2, 30, hardened(Duration::from_secs(5), 4));
    assert_exactly_once(&report, 30);
}

#[test]
fn the_async_server_survives_connection_resets_exactly_once() {
    // Reset storms hit the async path's hardest corner: a combining
    // reply can race the close of the very connection it belongs to,
    // and the session answer table must cover the replay.
    let plan = ChaosPlan::new(33).reset_after(600);
    let (report, proxy) = run_through_async(plan, 2, 40, hardened(Duration::from_secs(5), 30));
    assert_exactly_once(&report, 40);
    let stats = proxy.stats();
    assert!(stats.resets >= 1, "the reset toxic never fired");
    assert!(stats.connections > 2, "no reconnect ever happened");
}

#[test]
fn the_same_seed_and_plan_replay_the_same_fault_decisions() {
    // The replay discipline: per-(connection, direction) random streams
    // are fully determined by `(seed, plan)`. Two proxies with the same
    // plan draw identical corruption/jitter/slice decisions for the
    // same connection index; a different seed diverges.
    let a = ChaosPlan::new(99).corrupt(0.5);
    let b = ChaosPlan::new(99).corrupt(0.5);
    let c = ChaosPlan::new(100).corrupt(0.5);
    assert_eq!(a.stream_seed(3, 1), b.stream_seed(3, 1));
    assert_ne!(a.stream_seed(3, 1), c.stream_seed(3, 1));
}
