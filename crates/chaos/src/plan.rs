//! The fault plan: which toxics a proxy applies, under which seed.
//!
//! A [`ChaosPlan`] is declarative and immutable once handed to the
//! proxy — the same builder discipline as the simulator's `FaultPlan`
//! (`FaultPlan::new(seed).drop_prob(..).crash(..)`), lifted from
//! simulated messages to real TCP bytes. Toxics compose: a plan with
//! latency *and* corruption delays every chunk and flips bytes in it.

use std::time::Duration;

/// One fault class a [`crate::ChaosProxy`] injects. All toxics apply to
/// both directions of every proxied connection; byte budgets
/// ([`Toxic::Reset`], [`Toxic::Blackhole`]) are counted per direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Toxic {
    /// Delays each forwarded chunk by `delay` plus a uniform draw from
    /// `[0, jitter]`.
    Latency {
        /// Fixed component of the delay.
        delay: Duration,
        /// Upper bound of the uniform jitter added on top.
        jitter: Duration,
    },
    /// Caps forwarding at `bytes_per_sec` per direction by sleeping
    /// `len / rate` per chunk.
    Throttle {
        /// Sustained bandwidth cap, bytes per second. Must be nonzero.
        bytes_per_sec: u64,
    },
    /// Cuts the connection abruptly (both sockets shut down, no FIN
    /// handshake courtesy) once a direction has forwarded `after_bytes`.
    Reset {
        /// Bytes a direction may forward before the cut.
        after_bytes: u64,
    },
    /// Silently stops delivering once a direction has forwarded
    /// `after_bytes`: the connection stays open and the peer sees an
    /// unbounded stall — a partition, not a failure signal.
    Blackhole {
        /// Bytes a direction may forward before the partition.
        after_bytes: u64,
    },
    /// Re-segments the stream into chunks of 1..=`max_chunk` bytes,
    /// sleeping `gap` between consecutive chunks — frames arrive torn
    /// across many reads and never aligned to frame boundaries.
    Slice {
        /// Largest chunk forwarded at once. Must be nonzero.
        max_chunk: usize,
        /// Pause between consecutive slices.
        gap: Duration,
    },
    /// Flips each forwarded byte to a random value with probability
    /// `prob` (per byte).
    Corrupt {
        /// Per-byte corruption probability in `[0, 1]`.
        prob: f64,
    },
}

/// A seeded, replayable set of [`Toxic`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Root seed; every per-connection random stream derives from it.
    pub seed: u64,
    /// The toxic chain, applied in order to every chunk.
    pub toxics: Vec<Toxic>,
}

impl ChaosPlan {
    /// An empty plan (a faithful proxy) under `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ChaosPlan { seed, toxics: Vec::new() }
    }

    /// Appends an arbitrary toxic.
    #[must_use]
    pub fn toxic(mut self, toxic: Toxic) -> Self {
        self.toxics.push(toxic);
        self
    }

    /// Adds [`Toxic::Latency`].
    #[must_use]
    pub fn latency(self, delay: Duration, jitter: Duration) -> Self {
        self.toxic(Toxic::Latency { delay, jitter })
    }

    /// Adds [`Toxic::Throttle`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero (use [`ChaosPlan::blackhole`]
    /// for a total stall).
    #[must_use]
    pub fn throttle(self, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "a zero-rate throttle is a blackhole; use blackhole()");
        self.toxic(Toxic::Throttle { bytes_per_sec })
    }

    /// Adds [`Toxic::Reset`].
    #[must_use]
    pub fn reset_after(self, after_bytes: u64) -> Self {
        self.toxic(Toxic::Reset { after_bytes })
    }

    /// Adds [`Toxic::Blackhole`].
    #[must_use]
    pub fn blackhole_after(self, after_bytes: u64) -> Self {
        self.toxic(Toxic::Blackhole { after_bytes })
    }

    /// Adds [`Toxic::Slice`].
    ///
    /// # Panics
    ///
    /// Panics if `max_chunk` is zero.
    #[must_use]
    pub fn slice(self, max_chunk: usize, gap: Duration) -> Self {
        assert!(max_chunk > 0, "slices must carry at least one byte");
        self.toxic(Toxic::Slice { max_chunk, gap })
    }

    /// Adds [`Toxic::Corrupt`].
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    #[must_use]
    pub fn corrupt(self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "a probability must be in [0, 1]");
        self.toxic(Toxic::Corrupt { prob })
    }

    /// The deterministic seed of one connection's one direction:
    /// connection `conn` (accept order), `dir` 0 for client→server, 1
    /// for server→client. SplitMix-style mixing keeps nearby inputs
    /// from yielding correlated streams.
    #[must_use]
    pub fn stream_seed(&self, conn: u64, dir: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(conn.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(dir.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_in_order() {
        let plan = ChaosPlan::new(7)
            .latency(Duration::from_millis(1), Duration::from_millis(2))
            .throttle(1024)
            .reset_after(100)
            .blackhole_after(200)
            .slice(3, Duration::from_micros(50))
            .corrupt(0.5);
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.toxics.len(), 6);
        assert_eq!(plan.toxics[1], Toxic::Throttle { bytes_per_sec: 1024 });
        assert_eq!(plan.toxics[5], Toxic::Corrupt { prob: 0.5 });
    }

    #[test]
    fn stream_seeds_are_deterministic_and_distinct() {
        let plan = ChaosPlan::new(42);
        assert_eq!(plan.stream_seed(0, 0), plan.stream_seed(0, 0));
        assert_ne!(plan.stream_seed(0, 0), plan.stream_seed(0, 1));
        assert_ne!(plan.stream_seed(0, 0), plan.stream_seed(1, 0));
        assert_ne!(plan.stream_seed(0, 0), ChaosPlan::new(43).stream_seed(0, 0));
    }

    #[test]
    #[should_panic(expected = "blackhole")]
    fn zero_rate_throttle_is_refused() {
        let _ = ChaosPlan::new(0).throttle(0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probability_is_refused() {
        let _ = ChaosPlan::new(0).corrupt(1.5);
    }
}
