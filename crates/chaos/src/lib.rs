//! # distctr-chaos
//!
//! An **in-process fault-injecting TCP proxy** — the adverse network
//! the serving stack must survive, as a library. A [`ChaosProxy`] sits
//! between clients and a `distctr-server` (or any TCP service),
//! forwarding both directions of every connection through a chain of
//! **toxics** described by a [`ChaosPlan`]:
//!
//! * [`Toxic::Latency`] — fixed delay plus uniform jitter per chunk;
//! * [`Toxic::Throttle`] — bandwidth cap (bytes/second);
//! * [`Toxic::Reset`] — abrupt connection cut after a byte budget;
//! * [`Toxic::Blackhole`] — silent partition after a byte budget: the
//!   connection stays open but nothing is delivered ever again;
//! * [`Toxic::Slice`] — re-segmentation into tiny chunks with
//!   inter-chunk gaps, so frames arrive torn across many reads;
//! * [`Toxic::Corrupt`] — per-byte bit flips.
//!
//! The same `(seed, plan)` discipline as the simulator's `FaultPlan`
//! applies: every random decision (jitter draws, flip positions, chunk
//! sizes) comes from a deterministic per-connection, per-direction
//! stream derived from [`ChaosPlan::seed`], so a failing chaos run
//! replays byte-for-byte identically given the same connection order.
//!
//! ```no_run
//! use distctr_chaos::{ChaosPlan, ChaosProxy};
//! use std::time::Duration;
//!
//! let plan = ChaosPlan::new(42)
//!     .latency(Duration::from_millis(2), Duration::from_millis(3))
//!     .corrupt(0.001);
//! let server_addr = "127.0.0.1:9000".parse().unwrap();
//! let mut proxy = ChaosProxy::start(server_addr, plan).unwrap();
//! // point clients at proxy.local_addr() instead of the server ...
//! proxy.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod proxy;

pub use plan::{ChaosPlan, Toxic};
pub use proxy::{ChaosProxy, ChaosStats};
