//! The proxy itself: accept, dial upstream, pump bytes through toxics.
//!
//! One proxied connection is two **pump threads** — client→server
//! ("up") and server→client ("down") — each reading chunks from its
//! source socket and pushing them through the plan's toxic chain before
//! forwarding. Each pump owns a deterministic random stream
//! ([`crate::ChaosPlan::stream_seed`]), so every jitter draw, slice
//! boundary and corrupted byte replays identically for a given seed and
//! accept order.
//!
//! Toxic processing order per chunk: latency and throttle first (they
//! only cost time), then the byte budgets ([`Toxic::Reset`] /
//! [`Toxic::Blackhole`]), then [`Toxic::Corrupt`] on what survives,
//! then [`Toxic::Slice`] segmentation on the way out.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::plan::{ChaosPlan, Toxic};

/// How often a blocked pump read polls the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Counter snapshot of a [`ChaosProxy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted (and dialed upstream).
    pub connections: u64,
    /// Client→server bytes forwarded (after budgets, before slicing).
    pub bytes_up: u64,
    /// Server→client bytes forwarded.
    pub bytes_down: u64,
    /// Connections cut by [`Toxic::Reset`].
    pub resets: u64,
    /// Pump directions silenced by [`Toxic::Blackhole`].
    pub blackholed: u64,
    /// Bytes mangled by [`Toxic::Corrupt`].
    pub corrupted_bytes: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    bytes_up: AtomicU64,
    bytes_down: AtomicU64,
    resets: AtomicU64,
    blackholed: AtomicU64,
    corrupted_bytes: AtomicU64,
}

/// A fault-injecting TCP proxy in front of one upstream address. See
/// the crate docs for the toxic taxonomy.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: Arc<Counters>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and proxies every accepted
    /// connection to `upstream` through `plan`'s toxics.
    ///
    /// # Errors
    ///
    /// Propagates binding/spawn failures.
    pub fn start(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(Counters::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let pumps = Arc::clone(&pumps);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new().name("chaos-accept".into()).spawn(move || {
                accept_loop(&listener, upstream, &plan, &stop, &pumps, &stats);
            })?
        };
        Ok(ChaosProxy { addr, stop, accept: Some(accept), pumps, stats })
    }

    /// The proxy's listening address — point clients here.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the proxy's counters.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            bytes_up: self.stats.bytes_up.load(Ordering::Relaxed),
            bytes_down: self.stats.bytes_down.load(Ordering::Relaxed),
            resets: self.stats.resets.load(Ordering::Relaxed),
            blackholed: self.stats.blackholed.load(Ordering::Relaxed),
            corrupted_bytes: self.stats.corrupted_bytes.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, tears down every proxied connection, and joins
    /// all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles = match self.pumps.lock() {
            Ok(mut pumps) => pumps.drain(..).collect::<Vec<_>>(),
            Err(_) => Vec::new(),
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &ChaosPlan,
    stop: &Arc<AtomicBool>,
    pumps: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: &Arc<Counters>,
) {
    let mut conn_index = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((client, _)) => {
                // A dead upstream is itself a fault the client must
                // handle; drop the client and let its connect-level
                // retry policy deal with it.
                let Ok(server) = TcpStream::connect(upstream) else { continue };
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn = conn_index;
                conn_index += 1;
                let up = spawn_pump(&client, &server, plan, conn, 0, stop, stats);
                let down = spawn_pump(&server, &client, plan, conn, 1, stop, stats);
                if let Ok(mut pumps) = pumps.lock() {
                    pumps.retain(|h| !h.is_finished());
                    pumps.extend(up);
                    pumps.extend(down);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Clones the stream pair and spawns one direction's pump; `None` only
/// if a clone or spawn failed (the connection is then abandoned).
fn spawn_pump(
    src: &TcpStream,
    dst: &TcpStream,
    plan: &ChaosPlan,
    conn: u64,
    dir: u64,
    stop: &Arc<AtomicBool>,
    stats: &Arc<Counters>,
) -> Option<JoinHandle<()>> {
    let (Ok(src), Ok(dst)) = (src.try_clone(), dst.try_clone()) else { return None };
    let toxics = plan.toxics.clone();
    let seed = plan.stream_seed(conn, dir);
    let stop = Arc::clone(stop);
    let stats = Arc::clone(stats);
    let is_up = dir == 0;
    std::thread::Builder::new()
        .name(format!("chaos-pump-c{conn}-d{dir}"))
        .spawn(move || pump(&src, &dst, &toxics, seed, &stop, &stats, is_up))
        .ok()
}

/// One direction's pump: read a chunk, pass it through the toxic
/// chain, forward what survives. Exits on EOF, socket error, a reset
/// toxic firing, or proxy shutdown.
fn pump(
    src: &TcpStream,
    dst: &TcpStream,
    toxics: &[Toxic],
    seed: u64,
    stop: &AtomicBool,
    stats: &Counters,
    is_up: bool,
) {
    let _ = src.set_read_timeout(Some(POLL));
    let mut src_reader = src;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut forwarded = 0u64;
    let mut silenced = false;
    let mut buf = [0u8; 4096];
    'outer: loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match src_reader.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: propagate the half-close and stop.
                let _ = dst.shutdown(Shutdown::Write);
                break;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let mut chunk = buf[..n].to_vec();

        // -- time toxics -------------------------------------------------
        for toxic in toxics {
            match *toxic {
                Toxic::Latency { delay, jitter } => {
                    let jitter_ns = jitter.as_nanos() as u64;
                    let extra = if jitter_ns == 0 { 0 } else { rng.gen_range(0..=jitter_ns) };
                    std::thread::sleep(delay + Duration::from_nanos(extra));
                }
                Toxic::Throttle { bytes_per_sec } => {
                    std::thread::sleep(Duration::from_secs_f64(
                        chunk.len() as f64 / bytes_per_sec as f64,
                    ));
                }
                _ => {}
            }
        }

        // -- byte budgets ------------------------------------------------
        let mut cut_after = false;
        for toxic in toxics {
            match *toxic {
                Toxic::Reset { after_bytes } => {
                    let budget = after_bytes.saturating_sub(forwarded);
                    if (budget as usize) < chunk.len() {
                        chunk.truncate(budget as usize);
                        cut_after = true;
                    }
                }
                Toxic::Blackhole { after_bytes } => {
                    let budget = after_bytes.saturating_sub(forwarded);
                    if (budget as usize) < chunk.len() {
                        chunk.truncate(budget as usize);
                        if !silenced {
                            silenced = true;
                            stats.blackholed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                _ => {}
            }
        }

        // -- corruption --------------------------------------------------
        for toxic in toxics {
            if let Toxic::Corrupt { prob } = *toxic {
                for byte in &mut chunk {
                    if rng.gen_bool(prob) {
                        // XOR with a nonzero mask guarantees the byte
                        // actually changes.
                        *byte ^= rng.gen_range(1u32..=255) as u8;
                        stats.corrupted_bytes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        // -- forward (sliced if asked) ----------------------------------
        let slice = toxics.iter().find_map(|t| match *t {
            Toxic::Slice { max_chunk, gap } => Some((max_chunk, gap)),
            _ => None,
        });
        let mut dst_writer = dst;
        let mut rest: &[u8] = &chunk;
        while !rest.is_empty() {
            let take = match slice {
                Some((max_chunk, _)) => rng.gen_range(1..=max_chunk).min(rest.len()),
                None => rest.len(),
            };
            if dst_writer.write_all(&rest[..take]).is_err() {
                break 'outer;
            }
            rest = &rest[take..];
            if let (Some((_, gap)), false) = (slice, rest.is_empty()) {
                std::thread::sleep(gap);
            }
        }
        forwarded += chunk.len() as u64;
        let ctr = if is_up { &stats.bytes_up } else { &stats.bytes_down };
        ctr.fetch_add(chunk.len() as u64, Ordering::Relaxed);

        if cut_after {
            // An abrupt, unannounced cut: both halves die mid-whatever
            // was in flight.
            stats.resets.fetch_add(1, Ordering::Relaxed);
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-connection echo server for exercising the proxy without
    /// the counter stack.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let handle = std::thread::spawn(move || {
            let Ok((mut conn, _)) = listener.accept() else { return };
            let mut buf = [0u8; 1024];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if conn.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn a_clean_plan_is_a_faithful_proxy() {
        let (addr, echo) = echo_server();
        let mut proxy = ChaosProxy::start(addr, ChaosPlan::new(1)).expect("proxy");
        let mut client = TcpStream::connect(proxy.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let payload = b"through the looking glass";
        client.write_all(payload).expect("write");
        let mut got = vec![0u8; payload.len()];
        client.read_exact(&mut got).expect("read");
        assert_eq!(&got, payload);
        let stats = proxy.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.bytes_up, payload.len() as u64);
        assert_eq!(stats.bytes_down, payload.len() as u64);
        assert_eq!(stats.corrupted_bytes, 0);
        drop(client);
        proxy.shutdown();
        let _ = echo.join();
    }

    #[test]
    fn sliced_and_corrupted_bytes_still_all_arrive() {
        let (addr, echo) = echo_server();
        let plan = ChaosPlan::new(9).slice(3, Duration::from_micros(100)).corrupt(0.2);
        let mut proxy = ChaosProxy::start(addr, plan).expect("proxy");
        let mut client = TcpStream::connect(proxy.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let payload: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        client.write_all(&payload).expect("write");
        let mut got = vec![0u8; payload.len()];
        client.read_exact(&mut got).expect("read");
        // Same byte count, but corruption virtually surely mangled some
        // (2 directions × 200 bytes × p=0.2).
        assert_ne!(got, payload, "corruption must have struck at p=0.2 over 400 bytes");
        assert!(proxy.stats().corrupted_bytes > 0);
        drop(client);
        proxy.shutdown();
        let _ = echo.join();
    }

    #[test]
    fn reset_cuts_the_connection_at_the_byte_budget() {
        let (addr, echo) = echo_server();
        let plan = ChaosPlan::new(3).reset_after(10);
        let mut proxy = ChaosProxy::start(addr, plan).expect("proxy");
        let mut client = TcpStream::connect(proxy.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let _ = client.write_all(&[7u8; 64]);
        // At most 10 bytes come back before the cut kills both halves.
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match client.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
            }
        }
        assert!(got.len() <= 10, "no more than the budget leaks through: {}", got.len());
        assert!(proxy.stats().resets >= 1);
        proxy.shutdown();
        let _ = echo.join();
    }

    #[test]
    fn blackhole_stalls_without_closing() {
        let (addr, echo) = echo_server();
        let plan = ChaosPlan::new(5).blackhole_after(4);
        let mut proxy = ChaosProxy::start(addr, plan).expect("proxy");
        let mut client = TcpStream::connect(proxy.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_millis(300))).expect("timeout");
        client.write_all(&[1u8; 32]).expect("write");
        let mut buf = [0u8; 64];
        let mut got = 0usize;
        // Up to 4 bytes make it; then reads time out (stall), not EOF.
        loop {
            match client.read(&mut buf) {
                Ok(0) => panic!("a blackhole must stall, not close"),
                Ok(n) => got += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => panic!("unexpected socket error: {e}"),
            }
        }
        assert!(got <= 4, "at most the budget arrives: {got}");
        assert!(proxy.stats().blackholed >= 1);
        proxy.shutdown();
        let _ = echo.join();
    }

    #[test]
    fn latency_toxic_delays_delivery() {
        let (addr, echo) = echo_server();
        let plan = ChaosPlan::new(11).latency(Duration::from_millis(30), Duration::ZERO);
        let mut proxy = ChaosProxy::start(addr, plan).expect("proxy");
        let mut client = TcpStream::connect(proxy.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let t0 = std::time::Instant::now();
        client.write_all(b"ping").expect("write");
        let mut got = [0u8; 4];
        client.read_exact(&mut got).expect("read");
        // 30 ms each way.
        assert!(t0.elapsed() >= Duration::from_millis(55), "round trip took {:?}", t0.elapsed());
        proxy.shutdown();
        let _ = echo.join();
    }
}
