//! The centralized counter — the paper's introductory strawman.
//!
//! "A data structure implementing a distributed counter could be message
//! optimal by just storing the counter value with a single processor and
//! having all other processors access the counter with only one message
//! exchange — but this implementation is clearly unreasonable: the single
//! processor handling the counter value will be a bottleneck."
//!
//! Exactly two messages per operation (message-optimal), but the
//! coordinator's load is 2n over the canonical workload — the Θ(n)
//! bottleneck the paper's tree reduces to O(k).

use distctr_sim::{
    CompletedOp, ConcurrentCounter, Counter, DeliveryPolicy, IncResult, LoadTracker, Network, OpId,
    Outbox, OverlappedCounter, ProcessorId, Protocol, SimError, SimTime, TraceMode,
};

/// Protocol messages of the centralized counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CentralMsg {
    /// Request from an initiator to the coordinator.
    Request {
        /// The initiating processor (reply address).
        origin: ProcessorId,
    },
    /// The pre-increment value, returned to the initiator.
    Value {
        /// Counter value.
        value: u64,
    },
}

#[derive(Debug, Clone)]
struct CentralState {
    coordinator: ProcessorId,
    value: u64,
    delivered: Vec<(OpId, ProcessorId, u64)>,
}

impl Protocol for CentralState {
    type Msg = CentralMsg;

    fn on_deliver(
        &mut self,
        out: &mut Outbox<'_, CentralMsg>,
        _from: ProcessorId,
        msg: CentralMsg,
    ) {
        match msg {
            CentralMsg::Request { origin } => {
                debug_assert_eq!(out.me(), self.coordinator);
                let value = self.value;
                self.value += 1;
                out.send(origin, CentralMsg::Value { value });
            }
            CentralMsg::Value { value } => {
                self.delivered.push((out.op(), out.me(), value));
            }
        }
    }
}

/// A counter whose value lives at a single coordinator processor.
///
/// # Examples
///
/// ```
/// use distctr_baselines::CentralCounter;
/// use distctr_sim::{Counter, ProcessorId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut counter = CentralCounter::new(8)?;
/// assert_eq!(counter.inc(ProcessorId::new(3))?.value, 0);
/// assert_eq!(counter.inc(ProcessorId::new(5))?.value, 1);
/// // Two messages per op, both touching the coordinator.
/// assert_eq!(counter.loads().load_of(ProcessorId::new(0)), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CentralCounter {
    net: Network<CentralMsg>,
    state: CentralState,
    next_op: usize,
    overlapped: Vec<(OpId, ProcessorId)>,
}

impl CentralCounter {
    /// Creates a centralized counter on `n` processors with processor 0 as
    /// coordinator and FIFO delivery.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, SimError> {
        Self::with_policy(n, TraceMode::Contacts, DeliveryPolicy::default())
    }

    /// Creates a centralized counter with explicit trace mode and
    /// delivery policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    pub fn with_policy(
        n: usize,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Self, SimError> {
        let net = Network::with_policy(n, trace, policy)?;
        Ok(CentralCounter {
            net,
            state: CentralState {
                coordinator: ProcessorId::new(0),
                value: 0,
                delivered: Vec::new(),
            },
            next_op: 0,
            overlapped: Vec::new(),
        })
    }

    /// The coordinator processor.
    #[must_use]
    pub fn coordinator(&self) -> ProcessorId {
        self.state.coordinator
    }

    /// The counter's current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.state.value
    }
}

impl Counter for CentralCounter {
    fn name(&self) -> &'static str {
        "central"
    }

    fn processors(&self) -> usize {
        self.net.processors()
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<IncResult, SimError> {
        if initiator.index() >= self.net.processors() {
            return Err(SimError::UnknownProcessor {
                index: initiator.index(),
                processors: self.net.processors(),
            });
        }
        let op = OpId::new(self.next_op);
        self.next_op += 1;
        self.state.delivered.clear();
        self.net.inject(
            op,
            initiator,
            self.state.coordinator,
            CentralMsg::Request { origin: initiator },
        );
        let stats = self.net.run_to_quiescence(&mut self.state)?;
        let trace = self.net.finish_op(op);
        let (_, _, value) =
            self.state.delivered.pop().expect("coordinator must answer before quiescence");
        Ok(IncResult { value, messages: stats.delivered, completed_at: stats.end_time, trace })
    }

    fn loads(&self) -> &LoadTracker {
        self.net.loads()
    }
}

impl ConcurrentCounter for CentralCounter {
    fn inc_batch(&mut self, initiators: &[ProcessorId]) -> Result<Vec<u64>, SimError> {
        for &p in initiators {
            if p.index() >= self.net.processors() {
                return Err(SimError::UnknownProcessor {
                    index: p.index(),
                    processors: self.net.processors(),
                });
            }
        }
        self.state.delivered.clear();
        let base = self.next_op;
        for (i, &p) in initiators.iter().enumerate() {
            let op = OpId::new(base + i);
            self.net.inject(op, p, self.state.coordinator, CentralMsg::Request { origin: p });
        }
        self.next_op += initiators.len();
        self.net.run_to_quiescence(&mut self.state)?;
        for (i, &p) in initiators.iter().enumerate() {
            self.net.finish_op(OpId::new(base + i));
            let _ = p;
        }
        // Map replies back to initiation order by op id.
        let delivered = std::mem::take(&mut self.state.delivered);
        let by_op: std::collections::HashMap<OpId, u64> =
            delivered.into_iter().map(|(op, _, v)| (op, v)).collect();
        Ok((0..initiators.len()).map(|i| by_op[&OpId::new(base + i)]).collect())
    }
}

impl OverlappedCounter for CentralCounter {
    fn start_inc(&mut self, initiator: ProcessorId) -> Result<OpId, SimError> {
        if initiator.index() >= self.net.processors() {
            return Err(SimError::UnknownProcessor {
                index: initiator.index(),
                processors: self.net.processors(),
            });
        }
        let op = OpId::new(self.next_op);
        self.next_op += 1;
        self.overlapped.push((op, initiator));
        self.net.inject(
            op,
            initiator,
            self.state.coordinator,
            CentralMsg::Request { origin: initiator },
        );
        Ok(op)
    }

    fn advance_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        self.net.run_until(&mut self.state, deadline)?;
        Ok(())
    }

    fn finish_all(&mut self) -> Result<Vec<CompletedOp>, SimError> {
        self.net.run_to_quiescence(&mut self.state)?;
        let delivered = std::mem::take(&mut self.state.delivered);
        let by_op: std::collections::HashMap<OpId, u64> =
            delivered.into_iter().map(|(op, _, v)| (op, v)).collect();
        let mut completed = Vec::new();
        for (op, initiator) in std::mem::take(&mut self.overlapped) {
            let trace = self
                .net
                .finish_op(op)
                .expect("overlapped execution requires per-op tracing (TraceMode::Contacts)");
            completed.push(CompletedOp {
                op,
                initiator,
                value: by_op[&op],
                started_at: trace.started_at,
                completed_at: trace.completed_at,
            });
        }
        Ok(completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_sim::{ConcurrentDriver, SequentialDriver};

    #[test]
    fn sequential_correctness_and_message_optimality() {
        let mut c = CentralCounter::new(16).expect("counter");
        let out = SequentialDriver::run_identity(&mut c).expect("sequence");
        assert!(out.values_are_sequential());
        assert_eq!(out.total_messages, 32, "exactly 2 messages per op");
        assert!((out.messages_per_op() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coordinator_is_the_bottleneck_with_load_2n() {
        let mut c = CentralCounter::new(16).expect("counter");
        SequentialDriver::run_identity(&mut c).expect("sequence");
        let (b, load) = c.loads().bottleneck().expect("bottleneck");
        assert_eq!(b, ProcessorId::new(0));
        // 2n from coordinating, plus 2 for its own op.
        assert_eq!(load, 2 * 16 + 2);
    }

    #[test]
    fn hot_spot_lemma_trivially_satisfied() {
        let mut c = CentralCounter::new(4).expect("counter");
        let out = SequentialDriver::run_identity(&mut c).expect("sequence");
        let traces: Vec<_> = out.results.iter().map(|r| r.trace.clone().expect("trace")).collect();
        for pair in traces.windows(2) {
            let common = pair[0].contacts.intersection(&pair[1].contacts);
            assert!(common.contains(&ProcessorId::new(0)), "coordinator in every contact set");
        }
    }

    #[test]
    fn concurrent_batches_are_gap_free() {
        let mut c = CentralCounter::new(12).expect("counter");
        let values = ConcurrentDriver::run_batches(&mut c, 4, 3).expect("batches");
        assert!(ConcurrentDriver::values_are_gap_free(&values));
        assert_eq!(c.value(), 12);
    }

    #[test]
    fn unknown_initiator_rejected_everywhere() {
        let mut c = CentralCounter::new(2).expect("counter");
        assert!(c.inc(ProcessorId::new(5)).is_err());
        assert!(c.inc_batch(&[ProcessorId::new(5)]).is_err());
    }

    #[test]
    fn works_under_every_delivery_policy() {
        for policy in DeliveryPolicy::test_suite() {
            let mut c =
                CentralCounter::with_policy(8, TraceMode::Contacts, policy).expect("counter");
            let out = SequentialDriver::run_shuffled(&mut c, 1).expect("sequence");
            assert!(out.values_are_sequential());
        }
    }

    #[test]
    fn single_processor_network() {
        let mut c = CentralCounter::new(1).expect("counter");
        let r = c.inc(ProcessorId::new(0)).expect("self-inc");
        assert_eq!(r.value, 0);
        assert_eq!(r.messages, 2, "request and reply are self-messages but still count");
    }
}
