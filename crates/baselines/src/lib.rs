//! # distctr-baselines
//!
//! Every comparator counter the paper positions itself against, built
//! from scratch on the same simulated network as the paper's
//! retirement tree:
//!
//! * [`CentralCounter`] — the message-optimal single-coordinator counter
//!   from the paper's introduction; bottleneck Θ(n).
//! * [`StaticTreeCounter`] — the paper's tree with retirement disabled
//!   (ablation); bottleneck Θ(n) at the root.
//! * [`CombiningTreeCounter`] — software combining tree (Yew-Tzeng-Lawrie
//!   / Goodman-Vernon-Woest); combines only under concurrency.
//! * [`CountingNetworkCounter`] — bitonic counting network
//!   (Aspnes-Herlihy-Shavit) of balancer processors.
//! * [`DiffractingTreeCounter`] — diffracting tree (Shavit-Zemach) with
//!   prisms realized as park-and-timeout.
//! * [`ArrowCounter`] — the opposite philosophy: a mobile token carrying
//!   the value over a spanning tree with Arrow path reversal.
//!
//! All implement [`distctr_sim::Counter`] (sequential paper model) and
//! [`distctr_sim::ConcurrentCounter`] where concurrency is meaningful, so
//! the experiments and the lower-bound adversary run identically against
//! each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrow;
pub mod bitonic;
pub mod central;
pub mod combining;
pub mod counting;
pub mod diffracting;
pub mod hosting;
pub mod static_tree;

pub use arrow::{ArrowCounter, ArrowMsg, SpanningTree};
pub use bitonic::{has_step_property, Balancer, BitonicNetwork};
pub use central::{CentralCounter, CentralMsg};
pub use combining::{CombiningMsg, CombiningTreeCounter};
pub use counting::{CountingMsg, CountingNetworkCounter};
pub use diffracting::{DiffractingMsg, DiffractingTreeCounter};
pub use hosting::Hosting;
pub use static_tree::StaticTreeCounter;
