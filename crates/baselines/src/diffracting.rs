//! A diffracting tree (Shavit-Zemach 1994).
//!
//! A binary tree of toggle balancers whose exits are counters. Each node
//! carries a *prism*: a token arriving at a node first looks for a
//! partner parked there. If one is waiting, the pair *diffracts* — one
//! token goes to each child without touching the toggle (two toggle flips
//! cancel, so balance is preserved). Otherwise the token parks and sets a
//! timeout (a self-addressed message, the asynchronous analogue of the
//! prism's spin bound); if no partner shows up, it takes the toggle.
//!
//! Exit counter ordering follows the bit-reversed root-to-leaf path (the
//! root's toggle decides the *lowest* value bit), which is what makes the
//! i-th sequential token receive value i.

use std::collections::HashMap;

use distctr_sim::{
    ConcurrentCounter, Counter, DeliveryPolicy, IncResult, LoadTracker, Network, OpId, Outbox,
    ProcessorId, Protocol, SimError, TraceMode,
};

use crate::hosting::Hosting;

/// Messages of the diffracting-tree protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffractingMsg {
    /// A token arriving at tree node `node` (heap index, root = 1).
    Token {
        /// Target node.
        node: u32,
        /// Initiator (reply address).
        origin: ProcessorId,
    },
    /// Prism timeout for a parked token.
    Timeout {
        /// Node whose prism parked the token.
        node: u32,
        /// Parking instance, to ignore stale timeouts.
        marker: u64,
    },
    /// A token arriving at exit counter `exit` (leaf order index).
    ExitToken {
        /// Exit counter index (bit-reversed path).
        exit: u32,
        /// Initiator (reply address).
        origin: ProcessorId,
    },
    /// Value delivery to the initiator.
    Value {
        /// The assigned value.
        value: u64,
    },
}

#[derive(Debug, Clone)]
struct Parked {
    marker: u64,
    origin: ProcessorId,
}

#[derive(Debug, Clone)]
struct DiffractingState {
    depth: u32,
    hosting: Hosting,
    toggles: Vec<bool>,
    prisms: HashMap<u32, Parked>,
    visits: Vec<u64>,
    next_marker: u64,
    delivered: Vec<(OpId, ProcessorId, u64)>,
    diffractions: u64,
    toggle_passes: u64,
}

impl DiffractingState {
    fn width(&self) -> usize {
        1usize << self.depth
    }

    fn inner_nodes(&self) -> usize {
        (1usize << self.depth) - 1
    }

    fn host_of_node(&self, node: u32) -> ProcessorId {
        self.hosting.host_of(node as usize - 1)
    }

    fn host_of_exit(&self, exit: u32) -> ProcessorId {
        self.hosting.host_of(self.inner_nodes() + exit as usize)
    }

    /// Routes a token leaving `node` toward child `bit` (0 = left).
    /// `node` is a heap index; depth of node = floor(log2(node)).
    fn route(
        &mut self,
        out: &mut Outbox<'_, DiffractingMsg>,
        node: u32,
        bit: u32,
        origin: ProcessorId,
    ) {
        let child = node * 2 + bit;
        if (child as usize) < (1usize << self.depth) {
            out.send(self.host_of_node(child), DiffractingMsg::Token { node: child, origin });
        } else {
            // The child is an exit. Heap leaf index -> path bits -> exit
            // order index (bit-reversed: root bit is the LSB).
            let leaf = child as usize - (1usize << self.depth);
            let mut exit = 0u32;
            for level in 0..self.depth {
                let b = (leaf >> (self.depth - 1 - level)) & 1;
                exit |= (b as u32) << level;
            }
            out.send(self.host_of_exit(exit), DiffractingMsg::ExitToken { exit, origin });
        }
    }
}

impl Protocol for DiffractingState {
    type Msg = DiffractingMsg;

    fn on_deliver(
        &mut self,
        out: &mut Outbox<'_, DiffractingMsg>,
        _from: ProcessorId,
        msg: DiffractingMsg,
    ) {
        match msg {
            DiffractingMsg::Token { node, origin } => {
                if let Some(partner) = self.prisms.remove(&node) {
                    // Diffract: partner left, newcomer right; the toggle
                    // is untouched.
                    self.diffractions += 1;
                    self.route(out, node, 0, partner.origin);
                    self.route(out, node, 1, origin);
                } else {
                    self.next_marker += 1;
                    let marker = self.next_marker;
                    self.prisms.insert(node, Parked { marker, origin });
                    out.send(out.me(), DiffractingMsg::Timeout { node, marker });
                }
            }
            DiffractingMsg::Timeout { node, marker } => {
                if self.prisms.get(&node).is_some_and(|p| p.marker == marker) {
                    let parked = self.prisms.remove(&node).expect("checked present");
                    self.toggle_passes += 1;
                    let idx = node as usize - 1;
                    let bit = u32::from(self.toggles[idx]);
                    self.toggles[idx] = !self.toggles[idx];
                    self.route(out, node, bit, parked.origin);
                }
            }
            DiffractingMsg::ExitToken { exit, origin } => {
                let w = self.width() as u64;
                let value = u64::from(exit) + w * self.visits[exit as usize];
                self.visits[exit as usize] += 1;
                out.send(origin, DiffractingMsg::Value { value });
            }
            DiffractingMsg::Value { value } => {
                self.delivered.push((out.op(), out.me(), value));
            }
        }
    }
}

/// A distributed counter backed by a diffracting tree of depth `d`
/// (2^d exit counters).
///
/// # Examples
///
/// ```
/// use distctr_baselines::DiffractingTreeCounter;
/// use distctr_sim::{Counter, ProcessorId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut counter = DiffractingTreeCounter::new(16, 2)?;
/// assert_eq!(counter.inc(ProcessorId::new(1))?.value, 0);
/// assert_eq!(counter.inc(ProcessorId::new(9))?.value, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiffractingTreeCounter {
    net: Network<DiffractingMsg>,
    state: DiffractingState,
    next_op: usize,
}

impl DiffractingTreeCounter {
    /// Creates a diffracting tree of depth `depth` over `n` processors
    /// with FIFO delivery.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    pub fn new(n: usize, depth: u32) -> Result<Self, SimError> {
        Self::with_policy(n, depth, TraceMode::Contacts, DeliveryPolicy::default())
    }

    /// Creates a diffracting tree with explicit trace mode and delivery
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    pub fn with_policy(
        n: usize,
        depth: u32,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Self, SimError> {
        let net = Network::with_policy(n, trace, policy)?;
        let inner = (1usize << depth) - 1;
        let width = 1usize << depth;
        let state = DiffractingState {
            depth,
            hosting: Hosting::new((inner + width).max(1), n),
            toggles: vec![false; inner],
            prisms: HashMap::new(),
            visits: vec![0; width],
            next_marker: 0,
            delivered: Vec::new(),
            diffractions: 0,
            toggle_passes: 0,
        };
        Ok(DiffractingTreeCounter { net, state, next_op: 0 })
    }

    /// Number of exit counters (2^depth).
    #[must_use]
    pub fn width(&self) -> usize {
        self.state.width()
    }

    /// Fraction of node passages resolved by diffraction rather than the
    /// toggle (0.0 under sequential workloads).
    #[must_use]
    pub fn diffraction_rate(&self) -> f64 {
        let total = self.state.diffractions * 2 + self.state.toggle_passes;
        if total == 0 {
            0.0
        } else {
            (self.state.diffractions * 2) as f64 / total as f64
        }
    }

    /// Exit counts (indexed by exit order) for balance checks.
    #[must_use]
    pub fn exit_counts(&self) -> &[u64] {
        &self.state.visits
    }

    fn entry(&self, p: ProcessorId) -> (ProcessorId, DiffractingMsg) {
        if self.state.depth == 0 {
            (self.state.host_of_exit(0), DiffractingMsg::ExitToken { exit: 0, origin: p })
        } else {
            (self.state.host_of_node(1), DiffractingMsg::Token { node: 1, origin: p })
        }
    }

    fn check(&self, p: ProcessorId) -> Result<(), SimError> {
        if p.index() >= self.net.processors() {
            return Err(SimError::UnknownProcessor {
                index: p.index(),
                processors: self.net.processors(),
            });
        }
        Ok(())
    }
}

impl Counter for DiffractingTreeCounter {
    fn name(&self) -> &'static str {
        "diffracting-tree"
    }

    fn processors(&self) -> usize {
        self.net.processors()
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<IncResult, SimError> {
        self.check(initiator)?;
        let op = OpId::new(self.next_op);
        self.next_op += 1;
        self.state.delivered.clear();
        let (to, msg) = self.entry(initiator);
        self.net.inject(op, initiator, to, msg);
        let stats = self.net.run_to_quiescence(&mut self.state)?;
        let trace = self.net.finish_op(op);
        let (_, _, value) =
            self.state.delivered.pop().expect("token must exit and deliver a value");
        Ok(IncResult { value, messages: stats.delivered, completed_at: stats.end_time, trace })
    }

    fn loads(&self) -> &LoadTracker {
        self.net.loads()
    }
}

impl ConcurrentCounter for DiffractingTreeCounter {
    fn inc_batch(&mut self, initiators: &[ProcessorId]) -> Result<Vec<u64>, SimError> {
        for &p in initiators {
            self.check(p)?;
        }
        self.state.delivered.clear();
        let base = self.next_op;
        for (i, &p) in initiators.iter().enumerate() {
            let (to, msg) = self.entry(p);
            self.net.inject(OpId::new(base + i), p, to, msg);
        }
        self.next_op += initiators.len();
        self.net.run_to_quiescence(&mut self.state)?;
        for i in 0..initiators.len() {
            self.net.finish_op(OpId::new(base + i));
        }
        // Combined/diffracted operations share envelopes, so a value's op
        // id may be a partner's; match replies by initiator instead.
        let mut delivered = std::mem::take(&mut self.state.delivered);
        let mut out = Vec::with_capacity(initiators.len());
        for &p in initiators {
            let pos = delivered
                .iter()
                .position(|&(_, to, _)| to == p)
                .expect("every initiator must receive a value");
            out.push(delivered.swap_remove(pos).2);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_sim::{ConcurrentDriver, SequentialDriver};

    #[test]
    fn sequential_correctness_across_depths() {
        for depth in 0..=3u32 {
            let mut c = DiffractingTreeCounter::new(16, depth).expect("counter");
            let out = SequentialDriver::run_shuffled(&mut c, 6).expect("sequence");
            assert!(out.values_are_sequential(), "depth {depth}");
            assert_eq!(c.diffraction_rate(), 0.0, "no partners under sequential ops");
        }
    }

    #[test]
    fn bit_reversed_exits_count_in_order() {
        // Depth 2: sequential tokens must visit exits 0,1,2,3,0,1,...
        let mut c = DiffractingTreeCounter::new(8, 2).expect("counter");
        for i in 0..8u64 {
            let r = c.inc(ProcessorId::new((i % 8) as usize)).expect("inc");
            assert_eq!(r.value, i);
        }
        assert_eq!(c.exit_counts(), &[2, 2, 2, 2]);
    }

    #[test]
    fn concurrent_batches_diffract_and_stay_gap_free() {
        let mut c = DiffractingTreeCounter::new(32, 3).expect("counter");
        let values = ConcurrentDriver::run_batches(&mut c, 32, 13).expect("batches");
        assert!(ConcurrentDriver::values_are_gap_free(&values));
        assert!(
            c.diffraction_rate() > 0.3,
            "full batches should diffract: rate {}",
            c.diffraction_rate()
        );
    }

    #[test]
    fn exit_counts_stay_balanced_after_quiescence() {
        let mut c = DiffractingTreeCounter::new(16, 2).expect("counter");
        for seed in 0..3 {
            ConcurrentDriver::run_batches(&mut c, 8, seed).expect("batches");
        }
        let counts = c.exit_counts();
        let max = counts.iter().max().expect("nonempty");
        let min = counts.iter().min().expect("nonempty");
        assert!(max - min <= 1, "balanced exits: {counts:?}");
    }

    #[test]
    fn works_under_every_delivery_policy() {
        for policy in DeliveryPolicy::test_suite() {
            let mut c =
                DiffractingTreeCounter::with_policy(8, 2, TraceMode::Off, policy).expect("counter");
            let batch: Vec<_> = (0..8).map(ProcessorId::new).collect();
            let values = c.inc_batch(&batch).expect("batch");
            assert!(ConcurrentDriver::values_are_gap_free(&values));
        }
    }

    #[test]
    fn unknown_initiator_rejected() {
        let mut c = DiffractingTreeCounter::new(4, 1).expect("counter");
        assert!(c.inc(ProcessorId::new(4)).is_err());
    }
}
