//! Construction of the bitonic counting network (Aspnes, Herlihy, Shavit
//! 1991).
//!
//! `Bitonic[w]` (w a power of two) is built recursively: two `Bitonic[w/2]`
//! networks side by side feeding a `Merger[w]`. `Merger[2k]` sends the
//! even-indexed wires of its first input and odd-indexed wires of its
//! second input to one `Merger[k]`, the complementary wires to another,
//! and joins the results with a final column of balancers. The network
//! has the *step property*: in any quiescent state the exit counts
//! `y_0 >= y_1 >= ... >= y_{w-1}` differ by at most one — which is what
//! makes it count.
//!
//! The construction here produces, per physical wire, the ordered list of
//! balancers the wire passes through, plus the exit ordering — everything
//! the message-passing protocol in [`counting`](crate::counting) needs to
//! route tokens.

/// One balancer: two input/output wires. Tokens leave alternately on
/// `top` then `bottom`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Balancer {
    /// Physical wire carrying the balancer's top output.
    pub top: usize,
    /// Physical wire carrying the balancer's bottom output.
    pub bottom: usize,
}

/// A compiled bitonic counting network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitonicNetwork {
    width: usize,
    balancers: Vec<Balancer>,
    /// Per physical wire: balancer ids in traversal order.
    wire_seq: Vec<Vec<u32>>,
    /// Exit ordering: `exit_order[rank]` = physical wire with that rank.
    exit_order: Vec<usize>,
    /// Inverse: `exit_rank[wire]` = rank of the wire's exit counter.
    exit_rank: Vec<usize>,
}

impl BitonicNetwork {
    /// Builds `Bitonic[width]`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or not a power of two.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0 && width.is_power_of_two(), "width must be a power of two");
        let mut net = BitonicNetwork {
            width,
            balancers: Vec::new(),
            wire_seq: vec![Vec::new(); width],
            exit_order: Vec::new(),
            exit_rank: vec![0; width],
        };
        let wires: Vec<usize> = (0..width).collect();
        net.exit_order = net.bitonic(&wires);
        for (rank, &wire) in net.exit_order.iter().enumerate() {
            net.exit_rank[wire] = rank;
        }
        net
    }

    /// Network width (number of wires = exit counters).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of balancers: `w/2 * d` where `d = O(log^2 w)` is the
    /// network depth.
    #[must_use]
    pub fn balancer_count(&self) -> usize {
        self.balancers.len()
    }

    /// The balancer with id `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn balancer(&self, b: u32) -> Balancer {
        self.balancers[b as usize]
    }

    /// The first balancer on `wire`, or `None` for a width-1 network.
    #[must_use]
    pub fn entry(&self, wire: usize) -> Option<u32> {
        self.wire_seq[wire].first().copied()
    }

    /// The balancer following `after` on `wire`, or `None` if `after` is
    /// the wire's last (the token exits).
    #[must_use]
    pub fn next_on_wire(&self, wire: usize, after: u32) -> Option<u32> {
        let seq = &self.wire_seq[wire];
        let pos = seq.iter().position(|&b| b == after)?;
        seq.get(pos + 1).copied()
    }

    /// Rank of `wire`'s exit counter in the step-property ordering: the
    /// counter at rank `r` hands out values `r, r + w, r + 2w, ...`.
    #[must_use]
    pub fn exit_rank(&self, wire: usize) -> usize {
        self.exit_rank[wire]
    }

    /// Network depth: the longest wire sequence.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.wire_seq.iter().map(Vec::len).max().unwrap_or(0)
    }

    fn add_balancer(&mut self, top: usize, bottom: usize) -> u32 {
        let id = u32::try_from(self.balancers.len()).expect("balancer count fits u32");
        self.balancers.push(Balancer { top, bottom });
        self.wire_seq[top].push(id);
        self.wire_seq[bottom].push(id);
        id
    }

    /// Recursive `Bitonic[w]` over the given wires (in logical order);
    /// returns the logical output order.
    fn bitonic(&mut self, wires: &[usize]) -> Vec<usize> {
        if wires.len() == 1 {
            return wires.to_vec();
        }
        let half = wires.len() / 2;
        let top = self.bitonic(&wires[..half]);
        let bottom = self.bitonic(&wires[half..]);
        self.merger(&top, &bottom)
    }

    /// `Merger[2k]` of two k-wire sequences; returns the output order.
    fn merger(&mut self, x: &[usize], y: &[usize]) -> Vec<usize> {
        let k = x.len();
        debug_assert_eq!(k, y.len());
        if k == 1 {
            self.add_balancer(x[0], y[0]);
            return vec![x[0], y[0]];
        }
        let even = |s: &[usize]| -> Vec<usize> { s.iter().copied().step_by(2).collect() };
        let odd = |s: &[usize]| -> Vec<usize> { s.iter().copied().skip(1).step_by(2).collect() };
        // M1 merges x's evens with y's odds; M2 the complements.
        let m1_in_a = even(x);
        let m1_in_b = odd(y);
        let m2_in_a = odd(x);
        let m2_in_b = even(y);
        let z1 = self.merger(&m1_in_a, &m1_in_b);
        let z2 = self.merger(&m2_in_a, &m2_in_b);
        // Final column: balancer between z1[i] and z2[i]; outputs
        // interleave as y_{2i} = z1[i] (top), y_{2i+1} = z2[i] (bottom).
        let mut out = Vec::with_capacity(2 * k);
        for i in 0..k {
            self.add_balancer(z1[i], z2[i]);
            out.push(z1[i]);
            out.push(z2[i]);
        }
        out
    }

    /// Reference (non-message-passing) simulation: push `tokens` tokens in
    /// on the given entry wires, return per-exit-rank counts. Used by
    /// tests to check the step property independent of the network
    /// protocol.
    #[must_use]
    pub fn simulate_counts(&self, entries: &[usize]) -> Vec<u64> {
        let mut toggles = vec![false; self.balancers.len()];
        let mut counts = vec![0u64; self.width];
        for &entry_wire in entries {
            let mut wire = entry_wire;
            let mut next = self.entry(wire);
            while let Some(b) = next {
                let bal = self.balancers[b as usize];
                // toggle=false -> top output next.
                wire = if toggles[b as usize] { bal.bottom } else { bal.top };
                toggles[b as usize] = !toggles[b as usize];
                next = self.next_on_wire(wire, b);
            }
            counts[self.exit_rank[wire]] += 1;
        }
        counts
    }
}

/// Whether exit counts (indexed by rank) satisfy the step property:
/// non-increasing and adjacent ranks differ by at most one.
#[must_use]
pub fn has_step_property(counts: &[u64]) -> bool {
    counts.windows(2).all(|w| w[0] >= w[1])
        && counts.first().zip(counts.last()).is_none_or(|(first, last)| first - last <= 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_two_is_single_balancer() {
        let net = BitonicNetwork::new(2);
        assert_eq!(net.balancer_count(), 1);
        assert_eq!(net.depth(), 1);
        assert_eq!(net.width(), 2);
    }

    #[test]
    fn balancer_counts_match_formula() {
        // Bitonic[w] has depth d(w) = log w (log w + 1) / 2 and
        // w/2 balancers per layer.
        for (w, expected_depth) in [(2usize, 1usize), (4, 3), (8, 6), (16, 10)] {
            let net = BitonicNetwork::new(w);
            assert_eq!(net.depth(), expected_depth, "depth of Bitonic[{w}]");
            assert_eq!(net.balancer_count(), w / 2 * expected_depth, "balancers of Bitonic[{w}]");
        }
    }

    #[test]
    fn every_wire_traverses_depth_balancers() {
        let net = BitonicNetwork::new(8);
        for wire in 0..8 {
            assert_eq!(net.wire_seq[wire].len(), net.depth(), "bitonic networks are uniform");
        }
    }

    #[test]
    fn step_property_for_sequential_tokens() {
        for w in [2usize, 4, 8, 16] {
            let net = BitonicNetwork::new(w);
            for m in 0..(3 * w) {
                let entries: Vec<usize> = (0..m).map(|i| i % w).collect();
                let counts = net.simulate_counts(&entries);
                assert!(
                    has_step_property(&counts),
                    "Bitonic[{w}] step property after {m} tokens: {counts:?}"
                );
                assert_eq!(counts.iter().sum::<u64>(), m as u64);
            }
        }
    }

    #[test]
    fn step_property_for_skewed_entries() {
        // All tokens entering on one wire must still spread out.
        for w in [4usize, 8] {
            let net = BitonicNetwork::new(w);
            let entries = vec![0usize; 2 * w + 3];
            let counts = net.simulate_counts(&entries);
            assert!(has_step_property(&counts), "skewed entries on Bitonic[{w}]: {counts:?}");
        }
    }

    #[test]
    fn sequential_tokens_count_in_order() {
        // With tokens inserted one at a time, the i-th token must exit at
        // rank i mod w (this is what makes sequential counting correct).
        let w = 8;
        let net = BitonicNetwork::new(w);
        let mut toggles = vec![false; net.balancer_count()];
        for i in 0..4 * w {
            let mut wire = i % w;
            let mut next = net.entry(wire);
            while let Some(b) = next {
                let bal = net.balancer(b);
                wire = if toggles[b as usize] { bal.bottom } else { bal.top };
                toggles[b as usize] = !toggles[b as usize];
                next = net.next_on_wire(wire, b);
            }
            assert_eq!(net.exit_rank(wire), i % w, "token {i} exits at rank {}", i % w);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = BitonicNetwork::new(6);
    }

    #[test]
    fn step_property_checker() {
        assert!(has_step_property(&[3, 3, 2, 2]));
        assert!(has_step_property(&[]));
        assert!(has_step_property(&[5]));
        assert!(!has_step_property(&[2, 3]));
        assert!(!has_step_property(&[4, 3, 2, 2]), "spread > 1");
    }
}
