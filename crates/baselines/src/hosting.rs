//! Mapping logical protocol elements (tree nodes, balancers, exit
//! counters) onto the `n` physical processors.
//!
//! Baseline structures have their own logical node sets; each logical
//! node is *hosted* by one processor. The assignment spreads nodes across
//! processors with a fixed stride so that hosting collisions (two hot
//! nodes on one processor) do not manufacture artificial bottlenecks.

use distctr_sim::ProcessorId;

/// Deterministic assignment of `logical` node indices onto `processors`
/// processors.
///
/// # Examples
///
/// ```
/// use distctr_baselines::hosting::Hosting;
/// let h = Hosting::new(5, 16);
/// let owners: Vec<_> = (0..5).map(|i| h.host_of(i)).collect();
/// let distinct: std::collections::HashSet<_> = owners.iter().collect();
/// assert_eq!(distinct.len(), 5, "few nodes on many processors: all distinct");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hosting {
    logical: usize,
    processors: usize,
    stride: usize,
}

impl Hosting {
    /// Creates an assignment of `logical` nodes to `processors`
    /// processors.
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0`.
    #[must_use]
    pub fn new(logical: usize, processors: usize) -> Self {
        assert!(processors > 0, "hosting requires at least one processor");
        // A stride coprime to `processors` visits every processor before
        // any repeats, spreading consecutive logical nodes far apart.
        let stride = Self::coprime_stride(processors);
        Hosting { logical, processors, stride }
    }

    fn coprime_stride(n: usize) -> usize {
        if n <= 2 {
            return 1;
        }
        // Golden-ratio-ish stride, adjusted upward until coprime.
        let mut s = (n as f64 * 0.618).round() as usize;
        s = s.clamp(1, n - 1);
        while gcd(s, n) != 1 {
            s += 1;
            if s >= n {
                s = 1;
                break;
            }
        }
        s
    }

    /// Number of logical nodes.
    #[must_use]
    pub fn logical(&self) -> usize {
        self.logical
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The processor hosting logical node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= logical`.
    #[must_use]
    pub fn host_of(&self, index: usize) -> ProcessorId {
        assert!(index < self.logical, "logical index {index} out of range");
        ProcessorId::new((index * self.stride) % self.processors)
    }

    /// Largest number of logical nodes any single processor hosts.
    #[must_use]
    pub fn max_colocation(&self) -> usize {
        let mut counts = vec![0usize; self.processors];
        for i in 0..self.logical {
            counts[self.host_of(i).index()] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_hosts_in_range() {
        let h = Hosting::new(100, 7);
        for i in 0..100 {
            assert!(h.host_of(i).index() < 7);
        }
    }

    #[test]
    fn distinct_when_fewer_nodes_than_processors() {
        for n in [3usize, 8, 17, 64, 81] {
            let nodes = n / 2;
            let h = Hosting::new(nodes, n);
            let mut seen = std::collections::HashSet::new();
            for i in 0..nodes {
                assert!(seen.insert(h.host_of(i)), "collision at {i} (n={n})");
            }
        }
    }

    #[test]
    fn colocation_is_balanced() {
        let h = Hosting::new(100, 10);
        // 100 nodes over 10 processors: perfectly balanced stride -> 10.
        assert_eq!(h.max_colocation(), 10);
    }

    #[test]
    fn single_processor_hosts_everything() {
        let h = Hosting::new(5, 1);
        for i in 0..5 {
            assert_eq!(h.host_of(i), ProcessorId::new(0));
        }
        assert_eq!(h.max_colocation(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let h = Hosting::new(2, 4);
        let _ = h.host_of(2);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = Hosting::new(1, 0);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(5, 0), 5);
    }
}
