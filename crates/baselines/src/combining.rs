//! A software combining tree (Yew-Tzeng-Lawrie 1987 / Goodman-Vernon-Woest
//! 1989), adapted to pure message passing.
//!
//! A binary tree spans the processors. `inc` requests climb toward the
//! root; a node that receives a request opens a short *combining window*
//! (realized as a self-addressed timeout message — the asynchronous
//! analogue of the shared-memory spin-wait): if a second request arrives
//! before the window closes, both are merged into a single upward request
//! carrying their total count. The root allocates a contiguous value range
//! per arriving (possibly combined) request, and grants flow back down,
//! being split according to how the requests were combined.
//!
//! Under the paper's **sequential** workload no two requests are ever in
//! flight together, so nothing combines and the root handles Θ(n)
//! messages — combining trees do not beat the lower bound where it
//! applies. Under concurrent batches, combining halves traffic per level
//! and the root sees O(1) messages per batch; experiment E9 shows both
//! regimes.

use std::collections::HashMap;

use distctr_sim::{
    ConcurrentCounter, Counter, DeliveryPolicy, IncResult, LoadTracker, Network, OpId, Outbox,
    ProcessorId, Protocol, SimError, TraceMode,
};

use crate::hosting::Hosting;

/// Where a granted value range must be delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Directly to an initiating processor (count is always 1).
    Leaf(ProcessorId),
    /// To the tree node that sent the combined request `req`.
    Node {
        /// The node that owns the pending request.
        node: u32,
        /// The pending request id.
        req: u64,
    },
}

/// Messages of the combining-tree protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombiningMsg {
    /// An upward (possibly combined) request for `count` values.
    Join {
        /// Target tree node (heap index).
        node: u32,
        /// Grant routing information.
        reply: Reply,
        /// Number of operations combined in this request.
        count: u32,
    },
    /// Self-addressed end-of-combining-window marker.
    Timeout {
        /// The node whose window closes.
        node: u32,
        /// Window instance, to ignore stale timeouts.
        marker: u64,
    },
    /// A downward grant of `count` values starting at `base` for request
    /// `req`.
    Grant {
        /// The request being answered.
        req: u64,
        /// First value of the granted range.
        base: u64,
    },
    /// Final value delivery to an initiator.
    Value {
        /// The granted value.
        value: u64,
    },
}

#[derive(Debug, Clone)]
struct Window {
    marker: u64,
    parts: Vec<(Reply, u32)>,
}

#[derive(Debug, Clone)]
struct CombiningState {
    /// Number of heap leaves (power of two, >= n).
    m: usize,
    hosting: Hosting,
    /// Open combining window per inner node (heap index 1..m).
    windows: HashMap<u32, Window>,
    /// Outstanding combined requests awaiting grants.
    pending: HashMap<u64, Vec<(Reply, u32)>>,
    next_token: u64,
    value: u64,
    delivered: Vec<(OpId, ProcessorId, u64)>,
    /// Statistics: how many upward requests carried count > 1.
    combined_sends: u64,
    upward_sends: u64,
}

impl CombiningState {
    fn host(&self, node: u32) -> ProcessorId {
        self.hosting.host_of(node as usize - 1)
    }

    fn fresh(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    fn flush(&mut self, out: &mut Outbox<'_, CombiningMsg>, node: u32, parts: Vec<(Reply, u32)>) {
        let total: u32 = parts.iter().map(|&(_, c)| c).sum();
        self.upward_sends += 1;
        if total > 1 || parts.len() > 1 {
            self.combined_sends += 1;
        }
        if node == 1 {
            // The root allocates directly.
            let base = self.value;
            self.value += u64::from(total);
            self.distribute(out, parts, base);
        } else {
            let req = self.fresh();
            let parent = node / 2;
            self.pending.insert(req, parts);
            out.send(
                self.host(parent),
                CombiningMsg::Join { node: parent, reply: Reply::Node { node, req }, count: total },
            );
        }
    }

    fn distribute(
        &mut self,
        out: &mut Outbox<'_, CombiningMsg>,
        parts: Vec<(Reply, u32)>,
        mut base: u64,
    ) {
        for (reply, count) in parts {
            match reply {
                Reply::Leaf(origin) => {
                    debug_assert_eq!(count, 1);
                    out.send(origin, CombiningMsg::Value { value: base });
                }
                Reply::Node { node, req } => {
                    out.send(self.host(node), CombiningMsg::Grant { req, base });
                }
            }
            base += u64::from(count);
        }
    }
}

impl Protocol for CombiningState {
    type Msg = CombiningMsg;

    fn on_deliver(
        &mut self,
        out: &mut Outbox<'_, CombiningMsg>,
        _from: ProcessorId,
        msg: CombiningMsg,
    ) {
        match msg {
            CombiningMsg::Join { node, reply, count } => {
                match self.windows.remove(&node) {
                    None => {
                        // First request: open a window and schedule its
                        // closing timeout (a self-message).
                        let marker = self.fresh();
                        self.windows.insert(node, Window { marker, parts: vec![(reply, count)] });
                        out.send(out.me(), CombiningMsg::Timeout { node, marker });
                    }
                    Some(mut w) => {
                        // Second request before the window closed: combine.
                        w.parts.push((reply, count));
                        let parts = w.parts;
                        self.flush(out, node, parts);
                    }
                }
            }
            CombiningMsg::Timeout { node, marker } => {
                // Close the window if it is still the same instance.
                if self.windows.get(&node).is_some_and(|w| w.marker == marker) {
                    let w = self.windows.remove(&node).expect("checked present");
                    self.flush(out, node, w.parts);
                }
            }
            CombiningMsg::Grant { req, base } => {
                let parts = self.pending.remove(&req).expect("grant matches a pending request");
                self.distribute(out, parts, base);
            }
            CombiningMsg::Value { value } => {
                self.delivered.push((out.op(), out.me(), value));
            }
        }
    }
}

/// A combining-tree distributed counter.
///
/// # Examples
///
/// ```
/// use distctr_baselines::CombiningTreeCounter;
/// use distctr_sim::{ConcurrentCounter, Counter, ProcessorId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut counter = CombiningTreeCounter::new(16)?;
/// assert_eq!(counter.inc(ProcessorId::new(3))?.value, 0);
/// // Concurrent requests combine on their way to the root.
/// let batch: Vec<_> = (4..8).map(ProcessorId::new).collect();
/// let mut values = counter.inc_batch(&batch)?;
/// values.sort_unstable();
/// assert_eq!(values, vec![1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CombiningTreeCounter {
    net: Network<CombiningMsg>,
    state: CombiningState,
    next_op: usize,
}

impl CombiningTreeCounter {
    /// Creates a combining tree over `n` processors (heap width rounded up
    /// to a power of two) with FIFO delivery.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, SimError> {
        Self::with_policy(n, TraceMode::Contacts, DeliveryPolicy::default())
    }

    /// Creates a combining tree with explicit trace mode and delivery
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    pub fn with_policy(
        n: usize,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Self, SimError> {
        if n == 0 {
            return Err(SimError::EmptyNetwork);
        }
        let m = n.next_power_of_two().max(2);
        let net = Network::with_policy(n, trace, policy)?;
        let state = CombiningState {
            m,
            hosting: Hosting::new(m - 1, n),
            windows: HashMap::new(),
            pending: HashMap::new(),
            next_token: 0,
            value: 0,
            delivered: Vec::new(),
            combined_sends: 0,
            upward_sends: 0,
        };
        Ok(CombiningTreeCounter { net, state, next_op: 0 })
    }

    /// The counter's current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.state.value
    }

    /// Fraction of upward requests that carried more than one operation —
    /// the combining rate (0.0 under sequential workloads).
    #[must_use]
    pub fn combining_rate(&self) -> f64 {
        if self.state.upward_sends == 0 {
            0.0
        } else {
            self.state.combined_sends as f64 / self.state.upward_sends as f64
        }
    }

    fn leaf_entry(&self, p: ProcessorId) -> (ProcessorId, CombiningMsg) {
        let heap_leaf = self.state.m as u32 + p.index() as u32;
        let parent = heap_leaf / 2;
        (
            self.state.host(parent),
            CombiningMsg::Join { node: parent, reply: Reply::Leaf(p), count: 1 },
        )
    }

    fn check(&self, p: ProcessorId) -> Result<(), SimError> {
        if p.index() >= self.net.processors() {
            return Err(SimError::UnknownProcessor {
                index: p.index(),
                processors: self.net.processors(),
            });
        }
        Ok(())
    }
}

impl Counter for CombiningTreeCounter {
    fn name(&self) -> &'static str {
        "combining-tree"
    }

    fn processors(&self) -> usize {
        self.net.processors()
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<IncResult, SimError> {
        self.check(initiator)?;
        let op = OpId::new(self.next_op);
        self.next_op += 1;
        self.state.delivered.clear();
        let (to, msg) = self.leaf_entry(initiator);
        self.net.inject(op, initiator, to, msg);
        let stats = self.net.run_to_quiescence(&mut self.state)?;
        let trace = self.net.finish_op(op);
        let (_, _, value) =
            self.state.delivered.pop().expect("initiator must receive a value before quiescence");
        Ok(IncResult { value, messages: stats.delivered, completed_at: stats.end_time, trace })
    }

    fn loads(&self) -> &LoadTracker {
        self.net.loads()
    }
}

impl ConcurrentCounter for CombiningTreeCounter {
    fn inc_batch(&mut self, initiators: &[ProcessorId]) -> Result<Vec<u64>, SimError> {
        for &p in initiators {
            self.check(p)?;
        }
        self.state.delivered.clear();
        let base = self.next_op;
        for (i, &p) in initiators.iter().enumerate() {
            let (to, msg) = self.leaf_entry(p);
            self.net.inject(OpId::new(base + i), p, to, msg);
        }
        self.next_op += initiators.len();
        self.net.run_to_quiescence(&mut self.state)?;
        for i in 0..initiators.len() {
            self.net.finish_op(OpId::new(base + i));
        }
        // Combined/diffracted operations share envelopes, so a value's op
        // id may be a partner's; match replies by initiator instead.
        let mut delivered = std::mem::take(&mut self.state.delivered);
        let mut out = Vec::with_capacity(initiators.len());
        for &p in initiators {
            let pos = delivered
                .iter()
                .position(|&(_, to, _)| to == p)
                .expect("every initiator must receive a value");
            out.push(delivered.swap_remove(pos).2);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_sim::{ConcurrentDriver, SequentialDriver};

    #[test]
    fn sequential_correctness() {
        let mut c = CombiningTreeCounter::new(16).expect("counter");
        let out = SequentialDriver::run_shuffled(&mut c, 2).expect("sequence");
        assert!(out.values_are_sequential());
        assert_eq!(c.value(), 16);
        assert_eq!(c.combining_rate(), 0.0, "sequential ops never combine");
    }

    #[test]
    fn concurrent_batches_combine_and_stay_gap_free() {
        let mut c = CombiningTreeCounter::new(32).expect("counter");
        let values = ConcurrentDriver::run_batches(&mut c, 32, 9).expect("batch");
        assert!(ConcurrentDriver::values_are_gap_free(&values));
        assert!(
            c.combining_rate() > 0.3,
            "full batch should combine heavily: rate {}",
            c.combining_rate()
        );
    }

    #[test]
    fn combining_reduces_root_traffic() {
        // Same 32 ops: sequentially the root sees one request per op;
        // in one concurrent batch it sees O(1).
        let root_host_load = |mut c: CombiningTreeCounter, batch: usize| {
            ConcurrentDriver::run_batches(&mut c, batch, 5).expect("run");
            let root_host = c.state.host(1);
            c.loads().load_of(root_host)
        };
        let seq = root_host_load(CombiningTreeCounter::new(32).expect("c"), 1);
        let conc = root_host_load(CombiningTreeCounter::new(32).expect("c"), 32);
        assert!(
            conc * 2 < seq,
            "combining must cut root-host traffic: sequential {seq}, concurrent {conc}"
        );
    }

    #[test]
    fn non_power_of_two_and_tiny_networks() {
        for n in [1usize, 2, 3, 5, 12] {
            let mut c = CombiningTreeCounter::new(n).expect("counter");
            let out = SequentialDriver::run_identity(&mut c).expect("sequence");
            assert!(out.values_are_sequential(), "n={n}");
        }
    }

    #[test]
    fn stale_timeouts_are_ignored() {
        // A full batch triggers immediate combines; the windows' timeouts
        // arrive after flushing and must be no-ops. If they were not, the
        // value space would be double-allocated and gap-freedom broken.
        let mut c = CombiningTreeCounter::new(8).expect("counter");
        let batch: Vec<_> = (0..8).map(ProcessorId::new).collect();
        let values = c.inc_batch(&batch).expect("batch");
        assert!(ConcurrentDriver::values_are_gap_free(&values));
        assert_eq!(c.value(), 8, "exactly 8 values allocated");
    }

    #[test]
    fn works_under_every_delivery_policy() {
        for policy in DeliveryPolicy::test_suite() {
            let mut c =
                CombiningTreeCounter::with_policy(8, TraceMode::Contacts, policy).expect("counter");
            let out = SequentialDriver::run_shuffled(&mut c, 3).expect("sequence");
            assert!(out.values_are_sequential());
            let batch: Vec<_> = (0..8).map(ProcessorId::new).collect();
            let values = c.inc_batch(&batch).expect("batch");
            let mut sorted = values.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (8..16).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn unknown_initiator_rejected() {
        let mut c = CombiningTreeCounter::new(4).expect("counter");
        assert!(c.inc(ProcessorId::new(9)).is_err());
        assert!(c.inc_batch(&[ProcessorId::new(9)]).is_err());
    }
}
