//! A counting-network distributed counter (Aspnes-Herlihy-Shavit).
//!
//! Balancers of a [`BitonicNetwork`] are
//! hosted on processors; an `inc` injects a token on entry wire
//! `initiator mod w`, the token traverses `O(log^2 w)` balancers, and the
//! exit counter at rank `r` hands out values `r, r + w, r + 2w, ...`.
//!
//! Counting networks trade per-operation message count (network depth)
//! for low contention: no single balancer sees more than a `1/w` fraction
//! of traffic deep in the network. They are *quiescently consistent*
//! (gap-free after quiescence) but not linearizable; under the paper's
//! sequential model they count exactly.

use distctr_sim::{
    CompletedOp, ConcurrentCounter, Counter, DeliveryPolicy, IncResult, LoadTracker, Network, OpId,
    Outbox, OverlappedCounter, ProcessorId, Protocol, SimError, SimTime, TraceMode,
};

use crate::bitonic::BitonicNetwork;
use crate::hosting::Hosting;

/// Messages of the counting-network protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountingMsg {
    /// A token headed for balancer `balancer`.
    Token {
        /// Target balancer id.
        balancer: u32,
        /// Initiator (reply address).
        origin: ProcessorId,
    },
    /// A token that cleared the last balancer on its wire, headed for the
    /// exit counter of `wire`.
    ExitToken {
        /// Physical exit wire.
        wire: u32,
        /// Initiator (reply address).
        origin: ProcessorId,
    },
    /// Value delivery to the initiator.
    Value {
        /// The assigned value.
        value: u64,
    },
}

#[derive(Debug, Clone)]
struct CountingState {
    network: BitonicNetwork,
    hosting: Hosting,
    toggles: Vec<bool>,
    /// Tokens seen per exit wire (indexed by wire).
    visits: Vec<u64>,
    delivered: Vec<(OpId, ProcessorId, u64)>,
}

impl CountingState {
    fn balancer_host(&self, b: u32) -> ProcessorId {
        self.hosting.host_of(b as usize)
    }

    fn exit_host(&self, wire: u32) -> ProcessorId {
        self.hosting.host_of(self.network.balancer_count() + wire as usize)
    }

    fn forward(
        &mut self,
        out: &mut Outbox<'_, CountingMsg>,
        wire: usize,
        after: u32,
        origin: ProcessorId,
    ) {
        match self.network.next_on_wire(wire, after) {
            Some(next) => {
                out.send(self.balancer_host(next), CountingMsg::Token { balancer: next, origin })
            }
            None => out.send(
                self.exit_host(wire as u32),
                CountingMsg::ExitToken { wire: wire as u32, origin },
            ),
        }
    }
}

impl Protocol for CountingState {
    type Msg = CountingMsg;

    fn on_deliver(
        &mut self,
        out: &mut Outbox<'_, CountingMsg>,
        _from: ProcessorId,
        msg: CountingMsg,
    ) {
        match msg {
            CountingMsg::Token { balancer, origin } => {
                let bal = self.network.balancer(balancer);
                let toggle = &mut self.toggles[balancer as usize];
                let wire = if *toggle { bal.bottom } else { bal.top };
                *toggle = !*toggle;
                self.forward(out, wire, balancer, origin);
            }
            CountingMsg::ExitToken { wire, origin } => {
                let rank = self.network.exit_rank(wire as usize) as u64;
                let w = self.network.width() as u64;
                let value = rank + w * self.visits[wire as usize];
                self.visits[wire as usize] += 1;
                out.send(origin, CountingMsg::Value { value });
            }
            CountingMsg::Value { value } => {
                self.delivered.push((out.op(), out.me(), value));
            }
        }
    }
}

/// A distributed counter backed by a bitonic counting network.
///
/// # Examples
///
/// ```
/// use distctr_baselines::CountingNetworkCounter;
/// use distctr_sim::{Counter, ProcessorId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut counter = CountingNetworkCounter::new(16, 4)?;
/// assert_eq!(counter.inc(ProcessorId::new(7))?.value, 0);
/// assert_eq!(counter.inc(ProcessorId::new(2))?.value, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CountingNetworkCounter {
    net: Network<CountingMsg>,
    state: CountingState,
    next_op: usize,
    overlapped: Vec<(OpId, ProcessorId)>,
}

impl CountingNetworkCounter {
    /// Creates a counter on `n` processors over a `Bitonic[width]`
    /// network with FIFO delivery.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or not a power of two (see
    /// [`BitonicNetwork::new`]).
    pub fn new(n: usize, width: usize) -> Result<Self, SimError> {
        Self::with_policy(n, width, TraceMode::Contacts, DeliveryPolicy::default())
    }

    /// Creates a counter with explicit trace mode and delivery policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two.
    pub fn with_policy(
        n: usize,
        width: usize,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Self, SimError> {
        let network = BitonicNetwork::new(width);
        let net = Network::with_policy(n, trace, policy)?;
        let hosting = Hosting::new(network.balancer_count() + width, n);
        let toggles = vec![false; network.balancer_count()];
        let visits = vec![0; width];
        Ok(CountingNetworkCounter {
            net,
            state: CountingState { network, hosting, toggles, visits, delivered: Vec::new() },
            next_op: 0,
            overlapped: Vec::new(),
        })
    }

    /// The network width `w`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.state.network.width()
    }

    /// Exit counts by rank (for step-property checks).
    #[must_use]
    pub fn exit_counts_by_rank(&self) -> Vec<u64> {
        let w = self.width();
        let mut by_rank = vec![0u64; w];
        for wire in 0..w {
            by_rank[self.state.network.exit_rank(wire)] = self.state.visits[wire];
        }
        by_rank
    }

    fn entry(&self, p: ProcessorId) -> (ProcessorId, CountingMsg) {
        let wire = p.index() % self.width();
        match self.state.network.entry(wire) {
            Some(b) => (self.state.balancer_host(b), CountingMsg::Token { balancer: b, origin: p }),
            None => (
                self.state.exit_host(wire as u32),
                CountingMsg::ExitToken { wire: wire as u32, origin: p },
            ),
        }
    }

    fn check(&self, p: ProcessorId) -> Result<(), SimError> {
        if p.index() >= self.net.processors() {
            return Err(SimError::UnknownProcessor {
                index: p.index(),
                processors: self.net.processors(),
            });
        }
        Ok(())
    }
}

impl Counter for CountingNetworkCounter {
    fn name(&self) -> &'static str {
        "counting-network"
    }

    fn processors(&self) -> usize {
        self.net.processors()
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<IncResult, SimError> {
        self.check(initiator)?;
        let op = OpId::new(self.next_op);
        self.next_op += 1;
        self.state.delivered.clear();
        let (to, msg) = self.entry(initiator);
        self.net.inject(op, initiator, to, msg);
        let stats = self.net.run_to_quiescence(&mut self.state)?;
        let trace = self.net.finish_op(op);
        let (_, _, value) =
            self.state.delivered.pop().expect("token must exit and deliver a value");
        Ok(IncResult { value, messages: stats.delivered, completed_at: stats.end_time, trace })
    }

    fn loads(&self) -> &LoadTracker {
        self.net.loads()
    }
}

impl ConcurrentCounter for CountingNetworkCounter {
    fn inc_batch(&mut self, initiators: &[ProcessorId]) -> Result<Vec<u64>, SimError> {
        for &p in initiators {
            self.check(p)?;
        }
        self.state.delivered.clear();
        let base = self.next_op;
        for (i, &p) in initiators.iter().enumerate() {
            let (to, msg) = self.entry(p);
            self.net.inject(OpId::new(base + i), p, to, msg);
        }
        self.next_op += initiators.len();
        self.net.run_to_quiescence(&mut self.state)?;
        for i in 0..initiators.len() {
            self.net.finish_op(OpId::new(base + i));
        }
        let delivered = std::mem::take(&mut self.state.delivered);
        let by_op: std::collections::HashMap<OpId, u64> =
            delivered.into_iter().map(|(op, _, v)| (op, v)).collect();
        Ok((0..initiators.len()).map(|i| by_op[&OpId::new(base + i)]).collect())
    }
}

impl OverlappedCounter for CountingNetworkCounter {
    fn start_inc(&mut self, initiator: ProcessorId) -> Result<OpId, SimError> {
        self.check(initiator)?;
        let op = OpId::new(self.next_op);
        self.next_op += 1;
        self.overlapped.push((op, initiator));
        let (to, msg) = self.entry(initiator);
        self.net.inject(op, initiator, to, msg);
        Ok(op)
    }

    fn advance_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        self.net.run_until(&mut self.state, deadline)?;
        Ok(())
    }

    fn finish_all(&mut self) -> Result<Vec<CompletedOp>, SimError> {
        self.net.run_to_quiescence(&mut self.state)?;
        let delivered = std::mem::take(&mut self.state.delivered);
        let by_op: std::collections::HashMap<OpId, u64> =
            delivered.into_iter().map(|(op, _, v)| (op, v)).collect();
        let mut completed = Vec::new();
        for (op, initiator) in std::mem::take(&mut self.overlapped) {
            let trace = self
                .net
                .finish_op(op)
                .expect("overlapped execution requires per-op tracing (TraceMode::Contacts)");
            completed.push(CompletedOp {
                op,
                initiator,
                value: by_op[&op],
                started_at: trace.started_at,
                completed_at: trace.completed_at,
            });
        }
        Ok(completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitonic::has_step_property;
    use distctr_sim::{ConcurrentDriver, SequentialDriver};

    #[test]
    fn sequential_correctness_any_width() {
        for width in [2usize, 4, 8] {
            let mut c = CountingNetworkCounter::new(16, width).expect("counter");
            let out = SequentialDriver::run_shuffled(&mut c, 4).expect("sequence");
            assert!(out.values_are_sequential(), "width {width}");
        }
    }

    #[test]
    fn per_op_cost_is_network_depth() {
        let mut c = CountingNetworkCounter::new(16, 8).expect("counter");
        let r = c.inc(ProcessorId::new(0)).expect("inc");
        // depth(Bitonic[8]) = 6 balancer hops + exit hop + value reply.
        assert_eq!(r.messages, 6 + 1 + 1);
    }

    #[test]
    fn concurrent_batches_are_gap_free_and_stepped() {
        let mut c = CountingNetworkCounter::new(32, 8).expect("counter");
        let values = ConcurrentDriver::run_batches(&mut c, 16, 11).expect("batches");
        assert!(ConcurrentDriver::values_are_gap_free(&values));
        assert!(has_step_property(&c.exit_counts_by_rank()));
    }

    #[test]
    fn step_property_under_every_policy() {
        for policy in DeliveryPolicy::test_suite() {
            let mut c = CountingNetworkCounter::with_policy(16, 4, TraceMode::Off, policy)
                .expect("counter");
            let batch: Vec<_> = (0..16).map(ProcessorId::new).collect();
            let values = c.inc_batch(&batch).expect("batch");
            assert!(ConcurrentDriver::values_are_gap_free(&values));
            assert!(has_step_property(&c.exit_counts_by_rank()));
        }
    }

    #[test]
    fn contention_spreads_across_balancer_hosts() {
        // With w = 16 over n = 64 processors, no host should handle a
        // constant fraction of all messages once the batch is large.
        let mut c = CountingNetworkCounter::new(64, 16).expect("counter");
        for round in 0..4 {
            let batch: Vec<_> = (0..64).map(ProcessorId::new).collect();
            c.inc_batch(&batch).unwrap_or_else(|_| panic!("round {round}"));
        }
        let total = c.loads().total_messages();
        let max = c.loads().max_load();
        assert!(
            (max as f64) < 0.25 * total as f64,
            "no single host dominates: max {max} of {total}"
        );
    }

    #[test]
    fn width_one_network_is_a_central_counter() {
        let mut c = CountingNetworkCounter::new(4, 1).expect("counter");
        let out = SequentialDriver::run_identity(&mut c).expect("sequence");
        assert!(out.values_are_sequential());
    }

    #[test]
    fn unknown_initiator_rejected() {
        let mut c = CountingNetworkCounter::new(4, 2).expect("counter");
        assert!(c.inc(ProcessorId::new(9)).is_err());
    }
}
