//! The static communication tree — the paper's tree *without* retirement.
//!
//! This is the ablation that isolates the retirement mechanism's
//! contribution: identical topology, identical routing, but the root's
//! initial worker answers every single operation, so its load is Θ(n)
//! just like the centralized counter (with extra per-op messages for the
//! tree climb on top).

use distctr_core::{CoreError, RetirementPolicy, TreeCounter, TreeCounterBuilder};
use distctr_sim::{
    Counter, DeliveryPolicy, IncResult, LoadTracker, ProcessorId, SimError, TraceMode,
};

/// The paper's communication tree with retirement disabled.
///
/// # Examples
///
/// ```
/// use distctr_baselines::StaticTreeCounter;
/// use distctr_sim::{Counter, ProcessorId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut counter = StaticTreeCounter::new(81)?;
/// assert_eq!(counter.inc(ProcessorId::new(9))?.value, 0);
/// assert_eq!(counter.name(), "static-tree");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StaticTreeCounter {
    inner: TreeCounter,
}

impl StaticTreeCounter {
    /// Creates a static tree for at least `n` processors (rounded up to
    /// `k^(k+1)` like [`TreeCounter::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] under the same conditions as
    /// [`TreeCounter::new`].
    pub fn new(n: usize) -> Result<Self, CoreError> {
        Self::with_policy(n, TraceMode::Contacts, DeliveryPolicy::default())
    }

    /// Creates a static tree with explicit trace mode and delivery policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] under the same conditions as
    /// [`TreeCounter::new`].
    pub fn with_policy(
        n: usize,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Self, CoreError> {
        let builder: TreeCounterBuilder = TreeCounter::builder(n)?
            .trace(trace)
            .delivery(policy)
            .retirement(RetirementPolicy::Never);
        Ok(StaticTreeCounter { inner: builder.build()? })
    }

    /// The underlying tree counter (for topology and audit access).
    #[must_use]
    pub fn tree(&self) -> &TreeCounter {
        &self.inner
    }

    /// The tree order `k`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.inner.order()
    }
}

impl Counter for StaticTreeCounter {
    fn name(&self) -> &'static str {
        "static-tree"
    }

    fn processors(&self) -> usize {
        self.inner.processors()
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<IncResult, SimError> {
        self.inner.inc(initiator)
    }

    fn loads(&self) -> &LoadTracker {
        self.inner.loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_sim::SequentialDriver;

    #[test]
    fn counts_correctly_but_root_bottlenecked() {
        let mut c = StaticTreeCounter::new(81).expect("static tree");
        let out = SequentialDriver::run_identity(&mut c).expect("sequence");
        assert!(out.values_are_sequential());
        // Root worker: 1 receive + 1 send per op = 2n, plus its own leaf
        // and level-1 duties.
        let n = c.processors() as u64;
        assert!(c.loads().max_load() >= 2 * n, "static root is a Θ(n) hot spot");
        assert_eq!(c.tree().audit().stints_completed(), 0);
    }

    #[test]
    fn per_op_message_cost_is_tree_height() {
        let mut c = StaticTreeCounter::new(81).expect("static tree");
        let r = c.inc(ProcessorId::new(40)).expect("inc");
        // Climb k+1 hops (leaf -> level k ... -> root) + 1 value reply.
        assert_eq!(r.messages, (c.order() as u64 + 1) + 1);
    }

    #[test]
    fn exposes_topology() {
        let c = StaticTreeCounter::new(8).expect("static tree");
        assert_eq!(c.order(), 2);
        assert_eq!(c.tree().topology().processors(), 8);
    }
}
