//! A mobile-token counter on the Arrow protocol (Raymond / Demmer-Herlihy
//! style path reversal).
//!
//! The opposite design philosophy to every other baseline: instead of
//! sending requests to where the value lives, **move the value to the
//! requester**. Processors form a fixed spanning tree; each keeps one
//! *arrow* pointing toward the current token holder. An `inc` sends a
//! `Find` along the arrows, reversing them as it goes (so they end up
//! pointing at the requester), and the holder ships the token — carrying
//! the counter value — straight back to the requester, who increments
//! locally.
//!
//! Per-operation cost is one tree path (O(log n) on a balanced tree);
//! repeated access by nearby processors is nearly free. But the paper's
//! theorem still bites: find paths between random consecutive initiators
//! cross the spanning tree's upper edges about half the time, so the
//! tree-root processor's load is Θ(n) over the canonical workload — a
//! hot spot again, just a routing one instead of a storage one.

use rand::Rng;
use rand::SeedableRng;

use distctr_sim::{
    Counter, DeliveryPolicy, IncResult, LoadTracker, Network, OpId, Outbox, ProcessorId, Protocol,
    SimError, TraceMode,
};

/// The fixed spanning tree the arrows live on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanningTree {
    /// Balanced binary heap tree (`parent(i) = (i-1)/2`): O(log n) paths.
    #[default]
    Heap,
    /// Star centered on processor 0: 2-hop paths, maximal center load.
    Star,
    /// A path 0-1-2-...-(n-1): up to Θ(n)-hop finds.
    Path,
    /// A random recursive tree (each node's parent drawn uniformly among
    /// earlier nodes).
    Random(
        /// Construction seed.
        u64,
    ),
}

impl SpanningTree {
    /// The parent of node `i > 0` under this tree shape.
    fn parent(self, i: usize, rng: &mut rand::rngs::StdRng) -> usize {
        match self {
            SpanningTree::Heap => (i - 1) / 2,
            SpanningTree::Star => 0,
            SpanningTree::Path => i - 1,
            SpanningTree::Random(_) => rng.gen_range(0..i),
        }
    }

    /// A short stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanningTree::Heap => "heap",
            SpanningTree::Star => "star",
            SpanningTree::Path => "path",
            SpanningTree::Random(_) => "random",
        }
    }
}

/// Messages of the Arrow counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrowMsg {
    /// A token request travelling along (and reversing) the arrows.
    Find {
        /// The requesting processor (token destination).
        origin: ProcessorId,
    },
    /// The token, carrying the pre-increment counter value.
    Token {
        /// The counter value at handover.
        value: u64,
    },
}

/// Where a processor's arrow points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arrow {
    /// This processor holds (or is about to hold) the token.
    Holder,
    /// The token is somewhere beyond this tree neighbour.
    Toward(ProcessorId),
}

#[derive(Debug, Clone)]
struct ArrowState {
    arrows: Vec<Arrow>,
    /// The token: its holder's pending value (exactly one `Some` at
    /// quiescence).
    token: Vec<Option<u64>>,
    delivered: Vec<(OpId, ProcessorId, u64)>,
    /// Longest find path seen (diagnostics).
    longest_path: u64,
    current_path: u64,
}

impl Protocol for ArrowState {
    type Msg = ArrowMsg;

    fn on_deliver(&mut self, out: &mut Outbox<'_, ArrowMsg>, from: ProcessorId, msg: ArrowMsg) {
        match msg {
            ArrowMsg::Find { origin } => {
                self.current_path += 1;
                let me = out.me().index();
                let previous = self.arrows[me];
                // Path reversal: my arrow now points back toward the
                // requester's side.
                self.arrows[me] = Arrow::Toward(from);
                match previous {
                    Arrow::Holder => {
                        let value = self.token[me].take().expect("holder carries the token value");
                        self.longest_path = self.longest_path.max(self.current_path);
                        self.current_path = 0;
                        out.send(origin, ArrowMsg::Token { value });
                    }
                    Arrow::Toward(next) => {
                        out.send(next, ArrowMsg::Find { origin });
                    }
                }
            }
            ArrowMsg::Token { value } => {
                let me = out.me().index();
                self.arrows[me] = Arrow::Holder;
                self.token[me] = Some(value + 1);
                self.delivered.push((out.op(), out.me(), value));
            }
        }
    }
}

/// A distributed counter whose value rides a mobile token over a balanced
/// binary spanning tree with Arrow path reversal.
///
/// # Examples
///
/// ```
/// use distctr_baselines::ArrowCounter;
/// use distctr_sim::{Counter, ProcessorId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut counter = ArrowCounter::new(8)?;
/// assert_eq!(counter.inc(ProcessorId::new(5))?.value, 0);
/// assert_eq!(counter.inc(ProcessorId::new(5))?.value, 1); // local hit: 0 messages
/// assert_eq!(counter.inc(ProcessorId::new(2))?.value, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ArrowCounter {
    net: Network<ArrowMsg>,
    state: ArrowState,
    next_op: usize,
}

impl ArrowCounter {
    /// Creates an Arrow counter over `n` processors; processor 0 holds
    /// the token initially, arrows point along the heap spanning tree
    /// toward it. FIFO delivery.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, SimError> {
        Self::with_policy(n, TraceMode::Contacts, DeliveryPolicy::default())
    }

    /// Creates an Arrow counter with explicit trace mode and delivery
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    pub fn with_policy(
        n: usize,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Self, SimError> {
        Self::with_tree(n, SpanningTree::Heap, trace, policy)
    }

    /// Creates an Arrow counter over an explicit spanning-tree shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if `n == 0`.
    pub fn with_tree(
        n: usize,
        tree: SpanningTree,
        trace: TraceMode,
        policy: DeliveryPolicy,
    ) -> Result<Self, SimError> {
        let net = Network::with_policy(n, trace, policy)?;
        let seed = if let SpanningTree::Random(seed) = tree { seed } else { 0 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Arrows point along the tree toward processor 0, the initial
        // token holder.
        let arrows = (0..n)
            .map(|i| {
                if i == 0 {
                    Arrow::Holder
                } else {
                    Arrow::Toward(ProcessorId::new(tree.parent(i, &mut rng)))
                }
            })
            .collect();
        let mut token = vec![None; n];
        token[0] = Some(0);
        Ok(ArrowCounter {
            net,
            state: ArrowState {
                arrows,
                token,
                delivered: Vec::new(),
                longest_path: 0,
                current_path: 0,
            },
            next_op: 0,
        })
    }

    /// The processor currently holding the token.
    #[must_use]
    pub fn holder(&self) -> ProcessorId {
        let idx = self
            .state
            .token
            .iter()
            .position(Option::is_some)
            .expect("exactly one token holder at quiescence");
        ProcessorId::new(idx)
    }

    /// Longest find path (in tree hops) observed so far.
    #[must_use]
    pub fn longest_find_path(&self) -> u64 {
        self.state.longest_path
    }
}

impl Counter for ArrowCounter {
    fn name(&self) -> &'static str {
        "arrow-token"
    }

    fn processors(&self) -> usize {
        self.net.processors()
    }

    fn inc(&mut self, initiator: ProcessorId) -> Result<IncResult, SimError> {
        if initiator.index() >= self.net.processors() {
            return Err(SimError::UnknownProcessor {
                index: initiator.index(),
                processors: self.net.processors(),
            });
        }
        let me = initiator.index();
        if self.state.arrows[me] == Arrow::Holder {
            // Local hit: the token is already here; no messages at all.
            let value = self.state.token[me].take().expect("holder has the token");
            self.state.token[me] = Some(value + 1);
            self.next_op += 1;
            return Ok(IncResult { value, messages: 0, completed_at: self.net.now(), trace: None });
        }
        let op = OpId::new(self.next_op);
        self.next_op += 1;
        self.state.delivered.clear();
        // Reverse the initiator's own arrow and launch the find.
        let Arrow::Toward(next) = self.state.arrows[me] else { unreachable!("checked above") };
        self.state.arrows[me] = Arrow::Holder;
        self.net.inject(op, initiator, next, ArrowMsg::Find { origin: initiator });
        let stats = self.net.run_to_quiescence(&mut self.state)?;
        let trace = self.net.finish_op(op);
        let (_, _, value) = self.state.delivered.pop().expect("token must reach the initiator");
        Ok(IncResult { value, messages: stats.delivered, completed_at: stats.end_time, trace })
    }

    fn loads(&self) -> &LoadTracker {
        self.net.loads()
    }
}

/// Internal invariant check used by tests: every arrow chain leads to the
/// holder (no cycles, no dead ends).
#[cfg(test)]
fn arrows_converge(counter: &ArrowCounter) -> bool {
    let n = counter.processors();
    let holder = counter.holder();
    for start in 0..n {
        let mut at = start;
        let mut hops = 0usize;
        loop {
            match counter.state.arrows[at] {
                Arrow::Holder => break,
                Arrow::Toward(next) => {
                    at = next.index();
                    hops += 1;
                    if hops > n {
                        return false; // cycle
                    }
                }
            }
        }
        if ProcessorId::new(at) != holder {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use distctr_sim::SequentialDriver;

    #[test]
    fn sequential_correctness_and_token_migration() {
        let mut c = ArrowCounter::new(16).expect("arrow");
        let out = SequentialDriver::run_shuffled(&mut c, 8).expect("sequence");
        assert!(out.values_are_sequential());
        // The token ends up with the last initiator.
        assert!(arrows_converge(&c), "arrows all lead to the holder");
    }

    #[test]
    fn local_hits_cost_zero_messages() {
        let mut c = ArrowCounter::new(8).expect("arrow");
        let r1 = c.inc(ProcessorId::new(3)).expect("inc");
        let before = c.loads().total_messages();
        let r2 = c.inc(ProcessorId::new(3)).expect("inc");
        assert_eq!(r2.value, r1.value + 1);
        assert_eq!(r2.messages, 0);
        assert_eq!(c.loads().total_messages(), before, "no traffic for a local hit");
        assert_eq!(c.holder(), ProcessorId::new(3));
    }

    #[test]
    fn find_paths_are_tree_bounded() {
        let mut c = ArrowCounter::new(64).expect("arrow");
        SequentialDriver::run_shuffled(&mut c, 5).expect("sequence");
        // Balanced binary tree over 64 nodes: diameter ~ 2*log2(64) = 12;
        // a find path can traverse at most diameter+1 edges.
        assert!(c.longest_find_path() <= 13, "path {} within tree diameter", c.longest_find_path());
    }

    #[test]
    fn arrows_always_converge_under_every_policy() {
        for policy in DeliveryPolicy::test_suite() {
            let mut c = ArrowCounter::with_policy(16, TraceMode::Off, policy).expect("arrow");
            let out = SequentialDriver::run_shuffled(&mut c, 11).expect("sequence");
            assert!(out.values_are_sequential());
            assert!(arrows_converge(&c));
        }
    }

    #[test]
    fn canonical_workload_has_a_routing_hot_spot() {
        // The paper's theorem in action on a very different design: the
        // spanning-tree root (P0) relays a constant fraction of finds.
        let mut c = ArrowCounter::new(64).expect("arrow");
        SequentialDriver::run_shuffled(&mut c, 9).expect("sequence");
        let bottleneck = c.loads().max_load();
        assert!(bottleneck >= 3, "lower bound k(64) = 2 comfortably cleared: {bottleneck}");
        // Much better than central's 2n, but still growing with n (see
        // the E2 sweep); here we just pin that it's a real hot spot, well
        // above the average load.
        let avg = c.loads().average_load();
        assert!(bottleneck as f64 > 3.0 * avg, "hot spot: max {bottleneck} vs avg {avg:.1}");
    }

    #[test]
    fn unknown_initiator_rejected() {
        let mut c = ArrowCounter::new(4).expect("arrow");
        assert!(c.inc(ProcessorId::new(7)).is_err());
    }

    #[test]
    fn all_spanning_trees_count_correctly() {
        for tree in
            [SpanningTree::Heap, SpanningTree::Star, SpanningTree::Path, SpanningTree::Random(5)]
        {
            let mut c = ArrowCounter::with_tree(32, tree, TraceMode::Off, DeliveryPolicy::Fifo)
                .expect("arrow");
            let out = SequentialDriver::run_shuffled(&mut c, 13).expect("sequence");
            assert!(out.values_are_sequential(), "{}", tree.name());
            assert!(arrows_converge(&c), "{}", tree.name());
        }
    }

    #[test]
    fn topology_shapes_the_cost_profile() {
        let run = |tree: SpanningTree| {
            let mut c = ArrowCounter::with_tree(64, tree, TraceMode::Off, DeliveryPolicy::Fifo)
                .expect("arrow");
            SequentialDriver::run_shuffled(&mut c, 21).expect("sequence");
            (c.loads().total_messages(), c.loads().max_load(), c.longest_find_path())
        };
        let (star_msgs, star_max, star_path) = run(SpanningTree::Star);
        let (path_msgs, _path_max, path_path) = run(SpanningTree::Path);
        let (heap_msgs, _heap_max, heap_path) = run(SpanningTree::Heap);
        // Star: every find is at most 2 hops; the center relays nearly
        // everything.
        assert!(star_path <= 2, "star diameter: {star_path}");
        assert!(star_max as f64 > 0.5 * star_msgs as f64, "center relays most traffic");
        // Path trees pay far more messages than heaps; heaps more than
        // stars' totals.
        assert!(path_path > heap_path, "path trees have longer finds");
        assert!(path_msgs > heap_msgs, "path trees cost more total messages");
        assert!(heap_path <= 13, "heap diameter bound");
    }

    #[test]
    fn single_processor_counts_locally() {
        let mut c = ArrowCounter::new(1).expect("arrow");
        for i in 0..5 {
            assert_eq!(c.inc(ProcessorId::new(0)).expect("inc").value, i);
        }
        assert_eq!(c.loads().total_messages(), 0);
    }
}
