//! Property-based tests over the baseline substrates.

use distctr_baselines::{
    has_step_property, BitonicNetwork, CombiningTreeCounter, CountingNetworkCounter,
    DiffractingTreeCounter, Hosting,
};
use distctr_sim::{ConcurrentDriver, Counter, DeliveryPolicy, ProcessorId, TraceMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bitonic_step_property_for_any_entry_multiset(
        width_exp in 1u32..5,
        entries in prop::collection::vec(0usize..64, 0..200),
    ) {
        let width = 1usize << width_exp;
        let net = BitonicNetwork::new(width);
        let entries: Vec<usize> = entries.into_iter().map(|e| e % width).collect();
        let counts = net.simulate_counts(&entries);
        prop_assert!(has_step_property(&counts), "width {width}: {counts:?}");
        prop_assert_eq!(counts.iter().sum::<u64>(), entries.len() as u64);
    }

    #[test]
    fn bitonic_sequential_tokens_exit_round_robin(
        width_exp in 1u32..5,
        m in 1usize..80,
        entry_seed in any::<u64>(),
    ) {
        // Whatever wires sequential tokens enter on, the i-th token exits
        // at rank i mod w — the counting property.
        let width = 1usize << width_exp;
        let net = BitonicNetwork::new(width);
        let mut toggles = vec![false; net.balancer_count()];
        let mut x = entry_seed;
        for i in 0..m {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut wire = (x >> 33) as usize % width;
            let mut next = net.entry(wire);
            while let Some(b) = next {
                let bal = net.balancer(b);
                wire = if toggles[b as usize] { bal.bottom } else { bal.top };
                toggles[b as usize] = !toggles[b as usize];
                next = net.next_on_wire(wire, b);
            }
            prop_assert_eq!(net.exit_rank(wire), i % width, "token {} of width {}", i, width);
        }
    }

    #[test]
    fn combining_tree_gap_free_for_any_batching(
        n in 2usize..40,
        batch in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut c = CombiningTreeCounter::new(n).expect("combining");
        let values = ConcurrentDriver::run_batches(&mut c, batch, seed).expect("runs");
        prop_assert!(ConcurrentDriver::values_are_gap_free(&values));
        prop_assert_eq!(values.len(), n);
    }

    #[test]
    fn diffracting_tree_exit_spread_for_any_batching(
        depth in 0u32..4,
        batch in 1usize..33,
        seed in any::<u64>(),
    ) {
        let mut c = DiffractingTreeCounter::new(32, depth).expect("diffracting");
        let values = ConcurrentDriver::run_batches(&mut c, batch, seed).expect("runs");
        prop_assert!(ConcurrentDriver::values_are_gap_free(&values));
        let counts = c.exit_counts();
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "balanced exits: {counts:?}");
    }

    #[test]
    fn counting_network_correct_under_random_delays(
        width_exp in 1u32..4,
        seed in any::<u64>(),
        max_delay in 1u64..12,
    ) {
        let width = 1usize << width_exp;
        let mut c = CountingNetworkCounter::with_policy(
            16,
            width,
            TraceMode::Off,
            DeliveryPolicy::random_delay(seed, max_delay),
        )
        .expect("counting");
        for i in 0..16u64 {
            let r = c.inc(ProcessorId::new((i % 16) as usize)).expect("inc");
            prop_assert_eq!(r.value, i, "sequential ops count exactly");
        }
    }

    // --- step-sequential equivalence: simulated baselines vs. the
    // --- real-atomics implementations in distctr-shm. Driven one token
    // --- at a time, the hardware structures must be *indistinguishable*
    // --- from the message-model simulations they were ported from.

    #[test]
    fn atomic_bitonic_exit_counts_match_the_simulated_network(
        width_exp in 1u32..5,
        entries in prop::collection::vec(0usize..64, 0..200),
    ) {
        let width = 1usize << width_exp;
        let net = BitonicNetwork::new(width);
        let atomic = distctr_shm::AtomicBitonicCounter::new(width);
        let entries: Vec<usize> = entries.into_iter().map(|e| e % width).collect();
        for &e in &entries {
            let _ = atomic.inc_on(e);
        }
        let simulated = net.simulate_counts(&entries);
        prop_assert_eq!(
            atomic.exit_counts(),
            simulated,
            "same wiring, same entry multiset, same exit distribution"
        );
        prop_assert_eq!(atomic.issued(), entries.len() as u64);
    }

    #[test]
    fn atomic_bitonic_ith_sequential_token_counts_i(
        width_exp in 1u32..5,
        m in 1usize..80,
        entry_seed in any::<u64>(),
    ) {
        // The atomic port of the counting property the toggle-vector
        // test above pins for the simulation: whatever wires sequential
        // tokens enter on, the i-th token's *value* is i.
        let width = 1usize << width_exp;
        let atomic = distctr_shm::AtomicBitonicCounter::new(width);
        let mut x = entry_seed;
        for i in 0..m as u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let wire = (x >> 33) as usize % width;
            prop_assert_eq!(atomic.inc_on(wire), i, "token {} of width {}", i, width);
        }
    }

    #[test]
    fn atomic_combining_and_simulated_combining_agree_on_the_multiset(
        n in 2usize..=64,
        batch in 1usize..40,
        seed in any::<u64>(),
    ) {
        // Both combining counters — the message-model tree and the
        // flat-combining cell — must hand the same n callers the same
        // value multiset 0..n, whatever the batching.
        let mut sim = CombiningTreeCounter::new(n).expect("combining");
        let mut sim_values = ConcurrentDriver::run_batches(&mut sim, batch, seed).expect("runs");
        sim_values.sort_unstable();
        let atomic = distctr_shm::FlatCombiningCounter::new(n);
        let mut atomic_values: Vec<u64> = (0..n).map(|t| atomic.inc_shared(t)).collect();
        atomic_values.sort_unstable();
        prop_assert_eq!(sim_values, atomic_values);
    }

    #[test]
    fn hosting_covers_all_processors_when_enough_nodes(
        processors in 1usize..64,
        extra in 0usize..4,
    ) {
        // With logical >= processors and a coprime stride, every
        // processor hosts something.
        let logical = processors * (extra + 1);
        let h = Hosting::new(logical, processors);
        let mut hit = vec![false; processors];
        for i in 0..logical {
            hit[h.host_of(i).index()] = true;
        }
        prop_assert!(hit.iter().all(|&b| b), "stride covers all {processors} processors");
        // Balance: colocation within 1 of the mean.
        let mean = logical / processors;
        prop_assert!(h.max_colocation() <= mean + 1);
    }
}
