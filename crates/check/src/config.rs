//! Checker run configuration: topology size, workload, engine knobs,
//! crash injection and seeded protocol mutations.

use distctr_core::engine::EngineConfig;
use distctr_core::kmath::{exact_order, order_for};
use distctr_core::protocol::PoolPolicy;
use distctr_sim::FaultPlan;

/// How workload operations enter the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// All operations are in flight from the first state: the checker
    /// explores every cross-operation interleaving.
    Concurrent(Vec<usize>),
    /// Operation `i + 1` is injected only once operation `i` has
    /// completed and the network has quiesced — the discipline of the
    /// sequential drivers, still exploring every within-operation
    /// delivery order (retirement cascades interleave with the climb).
    Sequential(Vec<usize>),
}

impl Workload {
    /// The initiators, in injection order.
    #[must_use]
    pub fn initiators(&self) -> &[usize] {
        match self {
            Workload::Concurrent(v) | Workload::Sequential(v) => v,
        }
    }
}

/// A seeded protocol-driver bug, used to validate that the checker (and
/// its counterexample minimizer) actually catches the class of fault it
/// exists for — mutation testing for the model checker itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// On every `Retired` effect, the buggy driver re-installs the node
    /// at the retiring worker (a botched handoff "rollback"): the node
    /// is now served by two processors at once, and enough further
    /// traffic retires it a second time from the same pool cursor — a
    /// double retirement the `no-double-retirement` invariant must
    /// catch.
    ResurrectRetired,
}

/// Everything one checker run needs to be reproducible: the serialized
/// counterexample [`Schedule`](crate::Schedule) is replayed against the
/// same `CheckConfig`.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Requested processor count (rounded up to `k^(k+1)`).
    pub n: usize,
    /// Operations run to quiescence in deterministic FIFO order *before*
    /// exploration starts — they pre-age the tree so the explored
    /// workload exercises retirement cascades, without being branch
    /// points themselves. Their op sequence numbers precede the
    /// workload's.
    pub warmup_ops: Vec<usize>,
    /// The workload to explore.
    pub workload: Workload,
    /// Batch size per *workload* operation (`op_counts[i]` pairs with
    /// the i-th workload initiator): an op with count `m > 1` is
    /// injected as one `BatchApply` traversal reserving the contiguous
    /// range `[v, v + m)`. Missing entries (and an empty vector, the
    /// default) mean unit increments; warm-up ops are always unit.
    pub op_counts: Vec<u64>,
    /// Engine configuration override; `None` uses the paper preset for
    /// the derived order `k`.
    pub engine: Option<EngineConfig>,
    /// Model the client watchdog at quiescence (promote pool successors
    /// of crashed/stuck workers, re-send incomplete operations). Needed
    /// whenever crashes are in play.
    pub watchdog: bool,
    /// Processors the checker may crash as a *branch choice* (bounded by
    /// [`CheckConfig::crash_budget`]).
    pub crash_candidates: Vec<usize>,
    /// Maximum explored crashes per trace.
    pub crash_budget: u32,
    /// Scripted crash points `(processor, after_deliveries)`, fired
    /// deterministically once the trace's delivery count passes the
    /// mark — the semantics of [`distctr_sim::CrashPoint`].
    pub scripted_crashes: Vec<(usize, u64)>,
    /// Optional seeded bug (see [`Mutation`]).
    pub mutation: Option<Mutation>,
}

impl CheckConfig {
    /// A fault-free paper-configured check of `ops` concurrent
    /// operations on (at least) `n` processors.
    #[must_use]
    pub fn new(n: usize) -> Self {
        CheckConfig {
            n,
            warmup_ops: Vec::new(),
            workload: Workload::Concurrent(Vec::new()),
            op_counts: Vec::new(),
            engine: None,
            watchdog: false,
            crash_candidates: Vec::new(),
            crash_budget: 0,
            scripted_crashes: Vec::new(),
            mutation: None,
        }
    }

    /// The tree order for this configuration.
    #[must_use]
    pub fn order(&self) -> u32 {
        let n = self.n.max(1) as u64;
        exact_order(n).unwrap_or_else(|| order_for(n))
    }

    /// The engine configuration in force (the explicit override, or the
    /// paper preset for the derived order).
    #[must_use]
    pub fn engine_config(&self) -> EngineConfig {
        self.engine.unwrap_or_else(|| EngineConfig::paper(self.order()))
    }

    /// Sets the deterministic warm-up operations (see
    /// [`CheckConfig::warmup_ops`]).
    #[must_use]
    pub fn warmup(mut self, initiators: &[usize]) -> Self {
        self.warmup_ops = initiators.to_vec();
        self
    }

    /// Sets a concurrent workload (all ops in flight from the start).
    #[must_use]
    pub fn concurrent_ops(mut self, initiators: &[usize]) -> Self {
        self.workload = Workload::Concurrent(initiators.to_vec());
        self
    }

    /// Sets a sequential workload (each op injected at quiescence).
    #[must_use]
    pub fn sequential_ops(mut self, initiators: &[usize]) -> Self {
        self.workload = Workload::Sequential(initiators.to_vec());
        self
    }

    /// Sets the per-op batch sizes (see [`CheckConfig::op_counts`]);
    /// zeros are treated as unit increments.
    #[must_use]
    pub fn batch_counts(mut self, counts: &[u64]) -> Self {
        self.op_counts = counts.to_vec();
        self
    }

    /// Overrides the engine configuration (e.g. threaded-backend parity).
    #[must_use]
    pub fn engine(mut self, config: EngineConfig) -> Self {
        self.engine = Some(config);
        self
    }

    /// Arms the quiescence watchdog and the stable-storage model: the
    /// engine dedupes retries through the reply cache and persists the
    /// root object, exactly like the simulator's fault-tolerant mode.
    #[must_use]
    pub fn fault_tolerant(mut self) -> Self {
        let mut cfg = self.engine_config();
        cfg.dedupe = true;
        cfg.persist = true;
        self.engine = Some(cfg);
        self.watchdog = true;
        self
    }

    /// Allows the checker to crash any of `candidates` at any branch
    /// point, at most `budget` crashes per trace. Implies nothing about
    /// recovery — combine with [`CheckConfig::fault_tolerant`].
    #[must_use]
    pub fn explore_crashes(mut self, candidates: &[usize], budget: u32) -> Self {
        self.crash_candidates = candidates.to_vec();
        self.crash_budget = budget;
        self
    }

    /// Scripts the crash points of `plan` into every explored trace
    /// (fired by network-wide delivery count, exactly like the
    /// simulator's fault injection; the plan's probabilistic drops and
    /// duplicates are subsumed by schedule + crash exploration and are
    /// ignored here).
    #[must_use]
    pub fn faults(mut self, plan: &FaultPlan) -> Self {
        self.scripted_crashes =
            plan.crashes.iter().map(|c| (c.processor.index(), c.after_deliveries)).collect();
        self
    }

    /// Injects a seeded protocol-driver bug (see [`Mutation`]).
    #[must_use]
    pub fn mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = Some(mutation);
        self
    }

    /// Renders this configuration as the Rust builder expression that
    /// reconstructs it — the counterexample test snippet embeds this so
    /// a violation replays from source alone.
    #[must_use]
    pub fn to_builder_code(&self) -> String {
        let mut code = format!("CheckConfig::new({})", self.n);
        if !self.warmup_ops.is_empty() {
            code.push_str(&format!(".warmup(&{:?})", self.warmup_ops));
        }
        match &self.workload {
            Workload::Concurrent(ops) => {
                code.push_str(&format!(".concurrent_ops(&{ops:?})"));
            }
            Workload::Sequential(ops) => {
                code.push_str(&format!(".sequential_ops(&{ops:?})"));
            }
        }
        if !self.op_counts.is_empty() {
            code.push_str(&format!(".batch_counts(&{:?})", self.op_counts));
        }
        if let Some(e) = self.engine {
            let pool = match e.pool_policy {
                PoolPolicy::OneShot => "PoolPolicy::OneShot",
                PoolPolicy::Recycling => "PoolPolicy::Recycling",
            };
            let cap = if e.reply_cache_cap == usize::MAX {
                "usize::MAX".to_string()
            } else {
                e.reply_cache_cap.to_string()
            };
            code.push_str(&format!(
                ".engine(EngineConfig {{ threshold: {:?}, pool_policy: {pool}, \
                 reply_cache_cap: {cap}, dedupe: {}, persist: {} }})",
                e.threshold, e.dedupe, e.persist
            ));
        }
        if self.watchdog {
            code.push_str(".watchdog()");
        }
        if !self.crash_candidates.is_empty() || self.crash_budget > 0 {
            code.push_str(&format!(
                ".explore_crashes(&{:?}, {})",
                self.crash_candidates, self.crash_budget
            ));
        }
        for (p, after) in &self.scripted_crashes {
            code.push_str(&format!(".scripted_crash({p}, {after})"));
        }
        if let Some(m) = self.mutation {
            code.push_str(&format!(".mutation(Mutation::{m:?})"));
        }
        code
    }

    /// Arms the quiescence watchdog without touching the engine
    /// configuration (used by generated snippets; most callers want
    /// [`CheckConfig::fault_tolerant`]).
    #[must_use]
    pub fn watchdog(mut self) -> Self {
        self.watchdog = true;
        self
    }

    /// Scripts one crash point directly (used by generated snippets;
    /// most callers pass a [`FaultPlan`] to [`CheckConfig::faults`]).
    #[must_use]
    pub fn scripted_crash(mut self, processor: usize, after_deliveries: u64) -> Self {
        self.scripted_crashes.push((processor, after_deliveries));
        self
    }
}
