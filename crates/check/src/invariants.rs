//! The pluggable invariant set, evaluated at every terminal quiescent
//! state.
//!
//! Each invariant is a total function of the [`World`]'s observables.
//! The defaults cover the paper's schedule-universal claims: returned
//! values are correct (a permutation of `0..ops`), no processor exceeds
//! the O(k) load bound (plus the audited recovery slack under faults),
//! no node retires twice from the same pool position, any two
//! operations' contact sets intersect (the Hot Spot lemma's geometry),
//! and the completed history passes the increment-only pairwise
//! linearizability test from `distctr_sim::linearize`.

use std::collections::HashSet;

use distctr_core::protocol::PoolPolicy;
use distctr_sim::{counter_history_linearizable, LinearizabilityVerdict, OpId, OpRecord, SimTime};

use crate::world::World;

/// One checkable property of a quiescent state.
pub trait Invariant {
    /// Stable name, used in reports and replay assertions.
    fn name(&self) -> &'static str;
    /// `Err(detail)` iff the property is violated in `world`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    fn check(&self, world: &World) -> Result<(), String>;
}

/// Completed operations received distinct counter values, and a fully
/// completed workload received exactly `0..ops`.
pub struct SequentialValues;

impl Invariant for SequentialValues {
    fn name(&self) -> &'static str {
        "sequential-values"
    }

    fn check(&self, world: &World) -> Result<(), String> {
        let mut values: Vec<u64> = world.ops().iter().filter_map(|o| o.value).collect();
        let completed = values.len();
        values.sort_unstable();
        if let Some(w) = values.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("two operations both received value {}", w[0]));
        }
        // The exact 0..ops shape only holds for unit increments; batch
        // workloads hand out range *starts*, whose shape is
        // `range-partition`'s concern.
        if world.ops().iter().any(|o| o.count > 1) {
            return Ok(());
        }
        let all_complete = world.ops().iter().all(|o| o.value.is_some());
        if all_complete && values.iter().enumerate().any(|(i, &v)| v != i as u64) {
            return Err(format!("values of {completed} completed ops are {values:?}, not 0.."));
        }
        Ok(())
    }
}

/// The batch-aware correctness condition: every completed operation
/// owns the contiguous range `[value, value + count)`, the ranges of
/// any two completed operations are disjoint, and a fully completed
/// workload's ranges partition `[0, total)` exactly (where `total` is
/// the sum of all counts). For unit workloads this degenerates to
/// [`SequentialValues`]'s exact check.
pub struct RangePartition;

impl Invariant for RangePartition {
    fn name(&self) -> &'static str {
        "range-partition"
    }

    fn check(&self, world: &World) -> Result<(), String> {
        let mut ranges: Vec<(u64, u64)> =
            world.ops().iter().filter_map(|o| o.value.map(|v| (v, o.count))).collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            let (start_a, count_a) = w[0];
            let (start_b, _) = w[1];
            if start_a + count_a > start_b {
                return Err(format!(
                    "ranges [{start_a}, {}) and [{start_b}, ..) overlap",
                    start_a + count_a
                ));
            }
        }
        if world.ops().iter().all(|o| o.value.is_some()) {
            let total: u64 = world.ops().iter().map(|o| o.count).sum();
            let mut expected = 0u64;
            for &(start, count) in &ranges {
                if start != expected {
                    return Err(format!(
                        "completed ranges leave a gap: expected a range starting at \
                         {expected}, found [{start}, {})",
                        start + count
                    ));
                }
                expected = start + count;
            }
            if expected != total {
                return Err(format!(
                    "completed ranges cover [0, {expected}), but {total} increments were applied"
                ));
            }
        }
        Ok(())
    }
}

/// No live processor's message count exceeds `20k` plus the world's
/// audited recovery slack — the fault-aware form of the paper's O(k)
/// bottleneck bound, as asserted by the chaos grid.
pub struct LoadBound {
    /// Extra allowance on top of `20k + fault_slack` (0 by default).
    pub extra: u64,
}

impl LoadBound {
    /// The standard bound.
    #[must_use]
    pub fn paper() -> Self {
        LoadBound { extra: 0 }
    }
}

impl Invariant for LoadBound {
    fn name(&self) -> &'static str {
        "per-processor-load"
    }

    fn check(&self, world: &World) -> Result<(), String> {
        let k = u64::from(world.topology().order());
        let limit = 20 * k + world.fault_slack() + self.extra;
        match world.loads().iter().enumerate().max_by_key(|(_, &l)| l) {
            Some((p, &max)) if max > limit => {
                Err(format!("processor {p} handled {max} messages, bound is {limit}"))
            }
            _ => Ok(()),
        }
    }
}

/// No node is retired twice from the same pool position, no handoff
/// installs the same pool position twice, and one-shot pools never
/// exceed their size.
pub struct NoDoubleRetirement;

impl Invariant for NoDoubleRetirement {
    fn name(&self) -> &'static str {
        "no-double-retirement"
    }

    fn check(&self, world: &World) -> Result<(), String> {
        let mut seen = HashSet::new();
        for &(flat, cursor) in world.retire_events() {
            if !seen.insert((flat, cursor)) {
                return Err(format!("node (flat {flat}) retired twice from pool cursor {cursor}"));
            }
        }
        let mut installed = HashSet::new();
        for &(flat, cursor) in world.installs() {
            if !installed.insert((flat, cursor)) {
                return Err(format!("node (flat {flat}) installed twice at pool cursor {cursor}"));
            }
        }
        if world.config().engine_config().pool_policy == PoolPolicy::OneShot {
            let topo = world.topology();
            let node_count = usize::try_from(topo.inner_node_count()).expect("fits usize");
            let mut per_node = vec![0u64; node_count];
            for &(flat, _) in world.retire_events() {
                per_node[flat] += 1;
            }
            for (flat, &count) in per_node.iter().enumerate() {
                let node = topo.node_at(flat);
                let size = topo.pool_size(node.level);
                if count >= size {
                    return Err(format!(
                        "node (flat {flat}) retired {count} times, pool size is {size}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// At most one live engine hosts any inner node: a handoff that leaves
/// the node served by two processors at once (the double-retirement
/// failure mode) is caught here even before the second retirement.
pub struct UniqueHosting;

impl Invariant for UniqueHosting {
    fn name(&self) -> &'static str {
        "unique-hosting"
    }

    fn check(&self, world: &World) -> Result<(), String> {
        for node in world.topology().nodes() {
            let hosts = world.hosts_of(node);
            if hosts.len() > 1 {
                return Err(format!(
                    "node ({}, {}) is hosted by {} live processors at once: {hosts:?}",
                    node.level,
                    node.index,
                    hosts.len()
                ));
            }
        }
        Ok(())
    }
}

/// The executable geometry behind the Hot Spot lemma: every completed
/// operation's contact set intersects the root-holder chain (the
/// processors that held the root at any point). Two operations
/// separated by a retirement touch *different* holders, but the
/// handoff links consecutive holders, so any two contact sets meet
/// when each is closed under the chain — which reduces to every
/// operation touching the chain at all. An operation that completes
/// without ever contacting a root holder has dodged the bottleneck the
/// lemma says is unavoidable.
pub struct HotSpotIntersection;

impl Invariant for HotSpotIntersection {
    fn name(&self) -> &'static str {
        "hot-spot-intersection"
    }

    fn check(&self, world: &World) -> Result<(), String> {
        let holders = world.root_holders();
        for (i, op) in world.ops().iter().enumerate() {
            if op.completed_step.is_none() {
                continue;
            }
            let contact = world.contact_set(i);
            if !contact.iter().any(|p| holders.contains(p)) {
                return Err(format!(
                    "op {i} completed with contact set {contact:?}, disjoint from the \
                     root-holder chain {holders:?}"
                ));
            }
        }
        // Sanity of the chain closure itself: with at least one holder
        // recorded, any two completed ops' chain-closed contact sets
        // intersect by the membership above.
        Ok(())
    }
}

/// The completed history passes the increment-only pairwise
/// linearizability test: no operation with a larger value completes
/// before an operation with a smaller value starts.
pub struct PairwiseLinearizable;

impl Invariant for PairwiseLinearizable {
    fn name(&self) -> &'static str {
        "pairwise-linearizable"
    }

    fn check(&self, world: &World) -> Result<(), String> {
        let mut values = HashSet::new();
        let records: Vec<OpRecord> = world
            .ops()
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                Some(OpRecord {
                    op: OpId::new(i),
                    started_at: SimTime::from_ticks(o.started_step?),
                    completed_at: SimTime::from_ticks(o.completed_step?),
                    value: o.value?,
                })
            })
            .collect();
        for r in &records {
            if !values.insert(r.value) {
                // Duplicate values are sequential-values territory; the
                // pairwise test would panic on them.
                return Err(format!("duplicate value {} in the completed history", r.value));
            }
        }
        match counter_history_linearizable(&records) {
            LinearizabilityVerdict::Linearizable => Ok(()),
            LinearizabilityVerdict::Violation { earlier, later } => Err(format!(
                "op {} (larger value) completed before op {} (smaller value) started",
                earlier.op.index(),
                later.op.index()
            )),
        }
    }
}

/// The default invariant set, most-specific first.
#[must_use]
pub fn default_invariants() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(NoDoubleRetirement),
        Box::new(UniqueHosting),
        Box::new(SequentialValues),
        Box::new(RangePartition),
        Box::new(PairwiseLinearizable),
        Box::new(HotSpotIntersection),
        Box::new(LoadBound::paper()),
    ]
}
