//! `checkdrive` — the CI entry point of the model checker.
//!
//! Default mode runs a bounded sweep of checker cells (n ∈ {2, 4, 8},
//! fault-free and crash-budget-1) under a shared transition budget and
//! exits nonzero with a minimized, replayable counterexample if any
//! invariant is violated. `--compare` runs the E21 experiment instead:
//! the checker and the old whole-protocol DFS (`distctr_sim::explore`)
//! on the identical scenario and wall-clock budget, reporting distinct
//! quiescent states reached by each.
//!
//! ```text
//! checkdrive [--budget 200k] [--depth 4096] [--compare]
//! ```

use std::cell::RefCell;
use std::collections::HashSet;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use distctr_check::{combined_fingerprint, Budget, CheckConfig, CheckOutcome, Checker};
use distctr_core::{
    CounterMsg, CounterObject, Msg, NodeEngine, RetirementPolicy, Topology, TreeProtocol,
};
use distctr_sim::{explore, Injection, OpId, ProcessorId};

fn parse_budget(s: &str) -> Result<u64, String> {
    let (digits, mult) = match s.trim().to_ascii_lowercase() {
        t if t.ends_with('k') => (t[..t.len() - 1].to_string(), 1_000u64),
        t if t.ends_with('m') => (t[..t.len() - 1].to_string(), 1_000_000u64),
        t => (t, 1),
    };
    digits
        .parse::<u64>()
        .map(|n| n * mult)
        .map_err(|e| format!("bad budget {s:?}: {e} (expected e.g. 200000, 200k, 2m)"))
}

struct Args {
    budget: u64,
    depth: usize,
    compare: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { budget: 200_000, depth: 4_096, compare: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                args.budget = parse_budget(&v)?;
            }
            "--depth" => {
                let v = it.next().ok_or("--depth needs a value")?;
                args.depth = v.parse().map_err(|e| format!("bad depth {v:?}: {e}"))?;
            }
            "--compare" => args.compare = true,
            "--help" | "-h" => {
                println!("usage: checkdrive [--budget 200k] [--depth N] [--compare]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// One sweep cell: a named configuration the CI run must hold on.
struct Cell {
    name: &'static str,
    cfg: CheckConfig,
}

fn sweep_cells() -> Vec<Cell> {
    vec![
        Cell {
            // n = 2 rounds up to the k = 2 tree; two concurrent ops on
            // the same leaf parent maximally contend for one entry node.
            name: "n=2 fault-free (2 ops, shared leaf parent)",
            cfg: CheckConfig::new(2).concurrent_ops(&[0, 1]),
        },
        Cell {
            // n = 4: warmed tree, two ops on distinct leaf parents.
            name: "n=4 fault-free (warmup 2, 2 ops, distinct entries)",
            cfg: CheckConfig::new(4).warmup(&[0, 2]).concurrent_ops(&[1, 6]),
        },
        Cell {
            // n = 8: deeper warm-up so the explored ops straddle the
            // root's retirement cascade.
            name: "n=8 fault-free (warmup 3, cascade window)",
            cfg: CheckConfig::new(8).warmup(&[0, 2, 4]).concurrent_ops(&[1, 6]),
        },
        Cell {
            // n = 8, crash budget 1: the checker may crash the root's
            // initial worker at any branch point; the watchdog must
            // still complete the sequential workload correctly.
            name: "n=8 crash-budget-1 (sequential, watchdog recovery)",
            cfg: CheckConfig::new(8)
                .sequential_ops(&[0, 4])
                .fault_tolerant()
                .explore_crashes(&[0], 1),
        },
    ]
}

fn report_violation(cell: &str, cfg: &CheckConfig, outcome: &CheckOutcome) {
    let v = outcome.violation.as_ref().expect("caller checked");
    eprintln!("FAIL [{cell}]: invariant `{}` violated", v.invariant);
    eprintln!("  detail: {}", v.detail);
    eprintln!("  schedule ({} choices): {}", v.schedule.choices.len(), v.schedule.serialize());
    eprintln!("  minimized ({} choices): {}", v.minimized.choices.len(), v.minimized.serialize());
    eprintln!("  replay test:\n{}", v.minimized.to_test_snippet(cfg, &v.invariant));
}

fn run_sweep(args: &Args) -> ExitCode {
    let cells = sweep_cells();
    let per_cell = (args.budget / cells.len() as u64).max(1);
    println!(
        "checkdrive: {} cells, {} transitions each (total budget {})",
        cells.len(),
        per_cell,
        args.budget
    );
    let mut failed = false;
    for cell in &cells {
        let started = Instant::now();
        let outcome = Checker::new(cell.cfg.clone())
            .budget(Budget { max_transitions: per_cell, max_depth: args.depth, wall_clock: None })
            .run();
        let s = &outcome.stats;
        println!(
            "  [{}] transitions={} leaves={} distinct={} sleep_skips={} depth={}{} ({:?})",
            cell.name,
            s.transitions,
            s.quiescent_leaves,
            s.distinct_quiescent,
            s.sleep_skips,
            s.max_depth_seen,
            if s.truncated { " truncated" } else { "" },
            started.elapsed(),
        );
        if !outcome.holds() {
            report_violation(cell.name, &cell.cfg, &outcome);
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("checkdrive: all cells hold");
        ExitCode::SUCCESS
    }
}

// --- E21 comparison: checker vs the old whole-protocol DFS ------------

type Proto = TreeProtocol<CounterObject>;

fn fresh_proto(k: u32) -> Proto {
    let topo = Topology::new(k).expect("supported order");
    TreeProtocol::new(topo, RetirementPolicy::PaperDefault, CounterObject::new())
}

fn inc_injection(proto: &Proto, initiator: usize, op: usize) -> Injection<CounterMsg> {
    let origin = ProcessorId::new(initiator);
    let leaf_parent = proto.topology().leaf_parent(initiator as u64);
    Injection {
        op: OpId::new(op),
        from: origin,
        to: proto.worker_of(leaf_parent),
        msg: Msg::Apply { node: leaf_parent, origin, op_seq: op as u64, req: () },
    }
}

fn proto_fingerprint(proto: &Proto, n: usize) -> u64 {
    let fps: Vec<u64> =
        (0..n).map(|p| NodeEngine::fingerprint(proto.engine_of(ProcessorId::new(p)))).collect();
    let crashed = vec![false; n];
    combined_fingerprint(&fps, &crashed)
}

fn run_compare(args: &Args) -> ExitCode {
    // The E21 scenario: the (n = 4, 2-op) configuration for both
    // explorers. The checker additionally branches a crash of any
    // processor at every point (up to two per trace) with watchdog
    // recovery — coverage the whole-protocol DFS structurally cannot
    // reach (it has no crash transitions), which is where the distinct
    // quiescent-state gap comes from.
    let workload = [0usize, 4];
    let cfg = CheckConfig::new(4)
        .sequential_ops(&workload)
        .fault_tolerant()
        .explore_crashes(&[0, 1, 2, 3, 4, 5, 6, 7], 2);

    let started = Instant::now();
    let outcome = Checker::new(cfg)
        .budget(Budget { max_transitions: args.budget, max_depth: args.depth, wall_clock: None })
        .run();
    let checker_wall = started.elapsed().max(Duration::from_millis(1));
    let s = &outcome.stats;
    println!(
        "checker:     transitions={} leaves={} distinct_quiescent={} sleep_skips={}{} in {:?}",
        s.transitions,
        s.quiescent_leaves,
        s.distinct_quiescent,
        s.sleep_skips,
        if s.truncated { " truncated" } else { "" },
        checker_wall,
    );
    if !outcome.holds() {
        let v = outcome.violation.as_ref().expect("violation present");
        eprintln!("unexpected violation in comparison config: {}: {}", v.invariant, v.detail);
        return ExitCode::FAILURE;
    }

    // The old DFS on the same workload, cut off at the checker's wall
    // clock. It explores the two ops concurrently (it has no sequential
    // injection either) and fault-free. Its invariant closure records
    // distinct protocol states; an `Err` return aborts the search,
    // which is how the wall-clock cutoff is realized (the
    // pseudo-violation is discarded).
    let proto = fresh_proto(2);
    let n = usize::try_from(proto.topology().processors()).expect("n fits usize");
    let injections: Vec<Injection<CounterMsg>> = workload
        .iter()
        .enumerate()
        .map(|(i, &initiator)| inc_injection(&proto, initiator, i))
        .collect();
    let distinct: RefCell<HashSet<u64>> = RefCell::new(HashSet::new());
    let sim_started = Instant::now();
    let sim_outcome = explore(&proto, &injections, u64::MAX, &|p: &Proto| {
        distinct.borrow_mut().insert(proto_fingerprint(p, n));
        if sim_started.elapsed() >= checker_wall {
            Err("wall clock".into())
        } else {
            Ok(())
        }
    });
    let sim_wall = sim_started.elapsed();
    let timed_out = sim_outcome.violation.as_deref() == Some("wall clock");
    let sim_distinct = distinct.borrow().len() as u64;
    println!(
        "sim explore: schedules={} distinct_quiescent={}{} in {:?}",
        sim_outcome.schedules,
        sim_distinct,
        if timed_out { " (wall-clock cutoff)" } else { " (exhausted)" },
        sim_wall,
    );
    let factor = s.distinct_quiescent as f64 / sim_distinct.max(1) as f64;
    println!("reduction: checker covered {factor:.1}x the distinct quiescent states");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("checkdrive: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.compare {
        run_compare(&args)
    } else {
        run_sweep(&args)
    }
}
