//! A concurrent-history recorder and checker for fetch&increment
//! objects.
//!
//! The shared-memory bake-off (`crates/shm`, experiment E26) runs
//! free-running OS threads against a counter backend and needs a
//! correctness verdict that does not depend on the scheduler: every
//! backend must hand out **exactly** the values `0..ops` (gap-free, no
//! duplicates), and — for the linearizable backends — must respect
//! real-time order: an operation that *starts* after another *returns*
//! must observe a larger value.
//!
//! The recorder is deliberately cheap and contention-free: each thread
//! records into its own [`ThreadHistory`] (a plain `Vec` it owns), with
//! timestamps taken from one shared monotonic epoch so cross-thread
//! comparison is meaningful. Threads never synchronize through the
//! recorder, so the recorder cannot mask races in the object under
//! test.
//!
//! The check itself is the classical one for fetch&increment histories
//! (a special case of linearizability checking that is linear-time
//! rather than NP-hard): sort completed operations by invocation time;
//! operation `B` is a real-time violation iff
//! `value(B) < max { value(A) : return(A) < invoke(B) }`.
//! Counting networks are only *quiescently consistent*, so the verdict
//! separates the gap-free multiset property (required of every backend)
//! from the real-time property (required of linearizable ones).

use std::time::Instant;

/// One completed fetch&increment operation, as observed by its caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryEvent {
    /// Recorder-assigned thread index.
    pub thread: usize,
    /// Invocation time in nanoseconds since the recorder's epoch.
    pub invoke_ns: u64,
    /// Return time in nanoseconds since the recorder's epoch.
    pub return_ns: u64,
    /// The value the operation returned.
    pub value: u64,
}

/// Per-thread event log. Owned by exactly one thread while recording;
/// hand it back to [`HistoryRecorder::check`] when the thread is done.
#[derive(Debug)]
pub struct ThreadHistory {
    thread: usize,
    epoch: Instant,
    events: Vec<HistoryEvent>,
}

impl ThreadHistory {
    /// Marks an invocation; feed the returned instant to [`Self::ret`].
    #[must_use]
    pub fn invoke(&self) -> Instant {
        Instant::now()
    }

    /// Records a completed operation that returned `value`.
    pub fn ret(&mut self, invoked_at: Instant, value: u64) {
        let now = Instant::now();
        self.events.push(HistoryEvent {
            thread: self.thread,
            invoke_ns: saturating_ns(self.epoch, invoked_at),
            return_ns: saturating_ns(self.epoch, now),
            value,
        });
    }

    /// Number of operations recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no operations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn saturating_ns(epoch: Instant, t: Instant) -> u64 {
    u64::try_from(t.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// Allocates per-thread histories sharing one epoch and checks the
/// merged result.
#[derive(Debug)]
pub struct HistoryRecorder {
    epoch: Instant,
}

impl HistoryRecorder {
    /// A fresh recorder; its construction instant is the shared epoch.
    #[must_use]
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }

    /// A private log for one thread. Move it into the thread; collect
    /// it back (e.g. through the join handle) for [`Self::check`].
    #[must_use]
    pub fn thread(&self, thread: usize) -> ThreadHistory {
        ThreadHistory { thread, epoch: self.epoch, events: Vec::new() }
    }

    /// Merges per-thread logs and renders the verdict.
    #[must_use]
    pub fn check(&self, histories: &[ThreadHistory]) -> HistoryVerdict {
        let mut events: Vec<HistoryEvent> =
            histories.iter().flat_map(|h| h.events.iter().copied()).collect();
        check_fetch_inc_history(&mut events)
    }
}

impl Default for HistoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// The outcome of checking a merged fetch&increment history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryVerdict {
    /// Total completed operations in the history.
    pub ops: usize,
    /// Values in `0..ops` that no operation returned.
    pub missing: Vec<u64>,
    /// Values returned by more than one operation (or `>= ops`).
    pub duplicates: Vec<u64>,
    /// Real-time order violations: `(value_returned, floor_violated)`
    /// pairs where the operation returned `value_returned` although an
    /// operation returning `floor_violated` had already completed
    /// before it was invoked.
    pub lin_violations: Vec<(u64, u64)>,
}

impl HistoryVerdict {
    /// Every value in `0..ops` returned exactly once.
    #[must_use]
    pub fn gap_free(&self) -> bool {
        self.missing.is_empty() && self.duplicates.is_empty()
    }

    /// Gap-free **and** no real-time order violations.
    #[must_use]
    pub fn linearizable(&self) -> bool {
        self.gap_free() && self.lin_violations.is_empty()
    }
}

/// Checks a merged history of completed fetch&increment operations.
///
/// Reorders `events` by invocation time as a side effect. Gap-freedom
/// is the multiset condition `values == 0..len`; the real-time
/// condition is checked with a sweep over invocation order maintaining
/// the max value among operations already returned ("the floor"):
/// a fetch&increment history is linearizable iff no operation returns
/// a value below the floor at its invocation.
#[must_use]
pub fn check_fetch_inc_history(events: &mut [HistoryEvent]) -> HistoryVerdict {
    let ops = events.len();

    let mut seen = vec![0u32; ops];
    let mut duplicates = Vec::new();
    for e in events.iter() {
        match usize::try_from(e.value).ok().filter(|&v| v < ops) {
            Some(v) => {
                seen[v] += 1;
                if seen[v] == 2 {
                    duplicates.push(e.value);
                }
            }
            None => duplicates.push(e.value),
        }
    }
    let missing: Vec<u64> = (0..ops).filter(|&v| seen[v] == 0).map(|v| v as u64).collect();
    duplicates.sort_unstable();
    duplicates.dedup();

    // Real-time sweep. Sort by invocation; walk a second cursor over
    // the same events sorted by return time, folding returned values
    // into the floor before each invocation.
    events.sort_unstable_by_key(|e| (e.invoke_ns, e.return_ns));
    let mut by_return: Vec<(u64, u64)> = events.iter().map(|e| (e.return_ns, e.value)).collect();
    by_return.sort_unstable();

    let mut lin_violations = Vec::new();
    let mut floor: Option<u64> = None;
    let mut ret_cursor = 0;
    for e in events.iter() {
        while ret_cursor < by_return.len() && by_return[ret_cursor].0 < e.invoke_ns {
            let v = by_return[ret_cursor].1;
            floor = Some(floor.map_or(v, |f| f.max(v)));
            ret_cursor += 1;
        }
        if let Some(f) = floor {
            if e.value < f {
                lin_violations.push((e.value, f));
            }
        }
    }

    HistoryVerdict { ops, missing, duplicates, lin_violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: usize, invoke_ns: u64, return_ns: u64, value: u64) -> HistoryEvent {
        HistoryEvent { thread, invoke_ns, return_ns, value }
    }

    #[test]
    fn a_sequential_history_is_linearizable_and_gap_free() {
        let mut h = vec![ev(0, 0, 10, 0), ev(0, 20, 30, 1), ev(1, 40, 50, 2)];
        let v = check_fetch_inc_history(&mut h);
        assert_eq!(v.ops, 3);
        assert!(v.gap_free(), "{v:?}");
        assert!(v.linearizable(), "{v:?}");
    }

    #[test]
    fn overlapping_operations_may_return_in_either_order() {
        // Two overlapping ops: the later invocation returning the
        // smaller value is fine because neither happened-before the
        // other.
        let mut h = vec![ev(0, 0, 100, 1), ev(1, 10, 90, 0)];
        let v = check_fetch_inc_history(&mut h);
        assert!(v.linearizable(), "{v:?}");
    }

    #[test]
    fn a_real_time_violation_is_reported_with_its_floor() {
        // Op returning 5 completed at t=10; an op invoked at t=20 then
        // returned 3 < 5: quiescently consistent, not linearizable.
        let mut h = vec![
            ev(0, 0, 10, 5),
            ev(1, 20, 30, 3),
            ev(0, 40, 50, 0),
            ev(1, 60, 70, 1),
            ev(0, 80, 90, 2),
            ev(1, 100, 110, 4),
        ];
        let v = check_fetch_inc_history(&mut h);
        assert!(v.gap_free(), "{v:?}");
        assert!(!v.linearizable());
        assert!(v.lin_violations.contains(&(3, 5)), "{:?}", v.lin_violations);
    }

    #[test]
    fn gaps_and_duplicates_are_both_reported() {
        let mut h = vec![ev(0, 0, 10, 0), ev(0, 20, 30, 0), ev(0, 40, 50, 7)];
        let v = check_fetch_inc_history(&mut h);
        assert!(!v.gap_free());
        assert_eq!(v.duplicates, vec![0, 7], "0 twice, 7 out of range");
        assert_eq!(v.missing, vec![1, 2], "values 1 and 2 never returned");
    }

    #[test]
    fn the_recorder_merges_per_thread_logs_against_one_epoch() {
        let rec = HistoryRecorder::new();
        let mut a = rec.thread(0);
        let mut b = rec.thread(1);
        let t = a.invoke();
        a.ret(t, 0);
        let t = b.invoke();
        b.ret(t, 1);
        let t = a.invoke();
        a.ret(t, 2);
        assert_eq!(a.len(), 2);
        assert!(!b.is_empty());
        let v = rec.check(&[a, b]);
        assert_eq!(v.ops, 3);
        assert!(v.linearizable(), "{v:?}");
    }

    #[test]
    fn the_empty_history_is_trivially_linearizable() {
        let v = check_fetch_inc_history(&mut []);
        assert_eq!(v.ops, 0);
        assert!(v.linearizable());
    }
}
