//! Delta-debugging minimization of counterexample schedules.
//!
//! Replay tolerates missing choices (infeasible ones are skipped, the
//! tail is drained deterministically), so any *subset* of a violating
//! schedule is itself a runnable schedule. `ddmin` shrinks the choice
//! list to one that still reproduces the same invariant violation,
//! then a greedy pass drops any remaining single choice that proved
//! removable — yielding a locally minimal, human-readable repro.

use crate::config::CheckConfig;
use crate::invariants::Invariant;
use crate::schedule::{replay_with, Choice, Schedule};

/// Shrinks `schedule` while `replay` still violates `invariant`.
pub(crate) fn minimize(
    cfg: &CheckConfig,
    schedule: &Schedule,
    invariants: &[Box<dyn Invariant>],
    invariant: &str,
) -> Schedule {
    let reproduces = |choices: &[Choice]| {
        replay_with(cfg, &Schedule::new(choices.to_vec()), invariants)
            .violation
            .is_some_and(|v| v.invariant == invariant)
    };
    if !reproduces(&schedule.choices) {
        // The violation does not survive the deterministic drain tail
        // (e.g. it depended on budget truncation); keep the original.
        return schedule.clone();
    }
    let mut current = schedule.choices.clone();

    // Classic ddmin: try removing complements at shrinking granularity.
    let mut chunks = 2usize;
    while current.len() > 1 {
        let chunk_len = current.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk_len).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if reproduces(&candidate) {
                current = candidate;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk_len <= 1 {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
    }

    // Greedy polish: drop any single choice that is still removable.
    let mut i = 0;
    while i < current.len() {
        let mut candidate = current.clone();
        candidate.remove(i);
        if reproduces(&candidate) {
            current = candidate;
        } else {
            i += 1;
        }
    }
    Schedule::new(current)
}
