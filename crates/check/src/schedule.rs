//! Replayable schedules: the serialized form of a counterexample.
//!
//! A [`Schedule`] is the list of choices (deliveries by message
//! sequence number, crashes by processor) the checker made along one
//! trace. Sequence numbers are assigned deterministically in emission
//! order, so replaying the choices against a fresh [`World`] of the
//! same [`CheckConfig`] reconstructs the same trace — and a *subset* of
//! the choices still replays meaningfully: infeasible choices are
//! skipped and the tail is drained oldest-message-first, which is what
//! makes delta-debugging minimization (see [`crate::minimize`]) work.

use crate::config::CheckConfig;
use crate::invariants::{default_invariants, Invariant};
use crate::world::{Quiescence, World};

/// A transition key: stable identity of one branch choice. Carries the
/// destination so independence is decidable without the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum TransKey {
    /// Deliver in-flight message `seq` (addressed to processor `to`).
    Deliver { seq: u64, to: usize },
    /// Crash processor `p`.
    Crash { p: usize },
}

impl TransKey {
    /// Two transitions commute iff neither touches the other's
    /// processor: deliveries to distinct destinations are independent;
    /// a crash is conservatively dependent with everything.
    pub(crate) fn independent(self, other: TransKey) -> bool {
        match (self, other) {
            (TransKey::Deliver { to: a, .. }, TransKey::Deliver { to: b, .. }) => a != b,
            _ => false,
        }
    }

    pub(crate) fn to_choice(self) -> Choice {
        match self {
            TransKey::Deliver { seq, .. } => Choice::Deliver(seq),
            TransKey::Crash { p } => Choice::Crash(p),
        }
    }
}

/// One serialized schedule step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Deliver the in-flight message with this sequence number.
    Deliver(u64),
    /// Crash this processor.
    Crash(usize),
}

/// A replayable delivery/crash schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// The choices, in order.
    pub choices: Vec<Choice>,
}

impl Schedule {
    /// Builds a schedule from choices.
    #[must_use]
    pub fn new(choices: Vec<Choice>) -> Self {
        Schedule { choices }
    }

    /// Serializes as a compact single line: `d<seq>` per delivery,
    /// `c<p>` per crash, space-separated (e.g. `"d0 d2 c5 d3"`).
    #[must_use]
    pub fn serialize(&self) -> String {
        self.choices
            .iter()
            .map(|c| match c {
                Choice::Deliver(seq) => format!("d{seq}"),
                Choice::Crash(p) => format!("c{p}"),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Parses the [`Schedule::serialize`] format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut choices = Vec::new();
        for tok in s.split_whitespace() {
            let (kind, num) = tok.split_at(1);
            let parse_u64 =
                |n: &str| n.parse::<u64>().map_err(|e| format!("bad schedule token {tok:?}: {e}"));
            match kind {
                "d" => choices.push(Choice::Deliver(parse_u64(num)?)),
                "c" => choices.push(Choice::Crash(
                    usize::try_from(parse_u64(num)?).map_err(|e| format!("{tok:?}: {e}"))?,
                )),
                _ => return Err(format!("bad schedule token {tok:?}: expected d<seq> or c<p>")),
            }
        }
        Ok(Schedule { choices })
    }

    /// Renders a ready-to-paste `#[test]` that replays this schedule
    /// against `cfg` and asserts the violation reproduces.
    #[must_use]
    pub fn to_test_snippet(&self, cfg: &CheckConfig, invariant: &str) -> String {
        format!(
            r#"#[test]
fn replays_minimized_counterexample() {{
    use distctr_check::{{replay, CheckConfig, Mutation, Schedule}};
    use distctr_core::engine::EngineConfig;
    use distctr_core::protocol::PoolPolicy;
    let cfg = {};
    let schedule = Schedule::parse("{}").expect("well-formed schedule");
    let outcome = replay(&cfg, &schedule);
    let violation = outcome.violation.expect("the counterexample must reproduce");
    assert_eq!(violation.invariant, "{}");
}}
"#,
            cfg.to_builder_code(),
            self.serialize(),
            invariant,
        )
    }
}

/// What a [`replay`] observed.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The invariant violation hit (name + detail), if any.
    pub violation: Option<ReplayViolation>,
    /// Schedule choices that were infeasible at replay time (already
    /// delivered, never sent, or already crashed) and were skipped.
    pub skipped: usize,
    /// Deliveries performed in total (scheduled + drain tail).
    pub deliveries: u64,
    /// State fingerprint at the end of the replay.
    pub fingerprint: u64,
    /// The response values of the completed operations, in op order.
    pub values: Vec<Option<u64>>,
    /// Retirements that occurred along the replay (audited).
    pub retirements: u64,
}

/// A violation reproduced by a replay.
#[derive(Debug, Clone)]
pub struct ReplayViolation {
    /// The violated invariant's name.
    pub invariant: String,
    /// Human-readable details.
    pub detail: String,
}

/// Replays `schedule` against a fresh world of `cfg` under the default
/// invariant set and reports what happened. Infeasible choices are
/// skipped; after the last choice the world is drained
/// oldest-message-first to final quiescence, where the invariants are
/// evaluated (they are also evaluated at any final quiescence reached
/// mid-schedule).
#[must_use]
pub fn replay(cfg: &CheckConfig, schedule: &Schedule) -> ReplayOutcome {
    replay_with(cfg, schedule, &default_invariants())
}

/// [`replay`] with an explicit invariant set.
#[must_use]
pub fn replay_with(
    cfg: &CheckConfig,
    schedule: &Schedule,
    invariants: &[Box<dyn Invariant>],
) -> ReplayOutcome {
    let mut world = World::new(cfg);
    let mut skipped = 0usize;
    let mut violation = None;

    let check = |world: &World, violation: &mut Option<ReplayViolation>| {
        if violation.is_none() {
            for inv in invariants {
                if let Err(detail) = inv.check(world) {
                    *violation =
                        Some(ReplayViolation { invariant: inv.name().to_string(), detail });
                    break;
                }
            }
        }
    };

    'choices: for &choice in &schedule.choices {
        // Resolve any quiescence first, so scheduled seqs of
        // watchdog/sequential injections exist when their turn comes.
        // Invariants are evaluated at every quiescent state, as in the
        // search itself.
        while world.is_quiescent() {
            check(&world, &mut violation);
            if violation.is_some() {
                break 'choices;
            }
            match world.on_quiescence() {
                Quiescence::Continued => {}
                Quiescence::Final => break 'choices,
            }
        }
        let key = match choice {
            Choice::Deliver(seq) => {
                // Destination is irrelevant for execution feasibility.
                crate::schedule::TransKey::Deliver { seq, to: 0 }
            }
            Choice::Crash(p) => crate::schedule::TransKey::Crash { p },
        };
        if !world.execute(key) {
            skipped += 1;
        }
    }

    // Drain deterministically to final quiescence, checking at every
    // quiescent state along the way.
    if violation.is_none() {
        loop {
            while !world.is_quiescent() {
                world.deliver_oldest();
            }
            check(&world, &mut violation);
            if violation.is_some() {
                break;
            }
            match world.on_quiescence() {
                Quiescence::Continued => {}
                Quiescence::Final => break,
            }
        }
    }

    ReplayOutcome {
        violation,
        skipped,
        deliveries: world.deliveries(),
        fingerprint: world.fingerprint(),
        values: world.ops().iter().map(|o| o.value).collect(),
        retirements: world.retirements(),
    }
}
