//! # distctr-check
//!
//! An engine-level model checker for the retirement-tree protocol. It
//! drives fleets of [`distctr_core::engine::NodeEngine`]s directly
//! through `on_event`, exploring **every admissible delivery order** of
//! a workload (and, optionally, crash points) with sleep-set
//! partial-order reduction: commuting deliveries to distinct processors
//! are branched only once per Mazurkiewicz trace, which is what makes
//! the search dramatically cheaper than the whole-protocol DFS in
//! `distctr_sim::explore` while covering strictly more behaviour
//! (crashes at branch points, watchdog recovery, cross-op concurrency).
//!
//! At every terminal quiescent state a pluggable [`Invariant`] set is
//! evaluated — correct values, the O(k) load bound, no double
//! retirement, hot-spot contact-set intersection, pairwise
//! linearizability. A violation is emitted as a **minimized,
//! replayable counterexample**: a delta-debugged [`Schedule`] that
//! [`replay`] (or the generated `#[test]` snippet) re-executes
//! deterministically.
//!
//! ```
//! use distctr_check::{CheckConfig, Checker};
//!
//! // Every delivery order of two concurrent increments on 8 processors.
//! let outcome = Checker::new(CheckConfig::new(8).concurrent_ops(&[0, 4])).run();
//! assert!(outcome.holds());
//! assert!(outcome.stats.distinct_quiescent >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod config;
pub mod history;
pub mod invariants;
mod minimize;
pub mod schedule;
pub mod world;

pub use checker::{Budget, CheckOutcome, CheckStats, Checker, Violation};
pub use config::{CheckConfig, Mutation, Workload};
pub use history::{
    check_fetch_inc_history, HistoryEvent, HistoryRecorder, HistoryVerdict, ThreadHistory,
};
pub use invariants::{
    default_invariants, HotSpotIntersection, Invariant, LoadBound, NoDoubleRetirement,
    PairwiseLinearizable, RangePartition, SequentialValues, UniqueHosting,
};
pub use schedule::{replay, replay_with, Choice, ReplayOutcome, ReplayViolation, Schedule};
pub use world::{combined_fingerprint, OpState, Quiescence, World, MAX_WATCHDOG_ROUNDS};
