//! The sleep-set DFS at the heart of the checker.
//!
//! States are worlds; transitions are deliveries of in-flight messages
//! (plus optional crashes). Deliveries to distinct destination
//! processors commute — delivering them in either order reaches the
//! same state — so branching both orders explores the same
//! Mazurkiewicz trace twice. Sleep sets prune exactly those redundant
//! branches: after exploring transition `t` from a state, `t` is put to
//! sleep for the remaining siblings, and stays asleep along a sibling
//! branch for as long as it is independent of everything executed
//! there. Crashes are conservatively dependent with every transition,
//! so fault branches are never pruned.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::config::CheckConfig;
use crate::invariants::{default_invariants, Invariant};
use crate::minimize::minimize;
use crate::schedule::{Choice, Schedule, TransKey};
use crate::world::{Quiescence, World};

/// Exploration budgets. The checker stops (reporting truncation) when
/// any budget is exhausted.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum transitions executed across the whole search.
    pub max_transitions: u64,
    /// Maximum schedule depth (choices along one trace).
    pub max_depth: usize,
    /// Maximum wall clock for the search.
    pub wall_clock: Option<Duration>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { max_transitions: 1_000_000, max_depth: 4_096, wall_clock: None }
    }
}

/// Search statistics.
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// Transitions executed.
    pub transitions: u64,
    /// Terminal quiescent states reached (trace leaves).
    pub quiescent_leaves: u64,
    /// Distinct terminal quiescent state fingerprints.
    pub distinct_quiescent: u64,
    /// Branches skipped by sleep sets (redundant interleavings never
    /// executed).
    pub sleep_skips: u64,
    /// Deepest schedule reached.
    pub max_depth_seen: usize,
    /// Whether any budget cut the search short.
    pub truncated: bool,
    /// Protocol-level fingerprints ([`World::fingerprint`]: engines +
    /// crash pattern, without client state) of every quiescent state
    /// reached — the set another backend's final state can be checked
    /// for membership in (see `crates/net/tests/conformance.rs`).
    pub quiescent_fingerprints: HashSet<u64>,
}

/// A violation found by the search.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated invariant's name.
    pub invariant: String,
    /// Human-readable details from the invariant.
    pub detail: String,
    /// The full schedule that reached the violating state.
    pub schedule: Schedule,
    /// The delta-debugged minimal schedule that still reproduces the
    /// violation under [`crate::replay`].
    pub minimized: Schedule,
}

/// The result of one [`Checker::run`].
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Search statistics.
    pub stats: CheckStats,
    /// The first violation found, already minimized; `None` if every
    /// explored trace satisfied every invariant.
    pub violation: Option<Violation>,
}

impl CheckOutcome {
    /// Whether the explored portion of the state space is clean.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// The model checker: explores delivery orders (and crash points) of a
/// [`CheckConfig`]'s workload under an invariant set.
pub struct Checker {
    cfg: CheckConfig,
    budget: Budget,
    invariants: Vec<Box<dyn Invariant>>,
}

struct Search<'a> {
    budget: Budget,
    invariants: &'a [Box<dyn Invariant>],
    started: Instant,
    stats: CheckStats,
    fingerprints: HashSet<u64>,
    prefix: Vec<Choice>,
}

impl Checker {
    /// A checker over `cfg` with the default budget and invariant set.
    #[must_use]
    pub fn new(cfg: CheckConfig) -> Self {
        Checker { cfg, budget: Budget::default(), invariants: default_invariants() }
    }

    /// Overrides the budgets.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the invariant set.
    #[must_use]
    pub fn invariants(mut self, invariants: Vec<Box<dyn Invariant>>) -> Self {
        self.invariants = invariants;
        self
    }

    /// The configuration under check.
    #[must_use]
    pub fn config(&self) -> &CheckConfig {
        &self.cfg
    }

    /// Runs the search: depth-first over delivery orders with sleep-set
    /// partial-order reduction, invariants evaluated at every terminal
    /// quiescent state, first violation minimized by delta debugging.
    #[must_use]
    pub fn run(&self) -> CheckOutcome {
        let mut search = Search {
            budget: self.budget,
            invariants: &self.invariants,
            started: Instant::now(),
            stats: CheckStats::default(),
            fingerprints: HashSet::new(),
            prefix: Vec::new(),
        };
        let world = World::new(&self.cfg);
        let violation = search.dfs(world, Vec::new());
        let mut stats = search.stats;
        stats.distinct_quiescent = search.fingerprints.len() as u64;
        let violation = violation.map(|(invariant, detail, schedule)| {
            let minimized = minimize(&self.cfg, &schedule, &self.invariants, &invariant);
            Violation { invariant, detail, schedule, minimized }
        });
        CheckOutcome { stats, violation }
    }
}

impl Search<'_> {
    fn out_of_budget(&mut self) -> bool {
        let out = self.stats.transitions >= self.budget.max_transitions
            || self.prefix.len() >= self.budget.max_depth
            || self.budget.wall_clock.is_some_and(|limit| self.started.elapsed() >= limit);
        if out {
            self.stats.truncated = true;
        }
        out
    }

    /// Explores every trace from `world`, with `sleep` holding the
    /// transitions whose exploration here would duplicate an already
    /// explored trace. Returns the first violation's (invariant,
    /// detail, schedule).
    fn dfs(
        &mut self,
        mut world: World,
        sleep: Vec<TransKey>,
    ) -> Option<(String, String, Schedule)> {
        self.stats.max_depth_seen = self.stats.max_depth_seen.max(self.prefix.len());
        // Resolve quiescence deterministically: sequential injections
        // and watchdog rounds are not branch points. Every quiescent
        // state — intermediate or terminal — is fingerprinted and
        // checked against the invariant set.
        while world.is_quiescent() {
            self.fingerprints.insert(world.full_fingerprint());
            self.stats.quiescent_fingerprints.insert(world.fingerprint());
            for inv in self.invariants {
                if let Err(detail) = inv.check(&world) {
                    return Some((
                        inv.name().to_string(),
                        detail,
                        Schedule::new(self.prefix.clone()),
                    ));
                }
            }
            match world.on_quiescence() {
                Quiescence::Continued => {}
                Quiescence::Final => {
                    self.stats.quiescent_leaves += 1;
                    return None;
                }
            }
        }
        if self.out_of_budget() {
            return None;
        }
        let enabled = world.enabled();
        let mut done: Vec<TransKey> = Vec::new();
        for &t in &enabled {
            if sleep.contains(&t) {
                self.stats.sleep_skips += 1;
                continue;
            }
            if self.out_of_budget() {
                return None;
            }
            let mut next = world.clone();
            let executed = next.execute(t);
            debug_assert!(executed, "enabled transitions are feasible");
            self.stats.transitions += 1;
            self.prefix.push(t.to_choice());
            let child_sleep: Vec<TransKey> =
                sleep.iter().chain(done.iter()).copied().filter(|&s| s.independent(t)).collect();
            let found = self.dfs(next, child_sleep);
            self.prefix.pop();
            if found.is_some() {
                return found;
            }
            done.push(t);
        }
        None
    }
}
