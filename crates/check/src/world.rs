//! The checker's world: a fleet of [`NodeEngine`]s plus the in-flight
//! message multiset, driven one delivery (or crash) at a time.
//!
//! The world is the *driver* seen by the engines — the same role the
//! simulator's `TreeProtocol` and the threaded backend's worker loop
//! play — but written for exhaustive exploration: it is cheap to clone,
//! every transition is explicit, and every observable the invariants
//! need (values, loads, retirements, contact sets, per-node hosting) is
//! tracked as the effects stream by. Fault semantics mirror the other
//! drivers exactly: a crash purges the victim's inbox (dead letters),
//! drops its future traffic, and resets its engine to factory state;
//! the client watchdog is realized at quiescence, like the simulator's.

use std::collections::BTreeSet;
use std::sync::Arc;

use distctr_core::engine::{
    seed_initial_hosting, AuditEvent, Effect, Effects, EngineConfig, Event, Hosted, NodeEngine,
    VirtualTime,
};
use distctr_core::protocol::PoolPolicy;
use distctr_core::{CounterMsg, CounterObject, Msg, NodeRef, Topology};
use distctr_sim::ProcessorId;

use crate::config::{CheckConfig, Mutation, Workload};
use crate::schedule::TransKey;

/// Watchdog rounds before an incomplete operation is given up on —
/// mirrors `TreeClient::MAX_RECOVERY_ATTEMPTS`.
pub const MAX_WATCHDOG_ROUNDS: u32 = 25;

/// One message in flight. The `seq` is assigned at send time in
/// deterministic emission order, so a schedule of seqs identifies the
/// same message across replays of the same prefix.
#[derive(Debug, Clone)]
pub(crate) struct InFlight {
    pub seq: u64,
    pub from: ProcessorId,
    pub to: ProcessorId,
    /// Workload op this message is causally attributed to (contact
    /// sets); `None` only for traffic predating op injection.
    pub op: Option<usize>,
    pub msg: CounterMsg,
}

/// The checker's view of one workload operation.
#[derive(Debug, Clone)]
pub struct OpState {
    /// Initiating processor.
    pub initiator: usize,
    /// Increments this op performs: 1 for a unit inc, `m > 1` for a
    /// batch reserving the contiguous range `[value, value + m)`.
    pub count: u64,
    /// Whether the op has been injected yet (sequential workloads defer).
    pub injected: bool,
    /// Step at which the op was first injected.
    pub started_step: Option<u64>,
    /// Step at which the initiator received the response.
    pub completed_step: Option<u64>,
    /// The response value.
    pub value: Option<u64>,
    /// Watchdog re-injections.
    pub attempts: u32,
    /// The watchdog proved the op unrecoverable (initiator dead, or a
    /// path node's pool ran out of live successors).
    pub abandoned: bool,
}

/// Registry mirror of one inner node (the watchdog's view; a plain
/// record of the `Installed`/`Retired`/`Recover*` effects).
#[derive(Debug, Clone)]
struct Mirror {
    worker: ProcessorId,
    pool_cursor: u64,
    handing_off: bool,
    pending_worker: Option<ProcessorId>,
    recovering: bool,
}

/// What a quiescent state turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quiescence {
    /// The world injected more work (next sequential op, or a watchdog
    /// repair round); exploration continues.
    Continued,
    /// Terminal: nothing in flight and nothing left to inject — the
    /// state invariants are evaluated here.
    Final,
}

/// The explorable state: engines + in-flight messages + fault state +
/// observables. Cloned at every branch point.
#[derive(Debug, Clone)]
pub struct World {
    cfg: Arc<CheckConfig>,
    topo: Arc<Topology>,
    engine_cfg: EngineConfig,
    engines: Vec<NodeEngine<CounterObject>>,
    in_flight: Vec<InFlight>,
    next_seq: u64,
    now: u64,
    deliveries: u64,
    crashed: Vec<bool>,
    crash_budget_left: u32,
    scripted_fired: Vec<bool>,
    registry: Vec<Mirror>,
    next_op: usize,
    ops: Vec<OpState>,
    watchdog_rounds: u32,
    loads: Vec<u64>,
    contact: Vec<BTreeSet<usize>>,
    retire_events: Vec<(usize, u64)>,
    installs: Vec<(usize, u64)>,
    root_holders: BTreeSet<usize>,
    stable_object: CounterObject,
    stable_replies: Vec<(u64, u64)>,
    retirements: u64,
    shim_forwards: u64,
    recovery_msgs: u64,
    recoveries: u64,
    dead_letters: u64,
    lost: u64,
}

impl World {
    /// A fresh world for `cfg`: topology built, hosting seeded,
    /// concurrent workloads already in flight.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is malformed (size beyond the
    /// supported orders, initiator or crash candidate out of range).
    #[must_use]
    pub fn new(cfg: &CheckConfig) -> Self {
        let topo = Arc::new(Topology::new(cfg.order()).expect("supported order"));
        let n = usize::try_from(topo.processors()).expect("n fits usize");
        let engine_cfg = cfg.engine_config();
        let mut engines: Vec<NodeEngine<CounterObject>> = (0..n)
            .map(|p| NodeEngine::new(ProcessorId::new(p), Arc::clone(&topo), engine_cfg))
            .collect();
        let object = CounterObject::new();
        seed_initial_hosting(&topo, &mut engines, &object);
        let registry = topo
            .nodes()
            .map(|node| Mirror {
                worker: topo.initial_worker(node),
                pool_cursor: 0,
                handing_off: false,
                pending_worker: None,
                recovering: false,
            })
            .collect();
        let warm = cfg.warmup_ops.len();
        let all_initiators: Vec<usize> =
            cfg.warmup_ops.iter().chain(cfg.workload.initiators()).copied().collect();
        for (i, &p) in all_initiators.iter().enumerate() {
            assert!(p < n, "initiator {p} out of range (op {i}, n = {n})");
        }
        for &p in &cfg.crash_candidates {
            assert!(p < n, "crash candidate {p} out of range (n = {n})");
        }
        let ops = all_initiators
            .iter()
            .enumerate()
            .map(|(i, &p)| OpState {
                initiator: p,
                // Batch counts pair with *workload* ops; warm-up ops
                // (indices below `warm`) are always unit increments.
                count: i
                    .checked_sub(warm)
                    .and_then(|w| cfg.op_counts.get(w).copied())
                    .unwrap_or(1)
                    .max(1),
                injected: false,
                started_step: None,
                completed_step: None,
                value: None,
                attempts: 0,
                abandoned: false,
            })
            .collect();
        let root0 = topo.initial_worker(NodeRef::ROOT).index();
        let mut world = World {
            cfg: Arc::new(cfg.clone()),
            topo,
            engine_cfg,
            engines,
            in_flight: Vec::new(),
            next_seq: 0,
            now: 0,
            deliveries: 0,
            crashed: vec![false; n],
            crash_budget_left: cfg.crash_budget,
            scripted_fired: vec![false; cfg.scripted_crashes.len()],
            registry,
            next_op: 0,
            ops,
            watchdog_rounds: 0,
            loads: vec![0; n],
            contact: vec![BTreeSet::new(); all_initiators.len()],
            retire_events: Vec::new(),
            installs: Vec::new(),
            root_holders: BTreeSet::from([root0]),
            stable_object: object,
            stable_replies: Vec::new(),
            retirements: 0,
            shim_forwards: 0,
            recovery_msgs: 0,
            recoveries: 0,
            dead_letters: 0,
            lost: 0,
        };
        world.fire_scripted_crashes(); // plans with after_deliveries = 0
                                       // Warm-up: deterministic sequential FIFO rounds, no branching.
        for i in 0..warm {
            world.inject_op(i);
            while !world.is_quiescent() {
                world.deliver_oldest();
            }
        }
        if matches!(world.cfg.workload, Workload::Concurrent(_)) {
            for i in warm..world.ops.len() {
                world.inject_op(i);
            }
        } else if warm < world.ops.len() {
            world.inject_op(warm);
        }
        world
    }

    // --- exploration interface ------------------------------------------

    /// Nothing in flight?
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// The transitions available from this state, in deterministic
    /// order: one delivery per in-flight message, then (budget and
    /// candidates permitting) one crash per live candidate. Deliveries
    /// come first so a truncated depth-first search reaches crash
    /// branches through their *smallest* subtrees (crashes near trace
    /// ends) and sweeps the crash-victim × crash-timing space while
    /// backtracking, instead of drowning in the first victim's
    /// recovery permutations.
    pub(crate) fn enabled(&self) -> Vec<TransKey> {
        let mut v: Vec<TransKey> = self
            .in_flight
            .iter()
            .map(|m| TransKey::Deliver { seq: m.seq, to: m.to.index() })
            .collect();
        if self.crash_budget_left > 0 {
            v.extend(
                self.cfg
                    .crash_candidates
                    .iter()
                    .filter(|&&p| !self.crashed[p])
                    .map(|&p| TransKey::Crash { p }),
            );
        }
        v
    }

    /// Executes one transition. Returns `false` if it is not currently
    /// feasible (replay of a minimized schedule skips such choices).
    pub(crate) fn execute(&mut self, key: TransKey) -> bool {
        match key {
            TransKey::Deliver { seq, .. } => {
                let Some(idx) = self.in_flight.iter().position(|m| m.seq == seq) else {
                    return false;
                };
                self.deliver_at(idx);
                true
            }
            TransKey::Crash { p } => {
                if self.crashed[p] {
                    return false;
                }
                self.crash_budget_left = self.crash_budget_left.saturating_sub(1);
                self.crash(p);
                true
            }
        }
    }

    /// Delivers the oldest in-flight message (deterministic drain order
    /// for replay tails).
    pub(crate) fn deliver_oldest(&mut self) {
        let idx = self
            .in_flight
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)
            .expect("not quiescent");
        self.deliver_at(idx);
    }

    /// Handles a quiescent state: next sequential op, watchdog repair,
    /// or terminal.
    pub(crate) fn on_quiescence(&mut self) -> Quiescence {
        debug_assert!(self.is_quiescent());
        let unresolved =
            self.ops.iter().any(|o| o.injected && o.completed_step.is_none() && !o.abandoned);
        if unresolved {
            if self.cfg.watchdog && self.watchdog_rounds < MAX_WATCHDOG_ROUNDS {
                self.watchdog_rounds += 1;
                if self.watchdog_round() {
                    return Quiescence::Continued;
                }
            }
            return Quiescence::Final;
        }
        while self.next_op < self.ops.len() {
            let i = self.next_op;
            self.inject_op(i);
            if !self.is_quiescent() {
                return Quiescence::Continued;
            }
        }
        Quiescence::Final
    }

    /// A deterministic fingerprint of the protocol state: every engine's
    /// [`NodeEngine::fingerprint`] plus the crash pattern. Comparable
    /// across drivers via [`combined_fingerprint`].
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let fps: Vec<u64> = self.engine_fingerprints();
        combined_fingerprint(&fps, &self.crashed)
    }

    /// Per-processor engine fingerprints.
    #[must_use]
    pub fn engine_fingerprints(&self) -> Vec<u64> {
        self.engines.iter().map(NodeEngine::fingerprint).collect()
    }

    /// The whole-system fingerprint: [`World::fingerprint`] (engines +
    /// crash pattern) extended with the client-visible operation state
    /// (injection, value, retry count, abandonment). Two quiescent
    /// states that agree on protocol internals but differ in what the
    /// clients observed are different system states; this is the
    /// fingerprint the checker's distinct-quiescent-state count uses.
    #[must_use]
    pub fn full_fingerprint(&self) -> u64 {
        let mut h = self.fingerprint();
        for o in &self.ops {
            let v = o.value.map_or(0, |v| v + 2) + u64::from(o.injected);
            for word in [v, u64::from(o.attempts), u64::from(o.abandoned)] {
                h ^= word.wrapping_add(0x9e37_79b9_7f4a_7c15);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    // --- observables for invariants -------------------------------------

    /// The configuration this world runs.
    #[must_use]
    pub fn config(&self) -> &CheckConfig {
        &self.cfg
    }

    /// The tree topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Per-op states, in workload order.
    #[must_use]
    pub fn ops(&self) -> &[OpState] {
        &self.ops
    }

    /// Per-processor message loads (sends + receives).
    #[must_use]
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Crash flags per processor.
    #[must_use]
    pub fn crashed(&self) -> &[bool] {
        &self.crashed
    }

    /// Contact set of op `i`: processors that sent or received any of
    /// its (causally attributed) messages.
    #[must_use]
    pub fn contact_set(&self, i: usize) -> &BTreeSet<usize> {
        &self.contact[i]
    }

    /// Every `Retired` effect seen, as `(flat node index, pool cursor of
    /// the retiring stint)`.
    #[must_use]
    pub fn retire_events(&self) -> &[(usize, u64)] {
        &self.retire_events
    }

    /// Every `Installed` effect seen, as `(flat node index, pool
    /// cursor)`.
    #[must_use]
    pub fn installs(&self) -> &[(usize, u64)] {
        &self.installs
    }

    /// Every processor that held the root node at any point in the run
    /// — the "hot spot" chain the bottleneck argument is about. Grows
    /// by one per root handoff or recovery.
    #[must_use]
    pub fn root_holders(&self) -> &BTreeSet<usize> {
        &self.root_holders
    }

    /// Live engines currently hosting `node`.
    #[must_use]
    pub fn hosts_of(&self, node: NodeRef) -> Vec<usize> {
        self.engines
            .iter()
            .enumerate()
            .filter(|(p, e)| !self.crashed[*p] && e.hosts(node))
            .map(|(p, _)| p)
            .collect()
    }

    /// Recovery slack terms of the fault-aware load bound, mirroring the
    /// chaos grid's accounting: audited recovery messages, completed
    /// recoveries, and watchdog re-injections.
    #[must_use]
    pub fn fault_slack(&self) -> u64 {
        let k = u64::from(self.topo.order());
        let retries: u64 = self.ops.iter().map(|o| u64::from(o.attempts.saturating_sub(1))).sum();
        self.recovery_msgs + self.recoveries * (k + 1) + retries * 2 * (k + 2)
    }

    /// Ordinary retirements so far (audit events).
    #[must_use]
    pub fn retirements(&self) -> u64 {
        self.retirements
    }

    /// Messages dropped for lost state or routing (audit events).
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Messages addressed to crashed processors.
    #[must_use]
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters
    }

    /// Network-wide deliveries so far.
    #[must_use]
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    // --- internals -------------------------------------------------------

    fn inject_op(&mut self, i: usize) {
        debug_assert_eq!(i, self.next_op);
        self.next_op += 1;
        let op = &mut self.ops[i];
        op.injected = true;
        op.started_step = Some(self.now);
        op.attempts = 1;
        let initiator = op.initiator;
        if self.crashed[initiator] {
            self.ops[i].abandoned = true;
            return;
        }
        let leaf_parent = self.topo.leaf_parent(initiator as u64);
        let entry = self.reachable_worker(leaf_parent);
        let msg = Self::entry_msg(leaf_parent, initiator, i, self.ops[i].count);
        self.send(ProcessorId::new(initiator), entry, Some(i), msg);
    }

    /// The entry-point message of op `i`: a unit `Apply`, or a
    /// `BatchApply` carrying the op's count. A watchdog re-injection
    /// repeats the *same* op_seq and count, so the root's reply cache
    /// answers retries with the original range.
    fn entry_msg(leaf_parent: NodeRef, initiator: usize, i: usize, count: u64) -> CounterMsg {
        let origin = ProcessorId::new(initiator);
        let op_seq = i as u64;
        if count > 1 {
            Msg::BatchApply { node: leaf_parent, origin, op_seq, count, req: () }
        } else {
            Msg::Apply { node: leaf_parent, origin, op_seq, req: () }
        }
    }

    fn deliver_at(&mut self, idx: usize) {
        let m = self.in_flight.remove(idx);
        debug_assert!(!self.crashed[m.to.index()], "no deliveries to crashed processors");
        self.now += 1;
        self.deliveries += 1;
        self.loads[m.to.index()] += 1;
        if let Some(op) = m.op {
            self.contact[op].insert(m.from.index());
            self.contact[op].insert(m.to.index());
        }
        let now = VirtualTime(self.now);
        let fx = self.engines[m.to.index()].on_event(Event::Deliver { msg: m.msg }, now);
        self.apply_effects(m.to, m.op, fx);
        self.fire_scripted_crashes();
    }

    fn apply_effects(&mut self, at: ProcessorId, op: Option<usize>, fx: Effects<CounterObject>) {
        // Seeded-bug hook: a `Retired` effect resurrects the node at the
        // retiring worker, rebuilt from the state the handoff carries.
        let resurrections: Vec<(NodeRef, Hosted<CounterObject>)> =
            if self.cfg.mutation == Some(Mutation::ResurrectRetired) {
                fx.iter()
                    .filter_map(|e| match e {
                        Effect::Send { msg: Msg::HandoffFinal { transfer }, .. } => Some((
                            transfer.node,
                            Hosted {
                                age: 0,
                                pool_cursor: transfer.pool_cursor.saturating_sub(1),
                                parent_worker: transfer.parent_worker,
                                child_workers: transfer.child_workers.clone(),
                                object: transfer.object.clone(),
                                reply_cache: transfer.reply_cache.clone(),
                            },
                        )),
                        _ => None,
                    })
                    .collect()
            } else {
                Vec::new()
            };
        for effect in fx {
            match effect {
                Effect::Send { to, msg } => self.send(at, to, op, msg),
                Effect::Reply { op_seq, resp } => {
                    let o = &mut self.ops[usize::try_from(op_seq).expect("op fits usize")];
                    if o.completed_step.is_none() {
                        o.completed_step = Some(self.now);
                        o.value = Some(resp);
                    }
                }
                Effect::Retired { node, successor } => {
                    let flat = self.topo.flat_index(node);
                    let st = &mut self.registry[flat];
                    self.retire_events.push((flat, st.pool_cursor));
                    st.pool_cursor += 1;
                    st.handing_off = true;
                    st.pending_worker = Some(successor);
                }
                Effect::Installed { node, worker, pool_cursor } => {
                    let flat = self.topo.flat_index(node);
                    self.installs.push((flat, pool_cursor));
                    if node == NodeRef::ROOT {
                        self.root_holders.insert(worker.index());
                    }
                    let st = &mut self.registry[flat];
                    st.worker = worker;
                    st.pending_worker = None;
                    st.handing_off = false;
                    st.pool_cursor = pool_cursor;
                }
                Effect::RecoveryStarted { node, successor } => {
                    let flat = self.topo.flat_index(node);
                    let st = &mut self.registry[flat];
                    st.handing_off = false;
                    st.recovering = true;
                    st.pending_worker = Some(successor);
                }
                Effect::Recovered { node, worker, pool_cursor } => {
                    let flat = self.topo.flat_index(node);
                    if node == NodeRef::ROOT {
                        self.root_holders.insert(worker.index());
                    }
                    {
                        let st = &mut self.registry[flat];
                        st.worker = worker;
                        st.pending_worker = None;
                        st.handing_off = false;
                        st.recovering = false;
                        st.pool_cursor = pool_cursor;
                    }
                    self.recoveries += 1;
                    if node == NodeRef::ROOT && self.engine_cfg.persist {
                        // Stable storage restores the root object at the
                        // new worker, as in the simulator driver.
                        let restore = Event::Restore {
                            node,
                            object: self.stable_object.clone(),
                            reply_cache: self.stable_replies.clone(),
                        };
                        let now = VirtualTime(self.now);
                        let fx2 = self.engines[worker.index()].on_event(restore, now);
                        self.apply_effects(worker, op, fx2);
                    }
                }
                Effect::Persist { object, op_seq, resp, .. } => {
                    self.stable_object = object;
                    self.stable_replies.push((op_seq, resp));
                }
                Effect::SetTimer { .. } | Effect::CancelTimer { .. } => {
                    // Timer protection is realized by the quiescence
                    // watchdog, as in the simulator.
                }
                Effect::Audit(ev) => match ev {
                    AuditEvent::Retirement { .. } => self.retirements += 1,
                    AuditEvent::ShimForward => self.shim_forwards += 1,
                    AuditEvent::RecoveryMsgs { count } => self.recovery_msgs += count,
                    AuditEvent::Lost => self.lost += 1,
                    _ => {}
                },
            }
        }
        for (node, hosted) in resurrections {
            self.engines[at.index()].install(node, hosted);
        }
    }

    fn send(&mut self, from: ProcessorId, to: ProcessorId, op: Option<usize>, msg: CounterMsg) {
        self.loads[from.index()] += 1;
        if self.crashed[to.index()] {
            self.dead_letters += 1;
            return;
        }
        self.in_flight.push(InFlight { seq: self.next_seq, from, to, op, msg });
        self.next_seq += 1;
    }

    pub(crate) fn crash(&mut self, p: usize) {
        if self.crashed[p] {
            return;
        }
        self.crashed[p] = true;
        let before = self.in_flight.len();
        self.in_flight.retain(|m| m.to.index() != p);
        self.dead_letters += (before - self.in_flight.len()) as u64;
        // Fail-silent, no stable state: the engine restarts blank, like
        // the threaded backend's crashed worker.
        self.engines[p] =
            NodeEngine::new(ProcessorId::new(p), Arc::clone(&self.topo), self.engine_cfg);
    }

    fn fire_scripted_crashes(&mut self) {
        for i in 0..self.cfg.scripted_crashes.len() {
            let (p, after) = self.cfg.scripted_crashes[i];
            if !self.scripted_fired[i] && self.deliveries >= after {
                self.scripted_fired[i] = true;
                self.crash(p);
            }
        }
    }

    // --- watchdog (mirrors TreeClient) -----------------------------------

    /// One repair pass at quiescence, mirroring the sim client's
    /// watchdog: promote a live pool successor for every node whose
    /// worker is dead or whose handoff/recovery stalled, re-send every
    /// incomplete operation, and from the second attempt on re-advertise
    /// path routing. Returns whether anything was injected.
    fn watchdog_round(&mut self) -> bool {
        let mut injected = false;
        let node_count = usize::try_from(self.topo.inner_node_count()).expect("fits usize");
        for flat in 0..node_count {
            let node = self.topo.node_at(flat);
            let (worker, handing_off, recovering) = {
                let st = &self.registry[flat];
                (st.worker, st.handing_off, st.recovering)
            };
            let worker_dead = self.crashed[worker.index()];
            if !worker_dead && !handing_off && !recovering {
                continue;
            }
            let Some(successor) = self.live_successor(node, flat) else {
                if worker_dead {
                    let path_hits: Vec<usize> = (0..self.ops.len())
                        .filter(|&i| {
                            let o = &self.ops[i];
                            o.injected
                                && o.completed_step.is_none()
                                && !o.abandoned
                                && self.op_path(o.initiator).contains(&flat)
                        })
                        .collect();
                    for i in path_hits {
                        self.ops[i].abandoned = true;
                    }
                }
                continue;
            };
            let neighbours = self.neighbour_workers(node);
            let first_open = (0..self.ops.len()).find(|&i| {
                let o = &self.ops[i];
                o.injected && o.completed_step.is_none() && !o.abandoned
            });
            // A self-message modelling the successor's local timeout.
            self.send(successor, successor, first_open, Msg::RecoverPromote { node, neighbours });
            injected = true;
        }
        for i in 0..self.ops.len() {
            let (initiator, open) = {
                let o = &self.ops[i];
                (o.initiator, o.injected && o.completed_step.is_none() && !o.abandoned)
            };
            if !open {
                continue;
            }
            if self.crashed[initiator] {
                self.ops[i].abandoned = true;
                continue;
            }
            self.ops[i].attempts += 1;
            let leaf_parent = self.topo.leaf_parent(initiator as u64);
            let entry = self.reachable_worker(leaf_parent);
            if !self.crashed[entry.index()] {
                let msg = Self::entry_msg(leaf_parent, initiator, i, self.ops[i].count);
                self.send(ProcessorId::new(initiator), entry, Some(i), msg);
                injected = true;
            }
            if self.ops[i].attempts >= 2 {
                injected |= self.refresh_path_routing(i);
            }
        }
        injected
    }

    /// Flat indices of the inner nodes op traffic from `initiator`
    /// climbs, leaf-parent to root.
    fn op_path(&self, initiator: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = Some(self.topo.leaf_parent(initiator as u64));
        while let Some(node) = cur {
            path.push(self.topo.flat_index(node));
            cur = self.topo.parent(node);
        }
        path
    }

    fn live_successor(&self, node: NodeRef, flat: usize) -> Option<ProcessorId> {
        let st = &self.registry[flat];
        if st.recovering || st.handing_off {
            if let Some(p) = st.pending_worker {
                if !self.crashed[p.index()] {
                    return Some(p);
                }
            }
        }
        let pool = self.topo.pool(node);
        let size = pool.end - pool.start;
        let candidates: Vec<u64> = match self.engine_cfg.pool_policy {
            PoolPolicy::OneShot => (st.pool_cursor + 1..size).collect(),
            PoolPolicy::Recycling => (1..size).map(|step| (st.pool_cursor + step) % size).collect(),
        };
        candidates
            .into_iter()
            .map(|i| ProcessorId::new((pool.start + i) as usize))
            .find(|&p| !self.crashed[p.index()])
    }

    fn neighbour_workers(&self, node: NodeRef) -> Vec<(NodeRef, ProcessorId)> {
        self.topo
            .parent(node)
            .into_iter()
            .chain(self.topo.inner_children(node).unwrap_or_default())
            .map(|neighbour| (neighbour, self.reachable_worker(neighbour)))
            .collect()
    }

    fn reachable_worker(&self, node: NodeRef) -> ProcessorId {
        let st = &self.registry[self.topo.flat_index(node)];
        if st.recovering {
            st.pending_worker.unwrap_or(st.worker)
        } else {
            st.worker
        }
    }

    /// Re-advertise each path node's parent worker to the engine below
    /// it (heals stale routing left by lost `NewWorker`s).
    fn refresh_path_routing(&mut self, i: usize) -> bool {
        let mut injected = false;
        for flat in self.op_path(self.ops[i].initiator) {
            let node = self.topo.node_at(flat);
            let Some(parent) = self.topo.parent(node) else { continue };
            let worker = self.reachable_worker(node);
            if self.crashed[worker.index()] {
                continue; // the promote pass owns the dead-worker case
            }
            let new_worker = self.reachable_worker(parent);
            self.send(
                worker,
                worker,
                Some(i),
                Msg::NewWorker { node, retired: parent, new_worker },
            );
            injected = true;
        }
        injected
    }
}

/// Folds per-engine fingerprints and the crash pattern into one state
/// fingerprint — the same combination for every driver, so the threaded
/// backend's final state can be checked for membership in the checker's
/// quiescent set.
#[must_use]
pub fn combined_fingerprint(engine_fps: &[u64], crashed: &[bool]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, &fp) in engine_fps.iter().enumerate() {
        h ^= fp.wrapping_add(i as u64);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    for &c in crashed {
        h ^= u64::from(c) + 1;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
