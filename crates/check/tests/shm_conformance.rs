//! Cross-**driver** conformance: the shared-memory arena driver must
//! leave the engines in exactly the state the virtual-time simulator
//! does.
//!
//! `distctr-shm`'s [`ShmTreeCounter`] reuses the sans-io `NodeEngine`
//! protocol verbatim and replaces only the transport: mailbox pushes on
//! a shared arena instead of simulated unit-latency messages. Replacing
//! the transport must be observationally invisible to the protocol, so
//! this suite runs the *same* seeded fault-free workload as
//! `arena_conformance.rs` and pins the combined engine fingerprint to
//! the *same* golden values captured from the simulator. A divergence
//! means the arena's delivery order (a global FIFO pumped to quiescence
//! per operation) no longer matches the sim's unit-delay semantics —
//! i.e. the driver changed the protocol, which is exactly the bug class
//! this test exists to catch.
//!
//! Only the fault-free family applies: the shared-memory driver has no
//! crash injection (there is no process to kill when the callers *are*
//! the processors).

use distctr_check::combined_fingerprint;
use distctr_shm::ShmTreeCounter;
use distctr_sim::ProcessorId;

/// The golden workload of `arena_conformance.rs`, driven through the
/// shared-memory arena: `n` unit incs (initiators `i % processors`,
/// ascending) with a batch of 3 injected halfway.
fn shm_fault_free_fingerprint(n: usize) -> u64 {
    let mut c = ShmTreeCounter::new(n).expect("arena");
    let procs = c.processors();
    for i in 0..n {
        let p = ProcessorId::new(i % procs);
        if i == n / 2 {
            c.inc_batch(p, 3).expect("batch inc");
        } else {
            c.inc(p).expect("inc");
        }
    }
    let fps = c.engine_fingerprints();
    let crashed = vec![false; procs];
    combined_fingerprint(&fps, &crashed)
}

/// The same goldens as `arena_conformance.rs` — captured from the
/// simulator, now pinning a *driver* rather than a storage refactor.
const FAULT_FREE_GOLDEN: [(usize, u64); 4] = [
    (2, 0xdcd6_1044_5dfd_084c),
    (4, 0xb767_abdb_91fd_63cb),
    (8, 0x8cf2_8883_1bdc_ee95),
    (81, 0x9aaf_5c99_4bcf_0fdc),
];

#[test]
fn shm_driver_fingerprints_match_the_simulator_goldens() {
    for (n, golden) in FAULT_FREE_GOLDEN {
        let fp = shm_fault_free_fingerprint(n);
        assert_eq!(
            fp, golden,
            "n={n}: shm-driver fingerprint {fp:#018x} diverged from the simulator golden \
             {golden:#018x}"
        );
    }
}
