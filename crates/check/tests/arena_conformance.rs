//! Cross-backend conformance for the arena-backed engine storage.
//!
//! The engine's `hosted` / `forwarding` / `pending` / `rebuilding` maps
//! were refactored from per-node `HashMap`s to flat arena slots keyed by
//! the interned `NodeRef → u32` flat index. The refactor must be
//! *observationally invisible*: [`NodeEngine::fingerprint`] hashes a
//! canonical sorted rendering of the protocol state, and these golden
//! values were captured from the pre-refactor `HashMap` implementation
//! running the exact same seeded workloads. If the arena representation
//! perturbed any protocol state — or merely the canonical rendering —
//! the fingerprints would move and this suite would fail.
//!
//! Two workload families per requested size n ∈ {2, 4, 8, 81}:
//!
//! * a fault-free run mixing unit and batched increments (exercises
//!   apply forwarding, reply caches, retirement handoffs and shims);
//! * a crash-plan run that kills the root's worker mid-sequence and
//!   recovers through the watchdog (exercises dead-letter purging,
//!   pool-successor promotion, rebuild-share collection and pending
//!   buffers).

use distctr_check::combined_fingerprint;
use distctr_core::{NodeRef, TreeCounter};
use distctr_sim::{Counter, FaultPlan, ProcessorId};

/// Runs `n` unit incs (initiators `i % processors`, ascending) with a
/// batch of 3 injected halfway, then folds every engine fingerprint and
/// the (empty) crash pattern into one state fingerprint.
fn fault_free_fingerprint(n: usize) -> u64 {
    let mut c = TreeCounter::new(n).expect("counter");
    let procs = c.processors();
    for i in 0..n {
        let p = ProcessorId::new(i % procs);
        if i == n / 2 {
            c.inc_batch(p, 3).expect("batch inc");
        } else {
            c.inc(p).expect("inc");
        }
    }
    let fps = c.engine_fingerprints();
    let crashed = vec![false; procs];
    combined_fingerprint(&fps, &crashed)
}

/// Same shape under a crash plan: the root's current worker is crashed
/// halfway through the sequence and every op runs through the recovery
/// watchdog. The final state (including the crash pattern) is folded
/// into one fingerprint.
fn crash_plan_fingerprint(n: usize) -> u64 {
    // Recycling pools keep the crash recoverable at every size: the
    // victim below may be the last member of a one-shot pool.
    let mut c = TreeCounter::builder(n)
        .expect("builder")
        .pool(distctr_core::PoolPolicy::Recycling)
        .faults(FaultPlan::new(0))
        .build()
        .expect("counter");
    let procs = c.processors();
    for i in 0..n {
        if i == n / 2 {
            let victim = c.worker_of(NodeRef::ROOT);
            c.crash(victim);
        }
        let p = ProcessorId::new(i % procs);
        c.inc_fault_tolerant(p).expect("fault-tolerant inc");
    }
    let fps = c.engine_fingerprints();
    let mut crashed = vec![false; procs];
    for p in c.crashed_processors() {
        crashed[p.index()] = true;
    }
    combined_fingerprint(&fps, &crashed)
}

/// Golden `(n, fingerprint)` pairs captured from the pre-refactor
/// `HashMap`-backed engine (commit before the arena storage landed).
const FAULT_FREE_GOLDEN: [(usize, u64); 4] = [
    (2, 0xdcd6_1044_5dfd_084c),
    (4, 0xb767_abdb_91fd_63cb),
    (8, 0x8cf2_8883_1bdc_ee95),
    (81, 0x9aaf_5c99_4bcf_0fdc),
];

const CRASH_PLAN_GOLDEN: [(usize, u64); 4] = [
    (2, 0x4869_e449_551d_1edd),
    (4, 0xd90d_eef9_d8f0_b35f),
    (8, 0x99cd_78df_41a5_face),
    (81, 0x6166_6536_9a02_2c87),
];

#[test]
fn fault_free_fingerprints_match_the_pre_refactor_backend() {
    for (n, golden) in FAULT_FREE_GOLDEN {
        let fp = fault_free_fingerprint(n);
        assert_eq!(
            fp, golden,
            "n={n}: fault-free fingerprint {fp:#018x} diverged from the pre-refactor golden \
             {golden:#018x}"
        );
    }
}

#[test]
fn crash_plan_fingerprints_match_the_pre_refactor_backend() {
    for (n, golden) in CRASH_PLAN_GOLDEN {
        let fp = crash_plan_fingerprint(n);
        assert_eq!(
            fp, golden,
            "n={n}: crash-plan fingerprint {fp:#018x} diverged from the pre-refactor golden \
             {golden:#018x}"
        );
    }
}
