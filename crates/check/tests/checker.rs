//! End-to-end tests of the model checker: soundness on the healthy
//! protocol, and bug-finding with minimized counterexample replay on a
//! deliberately seeded double-retirement mutation (mutation testing for
//! the checker itself — the acceptance gate of the `crates/check`
//! tentpole).

use distctr_check::{
    replay, replay_with, Budget, CheckConfig, Checker, Invariant, Mutation, NoDoubleRetirement,
    Schedule,
};
use distctr_core::engine::EngineConfig;
use distctr_core::protocol::PoolPolicy;

/// An engine configuration that retires a node on its very first apply
/// (threshold 2; every counter apply ages a node by 2), so small
/// workloads exercise the full handoff machinery.
fn eager_retirement() -> EngineConfig {
    EngineConfig {
        threshold: Some(2),
        pool_policy: PoolPolicy::OneShot,
        reply_cache_cap: usize::MAX,
        dedupe: false,
        persist: false,
    }
}

#[test]
fn healthy_concurrent_ops_hold_on_every_order() {
    let outcome = Checker::new(CheckConfig::new(8).concurrent_ops(&[0, 4])).run();
    assert!(outcome.holds(), "violation: {:?}", outcome.violation);
    assert!(!outcome.stats.truncated);
    assert!(outcome.stats.quiescent_leaves >= 2, "two ops admit several orders");
    assert!(outcome.stats.sleep_skips > 0, "sleep sets must prune commuting deliveries");
}

#[test]
fn healthy_retirement_cascade_holds_on_every_order() {
    // Warmed so the explored ops straddle the root's retirement.
    let cfg = CheckConfig::new(8).warmup(&[0, 2, 4]).concurrent_ops(&[1, 6]);
    let outcome =
        Checker::new(cfg).budget(Budget { max_transitions: 60_000, ..Budget::default() }).run();
    assert!(outcome.holds(), "violation: {:?}", outcome.violation);
}

#[test]
fn healthy_crash_exploration_with_watchdog_holds() {
    let cfg = CheckConfig::new(8).sequential_ops(&[0, 4]).fault_tolerant().explore_crashes(&[0], 1);
    let outcome =
        Checker::new(cfg).budget(Budget { max_transitions: 30_000, ..Budget::default() }).run();
    assert!(outcome.holds(), "violation: {:?}", outcome.violation);
    assert!(outcome.stats.quiescent_leaves > 0);
}

#[test]
fn batched_ops_partition_the_range_under_crashes_on_every_order() {
    // The batch-aware correctness condition (`range-partition`: every
    // completed op owns [v, v + m), ranges disjoint, full completion
    // tiles [0, total)) holds across every delivery order and every
    // single-crash timing, on each supported scale.
    for n in [2usize, 4, 8] {
        let candidate = n - 1;
        let cfg = CheckConfig::new(n)
            .sequential_ops(&[0, n / 2])
            .batch_counts(&[4, 3])
            .fault_tolerant()
            .explore_crashes(&[candidate], 1);
        let outcome =
            Checker::new(cfg).budget(Budget { max_transitions: 40_000, ..Budget::default() }).run();
        assert!(outcome.holds(), "violation at n = {n}: {:?}", outcome.violation);
        assert!(outcome.stats.quiescent_leaves > 0, "explored to quiescence at n = {n}");
    }
}

#[test]
fn a_mixed_batch_and_unit_workload_stays_exact_on_every_order() {
    // Concurrent unit + batch ops: the batch's range and the unit incs
    // interleave arbitrarily, but the handed-out ranges always
    // partition [0, 6).
    let cfg = CheckConfig::new(8).concurrent_ops(&[0, 4, 6]).batch_counts(&[1, 4, 1]);
    let outcome =
        Checker::new(cfg).budget(Budget { max_transitions: 60_000, ..Budget::default() }).run();
    assert!(outcome.holds(), "violation: {:?}", outcome.violation);
    assert!(outcome.stats.quiescent_leaves >= 2, "the interleavings are genuinely explored");
}

#[test]
fn seeded_double_retirement_bug_is_found_and_minimized() {
    // The ResurrectRetired mutation re-installs every retiring node at
    // its old worker: the node is served twice, and enough traffic
    // retires the resurrected copy from an already-used pool slot.
    let cfg = CheckConfig::new(8)
        .concurrent_ops(&[0, 1])
        .engine(eager_retirement())
        .mutation(Mutation::ResurrectRetired);
    let outcome = Checker::new(cfg.clone()).run();
    let v = outcome.violation.expect("the seeded bug must be found");
    assert!(
        v.invariant == "unique-hosting" || v.invariant == "no-double-retirement",
        "caught by a hosting/retirement invariant, got {}",
        v.invariant
    );
    assert!(v.minimized.choices.len() <= v.schedule.choices.len());

    // The minimized schedule reproduces the same violation...
    let re = replay(&cfg, &v.minimized);
    assert_eq!(re.violation.expect("must reproduce").invariant, v.invariant);

    // ...survives serialization...
    let parsed = Schedule::parse(&v.minimized.serialize()).expect("round-trips");
    assert_eq!(parsed, v.minimized);

    // ...and the generated test snippet embeds config + schedule.
    let snippet = v.minimized.to_test_snippet(&cfg, &v.invariant);
    assert!(snippet.contains("CheckConfig::new(8)"));
    assert!(snippet.contains(&v.invariant));
}

#[test]
fn double_retirement_specifically_reproduces_from_minimized_schedule() {
    // Restricting the invariant set forces the checker past the
    // earlier unique-hosting symptom to the double retirement itself:
    // the resurrected node must retire a second time, which takes a
    // larger workload.
    let invariants = || -> Vec<Box<dyn Invariant>> { vec![Box::new(NoDoubleRetirement)] };
    let cfg = CheckConfig::new(8)
        .concurrent_ops(&[0, 1, 2, 3])
        .engine(eager_retirement())
        .mutation(Mutation::ResurrectRetired);
    let outcome = Checker::new(cfg.clone())
        .invariants(invariants())
        .budget(Budget { max_transitions: 200_000, ..Budget::default() })
        .run();
    let v = outcome.violation.expect("the double retirement must be found");
    assert_eq!(v.invariant, "no-double-retirement");
    let re = replay_with(&cfg, &v.minimized, &invariants());
    assert_eq!(re.violation.expect("must reproduce").invariant, "no-double-retirement");
}

#[test]
fn healthy_protocol_never_trips_the_mutation_invariants() {
    // Sanity for the mutation tests above: the same workload without
    // the mutation is clean under the same eager-retirement config.
    let cfg = CheckConfig::new(8).concurrent_ops(&[0, 1]).engine(eager_retirement());
    let outcome = Checker::new(cfg).run();
    assert!(outcome.holds(), "violation: {:?}", outcome.violation);
}

#[test]
fn replay_skips_infeasible_choices_and_reports_values() {
    let cfg = CheckConfig::new(8).concurrent_ops(&[0, 4]);
    // Sequence numbers that never exist are skipped; the drain tail
    // completes both ops regardless.
    let schedule = Schedule::parse("d999 d1000").expect("well-formed");
    let outcome = replay(&cfg, &schedule);
    assert!(outcome.violation.is_none());
    assert_eq!(outcome.skipped, 2);
    let mut values: Vec<u64> = outcome.values.iter().map(|v| v.expect("completed")).collect();
    values.sort_unstable();
    assert_eq!(values, vec![0, 1]);
}

#[test]
fn identical_replays_agree_on_fingerprint() {
    let cfg = CheckConfig::new(8).warmup(&[0]).concurrent_ops(&[1, 6]);
    let a = replay(&cfg, &Schedule::default());
    let b = replay(&cfg, &Schedule::default());
    assert_eq!(a.fingerprint, b.fingerprint, "replay must be deterministic");
}

#[test]
fn schedule_parse_rejects_garbage() {
    assert!(Schedule::parse("d12 x3").is_err());
    assert!(Schedule::parse("dx").is_err());
    assert!(Schedule::parse("").expect("empty is fine").choices.is_empty());
}
